//! Weight-based genetic algorithm (WBGA), the optimiser of the paper (§3.2).
//!
//! The defining feature of the WBGA (Hajela & Lin, paper ref. \[9\]) is that the
//! objective weights are part of the chromosome itself: the GA string carries
//! the normalised designable parameters *and* the weight vector (Figure 4/6).
//! Each individual therefore scalarises the objectives with its own weights
//! (normalised by eq. 4) and the population explores many weightings at once,
//! which is what spreads the evaluated points along the trade-off curve and
//! avoids the manual weight-selection problem of classical weighted sums.
//!
//! Fitness is the normalised weighted sum of eq. 5:
//!
//! ```text
//! O_w(x_i) = Σ_j w_j^(i) · (f_j(x_i) − f_j^min) / (f_j^max − f_j^min)
//! ```
//!
//! with the min/max taken over the feasible individuals of the current
//! generation and the normalisation flipped for minimisation objectives.

use crate::checkpoint::{
    Checkpoint, CheckpointControl, CheckpointError, CheckpointIndividual, CheckpointSink,
    DiscardCheckpoints,
};
use crate::config::{GaConfig, GenerationStats};
use crate::operators::{blend_crossover, gaussian_mutation, random_genes, tournament_select};
use crate::optimizer::{OptimizationResult, Optimizer};
use crate::pareto::{pareto_front, FrontTracker};
use crate::problem::{Evaluation, Sense, SizingProblem};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One WBGA individual: designable parameters plus objective weights.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WbgaIndividual {
    /// Normalised designable parameters (the `P` part of the GA string).
    pub parameters: Vec<f64>,
    /// Raw (un-normalised) weight genes (the `W` part of the GA string).
    pub weight_genes: Vec<f64>,
    /// Raw objective values, `None` if the evaluation failed.
    pub objectives: Option<Vec<f64>>,
    /// Scalar fitness of eq. 5 (set during fitness assignment).
    pub fitness: f64,
}

impl WbgaIndividual {
    /// Weights normalised per eq. 4 (`w_i ← w_i / Σ_j w_j`).
    pub fn normalized_weights(&self) -> Vec<f64> {
        normalize_weights(&self.weight_genes)
    }
}

/// Normalises a weight vector so its entries sum to one (paper eq. 4).
///
/// A uniform weighting is returned when every gene is (numerically) zero.
pub fn normalize_weights(weight_genes: &[f64]) -> Vec<f64> {
    let sum: f64 = weight_genes.iter().map(|w| w.max(0.0)).sum();
    if sum < 1e-12 {
        return vec![1.0 / weight_genes.len() as f64; weight_genes.len()];
    }
    weight_genes.iter().map(|w| w.max(0.0) / sum).collect()
}

/// Result of a WBGA run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WbgaResult {
    /// Every successful evaluation performed during the run (the "10 000
    /// individuals" of Figure 7).
    pub archive: Vec<Evaluation>,
    /// Per-generation statistics.
    pub history: Vec<GenerationStats>,
    /// Number of evaluation attempts (including failed ones).
    pub evaluations: usize,
    /// Number of failed (infeasible) evaluations.
    pub failed_evaluations: usize,
    /// Objective senses copied from the problem, for downstream Pareto extraction.
    pub senses: Vec<Sense>,
}

impl WbgaResult {
    /// Extracts the Pareto front (§3.3) from the evaluation archive.
    pub fn pareto_front(&self) -> Vec<Evaluation> {
        pareto_front(&self.archive, &self.senses)
    }

    /// The archived evaluation with the best value of objective `index`.
    pub fn best_by_objective(&self, index: usize) -> Option<&Evaluation> {
        let sense = *self.senses.get(index)?;
        self.archive.iter().max_by(|a, b| {
            let (va, vb) = (a.objectives[index], b.objectives[index]);
            let ord = va.partial_cmp(&vb).unwrap_or(std::cmp::Ordering::Equal);
            match sense {
                Sense::Maximize => ord,
                Sense::Minimize => ord.reverse(),
            }
        })
    }
}

/// The weight-based genetic algorithm.
#[derive(Debug, Clone)]
pub struct Wbga {
    config: GaConfig,
}

impl Wbga {
    /// Creates a WBGA with the given configuration.
    pub fn new(config: GaConfig) -> Self {
        Wbga { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &GaConfig {
        &self.config
    }

    /// Runs the optimisation against a problem.
    ///
    /// Candidate generations are evaluated through
    /// [`SizingProblem::evaluate_batch`], so problems that override the batch
    /// entry point (e.g. circuit simulation) spread GA evaluations across all
    /// cores without affecting reproducibility.
    pub fn run<P: SizingProblem + ?Sized>(&self, problem: &P) -> WbgaResult {
        self.run_resumable(problem, None, &mut DiscardCheckpoints)
            .expect("a fresh WBGA run cannot fail")
    }

    /// Runs the optimisation with per-generation checkpointing, optionally
    /// resuming from a previously captured [`Checkpoint`].
    ///
    /// `sink` receives a checkpoint after every bred-and-evaluated
    /// generation; resuming from any of them continues the *identical* run
    /// (same RNG stream, same archive, same result) — with
    /// [`DiscardCheckpoints`] this is exactly [`Wbga::run`].
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError`] when `resume` does not fit this
    /// optimiser/problem/configuration, or [`CheckpointError::Halted`] when
    /// the sink requested a stop.
    pub fn run_resumable<P: SizingProblem + ?Sized>(
        &self,
        problem: &P,
        resume: Option<Checkpoint>,
        sink: &mut dyn CheckpointSink,
    ) -> Result<WbgaResult, CheckpointError> {
        let cfg = &self.config;
        let n_params = problem.parameter_count();
        let n_obj = problem.objective_count();
        let senses: Vec<Sense> = problem.objectives().iter().map(|o| o.sense).collect();

        let mut rng;
        let mut archive: Vec<Evaluation>;
        let mut history: Vec<GenerationStats>;
        let mut evaluations;
        let mut failed;
        let mut stall;
        let mut population: Vec<WbgaIndividual>;
        let start_generation;

        match resume {
            None => {
                rng = StdRng::seed_from_u64(cfg.seed);
                archive = Vec::with_capacity(cfg.evaluation_budget());
                history = Vec::with_capacity(cfg.generations);
                evaluations = 0usize;
                failed = 0usize;
                stall = 0usize;
                start_generation = 0;
                // Initial population: random parameters and random weight genes.
                population = (0..cfg.population_size)
                    .map(|_| WbgaIndividual {
                        parameters: random_genes(&mut rng, n_params),
                        weight_genes: random_genes(&mut rng, n_obj),
                        objectives: None,
                        fitness: f64::NEG_INFINITY,
                    })
                    .collect();
                evaluate_population(
                    problem,
                    &mut population,
                    &mut archive,
                    &mut evaluations,
                    &mut failed,
                );
            }
            Some(checkpoint) => {
                checkpoint.validate("wbga", n_params, &senses, cfg.generations)?;
                for individual in &checkpoint.population {
                    if individual.weight_genes.len() != n_obj {
                        return Err(CheckpointError::Incompatible(format!(
                            "WBGA individual has {} weight genes, problem has {} objectives",
                            individual.weight_genes.len(),
                            n_obj
                        )));
                    }
                }
                rng = StdRng::from_state(checkpoint.rng_state);
                population = checkpoint
                    .population
                    .into_iter()
                    .map(|individual| WbgaIndividual {
                        parameters: individual.parameters,
                        weight_genes: individual.weight_genes,
                        objectives: individual.objectives,
                        // Fitness is a pure function of the population's
                        // objectives; `assign_fitness` recomputes it below.
                        fitness: f64::NEG_INFINITY,
                    })
                    .collect();
                archive = checkpoint.archive;
                history = checkpoint.history;
                evaluations = checkpoint.evaluations;
                failed = checkpoint.failed_evaluations;
                stall = checkpoint.stall_generations;
                start_generation = checkpoint.next_generation;
            }
        }

        // Early-stopping front tracker: replaying the archive reproduces the
        // exact tracker state the uninterrupted run had at this point.
        let mut tracker = cfg
            .early_stop
            .map(|_| FrontTracker::from_archive(&archive, &senses));

        for generation in start_generation..cfg.generations {
            assign_fitness(&mut population, &senses);
            history.push(generation_stats(generation, &population));

            if generation + 1 == cfg.generations {
                break;
            }
            if let Some(early_stop) = &cfg.early_stop {
                if stall >= early_stop.effective_patience() {
                    break;
                }
            }

            // Selection / crossover / mutation to build the next generation.
            let fitness: Vec<f64> = population.iter().map(|i| i.fitness).collect();
            let mut next: Vec<WbgaIndividual> = Vec::with_capacity(cfg.population_size);

            // Elitism: carry over the best individuals unchanged (they are
            // not re-evaluated and not re-archived).
            let mut order: Vec<usize> = (0..population.len()).collect();
            order.sort_by(|&a, &b| {
                population[b]
                    .fitness
                    .partial_cmp(&population[a].fitness)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            for &idx in order.iter().take(cfg.elitism.min(population.len())) {
                next.push(population[idx].clone());
            }

            // Generate the full set of offspring first, then evaluate them as
            // one batch.
            let mut offspring: Vec<WbgaIndividual> = Vec::with_capacity(cfg.population_size);
            while next.len() + offspring.len() < cfg.population_size {
                let pa = &population[tournament_select(&mut rng, &fitness, cfg.tournament_size)];
                let pb = &population[tournament_select(&mut rng, &fitness, cfg.tournament_size)];
                // Crossover acts on the full GA string (parameters + weights),
                // exactly as in Figure 4 of the paper.
                let genome_a: Vec<f64> = pa
                    .parameters
                    .iter()
                    .chain(pa.weight_genes.iter())
                    .copied()
                    .collect();
                let genome_b: Vec<f64> = pb
                    .parameters
                    .iter()
                    .chain(pb.weight_genes.iter())
                    .copied()
                    .collect();
                let (mut child_a, mut child_b) = if rng.gen::<f64>() < cfg.crossover_rate {
                    blend_crossover(&mut rng, &genome_a, &genome_b, 0.3)
                } else {
                    (genome_a.clone(), genome_b.clone())
                };
                gaussian_mutation(
                    &mut rng,
                    &mut child_a,
                    cfg.mutation_rate,
                    cfg.mutation_sigma,
                );
                gaussian_mutation(
                    &mut rng,
                    &mut child_b,
                    cfg.mutation_rate,
                    cfg.mutation_sigma,
                );
                for child in [child_a, child_b] {
                    if next.len() + offspring.len() >= cfg.population_size {
                        break;
                    }
                    offspring.push(WbgaIndividual {
                        parameters: child[..n_params].to_vec(),
                        weight_genes: child[n_params..].to_vec(),
                        objectives: None,
                        fitness: f64::NEG_INFINITY,
                    });
                }
            }
            let archived_before = archive.len();
            evaluate_population(
                problem,
                &mut offspring,
                &mut archive,
                &mut evaluations,
                &mut failed,
            );
            if let Some(tracker) = tracker.as_mut() {
                let mut improved = false;
                for evaluation in &archive[archived_before..] {
                    improved |= tracker.insert(evaluation);
                }
                stall = if improved { 0 } else { stall + 1 };
            }
            next.append(&mut offspring);
            population = next;

            if sink.wants_checkpoints() {
                let checkpoint = Checkpoint {
                    optimizer: "wbga".to_string(),
                    next_generation: generation + 1,
                    rng_state: rng.state(),
                    population: population
                        .iter()
                        .map(|individual| CheckpointIndividual {
                            parameters: individual.parameters.clone(),
                            weight_genes: individual.weight_genes.clone(),
                            objectives: individual.objectives.clone(),
                        })
                        .collect(),
                    archive: archive.clone(),
                    history: history.clone(),
                    evaluations,
                    failed_evaluations: failed,
                    stall_generations: stall,
                    senses: senses.clone(),
                };
                if sink.on_checkpoint(&checkpoint) == CheckpointControl::Halt {
                    return Err(CheckpointError::Halted {
                        generation: generation + 1,
                    });
                }
            }
        }

        Ok(WbgaResult {
            archive,
            history,
            evaluations,
            failed_evaluations: failed,
            senses,
        })
    }
}

impl Optimizer for Wbga {
    fn name(&self) -> &'static str {
        "wbga"
    }

    fn run(&self, problem: &dyn SizingProblem) -> OptimizationResult {
        Wbga::run(self, problem).into()
    }

    fn run_checkpointed(
        &self,
        problem: &dyn SizingProblem,
        resume: Option<Checkpoint>,
        sink: &mut dyn CheckpointSink,
    ) -> Result<OptimizationResult, CheckpointError> {
        self.run_resumable(problem, resume, sink).map(Into::into)
    }
}

/// Evaluates `individuals` as one batch, recording results in the archive and
/// the evaluation counters.
fn evaluate_population<P: SizingProblem + ?Sized>(
    problem: &P,
    individuals: &mut [WbgaIndividual],
    archive: &mut Vec<Evaluation>,
    evaluations: &mut usize,
    failed: &mut usize,
) {
    let batch: Vec<Vec<f64>> = individuals
        .iter()
        .map(|individual| individual.parameters.clone())
        .collect();
    for (individual, result) in individuals.iter_mut().zip(problem.evaluate_batch(&batch)) {
        *evaluations += 1;
        match result {
            Some(evaluation) => {
                individual.objectives = Some(evaluation.objectives.clone());
                archive.push(evaluation);
            }
            None => {
                *failed += 1;
                individual.objectives = None;
            }
        }
    }
}

/// Assigns eq.-5 fitness values to a population in place.
fn assign_fitness(population: &mut [WbgaIndividual], senses: &[Sense]) {
    let n_obj = senses.len();
    // Objective ranges over the feasible part of the population.
    let mut min = vec![f64::INFINITY; n_obj];
    let mut max = vec![f64::NEG_INFINITY; n_obj];
    for individual in population.iter() {
        if let Some(objectives) = &individual.objectives {
            for (j, &value) in objectives.iter().enumerate() {
                min[j] = min[j].min(value);
                max[j] = max[j].max(value);
            }
        }
    }
    for individual in population.iter_mut() {
        individual.fitness = match &individual.objectives {
            None => f64::NEG_INFINITY,
            Some(objectives) => {
                let weights = normalize_weights(&individual.weight_genes);
                objectives
                    .iter()
                    .enumerate()
                    .map(|(j, &value)| {
                        let span = (max[j] - min[j]).max(1e-30);
                        let normalized = match senses[j] {
                            Sense::Maximize => (value - min[j]) / span,
                            Sense::Minimize => (max[j] - value) / span,
                        };
                        weights[j] * normalized
                    })
                    .sum()
            }
        };
    }
}

fn generation_stats(generation: usize, population: &[WbgaIndividual]) -> GenerationStats {
    let feasible: Vec<f64> = population
        .iter()
        .filter(|i| i.objectives.is_some())
        .map(|i| i.fitness)
        .collect();
    // An all-infeasible generation records 0.0, not -inf: checkpoints are
    // JSON and non-finite floats do not survive the round-trip, which would
    // break bit-identical resume.
    let best = if feasible.is_empty() {
        0.0
    } else {
        feasible.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
    };
    let mean = if feasible.is_empty() {
        0.0
    } else {
        feasible.iter().sum::<f64>() / feasible.len() as f64
    };
    GenerationStats {
        generation,
        best_fitness: best,
        mean_fitness: mean,
        feasible: feasible.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{FnProblem, ObjectiveSpec};

    /// A two-objective problem with a known concave trade-off:
    /// maximise f1 = x and f2 = 1 − x² over x ∈ [0, 1].
    fn tradeoff_problem() -> FnProblem<impl Fn(&[f64]) -> Option<Vec<f64>>> {
        FnProblem::new(
            1,
            vec![ObjectiveSpec::maximize("f1"), ObjectiveSpec::maximize("f2")],
            |x: &[f64]| Some(vec![x[0], 1.0 - x[0] * x[0]]),
        )
    }

    #[test]
    fn weight_normalization_follows_equation_four() {
        let w = normalize_weights(&[0.2, 0.6]);
        assert!((w[0] - 0.25).abs() < 1e-12);
        assert!((w[1] - 0.75).abs() < 1e-12);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Degenerate all-zero weights fall back to uniform.
        let w = normalize_weights(&[0.0, 0.0, 0.0]);
        assert!(w.iter().all(|&x| (x - 1.0 / 3.0).abs() < 1e-12));
    }

    #[test]
    fn archive_size_matches_evaluation_budget() {
        let config = GaConfig::small_test();
        let result = Wbga::new(config).run(&tradeoff_problem());
        assert_eq!(result.evaluations, config.exact_evaluations());
        assert_eq!(result.archive.len(), result.evaluations);
        assert_eq!(result.failed_evaluations, 0);
        assert_eq!(result.history.len(), config.generations);

        // With elitism disabled (the paper configuration) the evaluation count
        // equals population × generations exactly.
        let mut no_elite = config;
        no_elite.elitism = 0;
        no_elite.population_size = 10;
        no_elite.generations = 5;
        let result = Wbga::new(no_elite).run(&tradeoff_problem());
        assert_eq!(result.evaluations, 50);
    }

    #[test]
    fn run_is_reproducible_with_fixed_seed() {
        let config = GaConfig::small_test();
        let a = Wbga::new(config).run(&tradeoff_problem());
        let b = Wbga::new(config).run(&tradeoff_problem());
        assert_eq!(a.archive, b.archive);
        let c = Wbga::new(config.with_seed(99)).run(&tradeoff_problem());
        assert_ne!(a.archive, c.archive);
    }

    #[test]
    fn pareto_front_approaches_known_tradeoff_curve() {
        let result = Wbga::new(GaConfig::small_test()).run(&tradeoff_problem());
        let front = result.pareto_front();
        assert!(!front.is_empty());
        // Every front point satisfies f2 = 1 − f1² by construction; the front
        // should span a reasonable part of the trade-off.
        for point in &front {
            let (f1, f2) = (point.objectives[0], point.objectives[1]);
            assert!((f2 - (1.0 - f1 * f1)).abs() < 1e-9);
        }
        let span = front.last().unwrap().objectives[0] - front[0].objectives[0];
        assert!(
            span > 0.3,
            "front should spread along the trade-off, span = {span}"
        );
    }

    #[test]
    fn fitness_improves_over_generations() {
        let result = Wbga::new(GaConfig::small_test()).run(&tradeoff_problem());
        let first = result.history.first().unwrap().best_fitness;
        let last = result.history.last().unwrap().best_fitness;
        assert!(
            last >= first - 1e-9,
            "best fitness degraded: {first} -> {last}"
        );
    }

    #[test]
    fn infeasible_evaluations_are_counted_and_skipped() {
        let problem = FnProblem::new(
            1,
            vec![ObjectiveSpec::maximize("f1"), ObjectiveSpec::maximize("f2")],
            |x: &[f64]| {
                if x[0] < 0.5 {
                    None
                } else {
                    Some(vec![x[0], 1.0 - x[0]])
                }
            },
        );
        let result = Wbga::new(GaConfig::small_test()).run(&problem);
        assert!(result.failed_evaluations > 0);
        assert_eq!(
            result.archive.len() + result.failed_evaluations,
            result.evaluations
        );
        // Archived points are all feasible.
        assert!(result.archive.iter().all(|e| e.parameters[0] >= 0.5));
    }

    #[test]
    fn best_by_objective_respects_sense() {
        let result = Wbga::new(GaConfig::small_test()).run(&tradeoff_problem());
        let best_f1 = result.best_by_objective(0).unwrap().objectives[0];
        assert!(result
            .archive
            .iter()
            .all(|e| e.objectives[0] <= best_f1 + 1e-12));
        assert!(result.best_by_objective(5).is_none());
    }

    #[test]
    fn checkpointed_run_without_resume_equals_plain_run() {
        let problem = tradeoff_problem();
        let wbga = Wbga::new(GaConfig::small_test());
        let plain = wbga.run(&problem);
        let mut checkpoints = Vec::new();
        let mut sink = |cp: &Checkpoint| {
            checkpoints.push(cp.clone());
            CheckpointControl::Continue
        };
        let checkpointed = wbga.run_resumable(&problem, None, &mut sink).unwrap();
        assert_eq!(plain.archive, checkpointed.archive);
        assert_eq!(plain.history, checkpointed.history);
        assert_eq!(plain.evaluations, checkpointed.evaluations);
        // One checkpoint per bred generation.
        assert_eq!(checkpoints.len(), GaConfig::small_test().generations - 1);
    }

    #[test]
    fn resume_from_any_checkpoint_reproduces_the_full_run() {
        let problem = tradeoff_problem();
        let wbga = Wbga::new(GaConfig::small_test());
        let full = wbga.run(&problem);
        let mut checkpoints = Vec::new();
        let mut sink = |cp: &Checkpoint| {
            checkpoints.push(cp.clone());
            CheckpointControl::Continue
        };
        wbga.run_resumable(&problem, None, &mut sink).unwrap();

        for checkpoint in checkpoints {
            let generation = checkpoint.next_generation;
            let resumed = wbga
                .run_resumable(&problem, Some(checkpoint), &mut DiscardCheckpoints)
                .unwrap_or_else(|e| panic!("resume from generation {generation} failed: {e}"));
            assert_eq!(resumed.archive, full.archive, "gen {generation}");
            assert_eq!(resumed.history, full.history, "gen {generation}");
            assert_eq!(resumed.evaluations, full.evaluations, "gen {generation}");
            assert_eq!(
                resumed.failed_evaluations, full.failed_evaluations,
                "gen {generation}"
            );
        }
    }

    #[test]
    fn halt_request_stops_at_the_boundary_and_resume_completes_the_run() {
        let problem = tradeoff_problem();
        let wbga = Wbga::new(GaConfig::small_test());
        let full = wbga.run(&problem);

        let mut last: Option<Checkpoint> = None;
        let mut sink = |cp: &Checkpoint| {
            last = Some(cp.clone());
            if cp.next_generation == 4 {
                CheckpointControl::Halt
            } else {
                CheckpointControl::Continue
            }
        };
        let halted = wbga.run_resumable(&problem, None, &mut sink);
        assert!(matches!(
            halted,
            Err(CheckpointError::Halted { generation: 4 })
        ));
        let resumed = wbga
            .run_resumable(&problem, last, &mut DiscardCheckpoints)
            .unwrap();
        assert_eq!(resumed.archive, full.archive);
        assert_eq!(resumed.history, full.history);
    }

    #[test]
    fn resume_rejects_foreign_and_misshapen_checkpoints() {
        let problem = tradeoff_problem();
        let wbga = Wbga::new(GaConfig::small_test());
        let mut checkpoint = None;
        let mut sink = |cp: &Checkpoint| {
            checkpoint.get_or_insert_with(|| cp.clone());
            CheckpointControl::Continue
        };
        wbga.run_resumable(&problem, None, &mut sink).unwrap();
        let checkpoint = checkpoint.unwrap();

        let mut foreign = checkpoint.clone();
        foreign.optimizer = "nsga2".to_string();
        assert!(matches!(
            wbga.run_resumable(&problem, Some(foreign), &mut DiscardCheckpoints),
            Err(CheckpointError::OptimizerMismatch { .. })
        ));

        let mut misshapen = checkpoint;
        misshapen.population[0].weight_genes.push(0.5);
        assert!(matches!(
            wbga.run_resumable(&problem, Some(misshapen), &mut DiscardCheckpoints),
            Err(CheckpointError::Incompatible(_))
        ));
    }

    #[test]
    fn early_stopping_cuts_a_stalled_run_short() {
        use crate::config::EarlyStop;
        // Constant objectives: the front never improves after the first
        // feasible evaluation, so the run stalls immediately.
        let problem = FnProblem::new(
            1,
            vec![ObjectiveSpec::maximize("f1"), ObjectiveSpec::maximize("f2")],
            |_: &[f64]| Some(vec![1.0, 1.0]),
        );
        let config =
            GaConfig::small_test().with_early_stop(EarlyStop::after_stalled_generations(2));
        let result = Wbga::new(config).run(&problem);
        // The run stalls from the first breeding, so it stops after
        // `patience + 1` recorded generations.
        assert_eq!(result.history.len(), 3);
        // On the trade-off problem every distinct point is non-dominated
        // (f2 is a decreasing function of f1), so the front keeps improving
        // and the same criterion never triggers.
        let improving = Wbga::new(config).run(&tradeoff_problem());
        assert_eq!(improving.history.len(), config.generations);
    }
}
