//! Weight-based genetic algorithm (WBGA), the optimiser of the paper (§3.2).
//!
//! The defining feature of the WBGA (Hajela & Lin, paper ref. [9]) is that the
//! objective weights are part of the chromosome itself: the GA string carries
//! the normalised designable parameters *and* the weight vector (Figure 4/6).
//! Each individual therefore scalarises the objectives with its own weights
//! (normalised by eq. 4) and the population explores many weightings at once,
//! which is what spreads the evaluated points along the trade-off curve and
//! avoids the manual weight-selection problem of classical weighted sums.
//!
//! Fitness is the normalised weighted sum of eq. 5:
//!
//! ```text
//! O_w(x_i) = Σ_j w_j^(i) · (f_j(x_i) − f_j^min) / (f_j^max − f_j^min)
//! ```
//!
//! with the min/max taken over the feasible individuals of the current
//! generation and the normalisation flipped for minimisation objectives.

use crate::config::{GaConfig, GenerationStats};
use crate::operators::{blend_crossover, gaussian_mutation, random_genes, tournament_select};
use crate::optimizer::{OptimizationResult, Optimizer};
use crate::pareto::pareto_front;
use crate::problem::{Evaluation, Sense, SizingProblem};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One WBGA individual: designable parameters plus objective weights.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WbgaIndividual {
    /// Normalised designable parameters (the `P` part of the GA string).
    pub parameters: Vec<f64>,
    /// Raw (un-normalised) weight genes (the `W` part of the GA string).
    pub weight_genes: Vec<f64>,
    /// Raw objective values, `None` if the evaluation failed.
    pub objectives: Option<Vec<f64>>,
    /// Scalar fitness of eq. 5 (set during fitness assignment).
    pub fitness: f64,
}

impl WbgaIndividual {
    /// Weights normalised per eq. 4 (`w_i ← w_i / Σ_j w_j`).
    pub fn normalized_weights(&self) -> Vec<f64> {
        normalize_weights(&self.weight_genes)
    }
}

/// Normalises a weight vector so its entries sum to one (paper eq. 4).
///
/// A uniform weighting is returned when every gene is (numerically) zero.
pub fn normalize_weights(weight_genes: &[f64]) -> Vec<f64> {
    let sum: f64 = weight_genes.iter().map(|w| w.max(0.0)).sum();
    if sum < 1e-12 {
        return vec![1.0 / weight_genes.len() as f64; weight_genes.len()];
    }
    weight_genes.iter().map(|w| w.max(0.0) / sum).collect()
}

/// Result of a WBGA run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WbgaResult {
    /// Every successful evaluation performed during the run (the "10 000
    /// individuals" of Figure 7).
    pub archive: Vec<Evaluation>,
    /// Per-generation statistics.
    pub history: Vec<GenerationStats>,
    /// Number of evaluation attempts (including failed ones).
    pub evaluations: usize,
    /// Number of failed (infeasible) evaluations.
    pub failed_evaluations: usize,
    /// Objective senses copied from the problem, for downstream Pareto extraction.
    pub senses: Vec<Sense>,
}

impl WbgaResult {
    /// Extracts the Pareto front (§3.3) from the evaluation archive.
    pub fn pareto_front(&self) -> Vec<Evaluation> {
        pareto_front(&self.archive, &self.senses)
    }

    /// The archived evaluation with the best value of objective `index`.
    pub fn best_by_objective(&self, index: usize) -> Option<&Evaluation> {
        let sense = *self.senses.get(index)?;
        self.archive.iter().max_by(|a, b| {
            let (va, vb) = (a.objectives[index], b.objectives[index]);
            let ord = va.partial_cmp(&vb).unwrap_or(std::cmp::Ordering::Equal);
            match sense {
                Sense::Maximize => ord,
                Sense::Minimize => ord.reverse(),
            }
        })
    }
}

/// The weight-based genetic algorithm.
#[derive(Debug, Clone)]
pub struct Wbga {
    config: GaConfig,
}

impl Wbga {
    /// Creates a WBGA with the given configuration.
    pub fn new(config: GaConfig) -> Self {
        Wbga { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &GaConfig {
        &self.config
    }

    /// Runs the optimisation against a problem.
    ///
    /// Candidate generations are evaluated through
    /// [`SizingProblem::evaluate_batch`], so problems that override the batch
    /// entry point (e.g. circuit simulation) spread GA evaluations across all
    /// cores without affecting reproducibility.
    pub fn run<P: SizingProblem + ?Sized>(&self, problem: &P) -> WbgaResult {
        let cfg = &self.config;
        let n_params = problem.parameter_count();
        let n_obj = problem.objective_count();
        let senses: Vec<Sense> = problem.objectives().iter().map(|o| o.sense).collect();
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        let mut archive: Vec<Evaluation> = Vec::with_capacity(cfg.evaluation_budget());
        let mut history = Vec::with_capacity(cfg.generations);
        let mut evaluations = 0usize;
        let mut failed = 0usize;

        // Initial population: random parameters and random weight genes.
        let mut population: Vec<WbgaIndividual> = (0..cfg.population_size)
            .map(|_| WbgaIndividual {
                parameters: random_genes(&mut rng, n_params),
                weight_genes: random_genes(&mut rng, n_obj),
                objectives: None,
                fitness: f64::NEG_INFINITY,
            })
            .collect();
        evaluate_population(
            problem,
            &mut population,
            &mut archive,
            &mut evaluations,
            &mut failed,
        );

        for generation in 0..cfg.generations {
            assign_fitness(&mut population, &senses);
            history.push(generation_stats(generation, &population));

            if generation + 1 == cfg.generations {
                break;
            }

            // Selection / crossover / mutation to build the next generation.
            let fitness: Vec<f64> = population.iter().map(|i| i.fitness).collect();
            let mut next: Vec<WbgaIndividual> = Vec::with_capacity(cfg.population_size);

            // Elitism: carry over the best individuals unchanged (they are
            // not re-evaluated and not re-archived).
            let mut order: Vec<usize> = (0..population.len()).collect();
            order.sort_by(|&a, &b| {
                population[b]
                    .fitness
                    .partial_cmp(&population[a].fitness)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            for &idx in order.iter().take(cfg.elitism.min(population.len())) {
                next.push(population[idx].clone());
            }

            // Generate the full set of offspring first, then evaluate them as
            // one batch.
            let mut offspring: Vec<WbgaIndividual> = Vec::with_capacity(cfg.population_size);
            while next.len() + offspring.len() < cfg.population_size {
                let pa = &population[tournament_select(&mut rng, &fitness, cfg.tournament_size)];
                let pb = &population[tournament_select(&mut rng, &fitness, cfg.tournament_size)];
                // Crossover acts on the full GA string (parameters + weights),
                // exactly as in Figure 4 of the paper.
                let genome_a: Vec<f64> = pa
                    .parameters
                    .iter()
                    .chain(pa.weight_genes.iter())
                    .copied()
                    .collect();
                let genome_b: Vec<f64> = pb
                    .parameters
                    .iter()
                    .chain(pb.weight_genes.iter())
                    .copied()
                    .collect();
                let (mut child_a, mut child_b) = if rng.gen::<f64>() < cfg.crossover_rate {
                    blend_crossover(&mut rng, &genome_a, &genome_b, 0.3)
                } else {
                    (genome_a.clone(), genome_b.clone())
                };
                gaussian_mutation(
                    &mut rng,
                    &mut child_a,
                    cfg.mutation_rate,
                    cfg.mutation_sigma,
                );
                gaussian_mutation(
                    &mut rng,
                    &mut child_b,
                    cfg.mutation_rate,
                    cfg.mutation_sigma,
                );
                for child in [child_a, child_b] {
                    if next.len() + offspring.len() >= cfg.population_size {
                        break;
                    }
                    offspring.push(WbgaIndividual {
                        parameters: child[..n_params].to_vec(),
                        weight_genes: child[n_params..].to_vec(),
                        objectives: None,
                        fitness: f64::NEG_INFINITY,
                    });
                }
            }
            evaluate_population(
                problem,
                &mut offspring,
                &mut archive,
                &mut evaluations,
                &mut failed,
            );
            next.append(&mut offspring);
            population = next;
        }

        WbgaResult {
            archive,
            history,
            evaluations,
            failed_evaluations: failed,
            senses,
        }
    }
}

impl Optimizer for Wbga {
    fn name(&self) -> &'static str {
        "wbga"
    }

    fn run(&self, problem: &dyn SizingProblem) -> OptimizationResult {
        Wbga::run(self, problem).into()
    }
}

/// Evaluates `individuals` as one batch, recording results in the archive and
/// the evaluation counters.
fn evaluate_population<P: SizingProblem + ?Sized>(
    problem: &P,
    individuals: &mut [WbgaIndividual],
    archive: &mut Vec<Evaluation>,
    evaluations: &mut usize,
    failed: &mut usize,
) {
    let batch: Vec<Vec<f64>> = individuals
        .iter()
        .map(|individual| individual.parameters.clone())
        .collect();
    for (individual, result) in individuals.iter_mut().zip(problem.evaluate_batch(&batch)) {
        *evaluations += 1;
        match result {
            Some(evaluation) => {
                individual.objectives = Some(evaluation.objectives.clone());
                archive.push(evaluation);
            }
            None => {
                *failed += 1;
                individual.objectives = None;
            }
        }
    }
}

/// Assigns eq.-5 fitness values to a population in place.
fn assign_fitness(population: &mut [WbgaIndividual], senses: &[Sense]) {
    let n_obj = senses.len();
    // Objective ranges over the feasible part of the population.
    let mut min = vec![f64::INFINITY; n_obj];
    let mut max = vec![f64::NEG_INFINITY; n_obj];
    for individual in population.iter() {
        if let Some(objectives) = &individual.objectives {
            for (j, &value) in objectives.iter().enumerate() {
                min[j] = min[j].min(value);
                max[j] = max[j].max(value);
            }
        }
    }
    for individual in population.iter_mut() {
        individual.fitness = match &individual.objectives {
            None => f64::NEG_INFINITY,
            Some(objectives) => {
                let weights = normalize_weights(&individual.weight_genes);
                objectives
                    .iter()
                    .enumerate()
                    .map(|(j, &value)| {
                        let span = (max[j] - min[j]).max(1e-30);
                        let normalized = match senses[j] {
                            Sense::Maximize => (value - min[j]) / span,
                            Sense::Minimize => (max[j] - value) / span,
                        };
                        weights[j] * normalized
                    })
                    .sum()
            }
        };
    }
}

fn generation_stats(generation: usize, population: &[WbgaIndividual]) -> GenerationStats {
    let feasible: Vec<f64> = population
        .iter()
        .filter(|i| i.objectives.is_some())
        .map(|i| i.fitness)
        .collect();
    let best = feasible.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mean = if feasible.is_empty() {
        0.0
    } else {
        feasible.iter().sum::<f64>() / feasible.len() as f64
    };
    GenerationStats {
        generation,
        best_fitness: best,
        mean_fitness: mean,
        feasible: feasible.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{FnProblem, ObjectiveSpec};

    /// A two-objective problem with a known concave trade-off:
    /// maximise f1 = x and f2 = 1 − x² over x ∈ [0, 1].
    fn tradeoff_problem() -> FnProblem<impl Fn(&[f64]) -> Option<Vec<f64>>> {
        FnProblem::new(
            1,
            vec![ObjectiveSpec::maximize("f1"), ObjectiveSpec::maximize("f2")],
            |x: &[f64]| Some(vec![x[0], 1.0 - x[0] * x[0]]),
        )
    }

    #[test]
    fn weight_normalization_follows_equation_four() {
        let w = normalize_weights(&[0.2, 0.6]);
        assert!((w[0] - 0.25).abs() < 1e-12);
        assert!((w[1] - 0.75).abs() < 1e-12);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Degenerate all-zero weights fall back to uniform.
        let w = normalize_weights(&[0.0, 0.0, 0.0]);
        assert!(w.iter().all(|&x| (x - 1.0 / 3.0).abs() < 1e-12));
    }

    #[test]
    fn archive_size_matches_evaluation_budget() {
        let config = GaConfig::small_test();
        let result = Wbga::new(config).run(&tradeoff_problem());
        assert_eq!(result.evaluations, config.exact_evaluations());
        assert_eq!(result.archive.len(), result.evaluations);
        assert_eq!(result.failed_evaluations, 0);
        assert_eq!(result.history.len(), config.generations);

        // With elitism disabled (the paper configuration) the evaluation count
        // equals population × generations exactly.
        let mut no_elite = config;
        no_elite.elitism = 0;
        no_elite.population_size = 10;
        no_elite.generations = 5;
        let result = Wbga::new(no_elite).run(&tradeoff_problem());
        assert_eq!(result.evaluations, 50);
    }

    #[test]
    fn run_is_reproducible_with_fixed_seed() {
        let config = GaConfig::small_test();
        let a = Wbga::new(config).run(&tradeoff_problem());
        let b = Wbga::new(config).run(&tradeoff_problem());
        assert_eq!(a.archive, b.archive);
        let c = Wbga::new(config.with_seed(99)).run(&tradeoff_problem());
        assert_ne!(a.archive, c.archive);
    }

    #[test]
    fn pareto_front_approaches_known_tradeoff_curve() {
        let result = Wbga::new(GaConfig::small_test()).run(&tradeoff_problem());
        let front = result.pareto_front();
        assert!(!front.is_empty());
        // Every front point satisfies f2 = 1 − f1² by construction; the front
        // should span a reasonable part of the trade-off.
        for point in &front {
            let (f1, f2) = (point.objectives[0], point.objectives[1]);
            assert!((f2 - (1.0 - f1 * f1)).abs() < 1e-9);
        }
        let span = front.last().unwrap().objectives[0] - front[0].objectives[0];
        assert!(
            span > 0.3,
            "front should spread along the trade-off, span = {span}"
        );
    }

    #[test]
    fn fitness_improves_over_generations() {
        let result = Wbga::new(GaConfig::small_test()).run(&tradeoff_problem());
        let first = result.history.first().unwrap().best_fitness;
        let last = result.history.last().unwrap().best_fitness;
        assert!(
            last >= first - 1e-9,
            "best fitness degraded: {first} -> {last}"
        );
    }

    #[test]
    fn infeasible_evaluations_are_counted_and_skipped() {
        let problem = FnProblem::new(
            1,
            vec![ObjectiveSpec::maximize("f1"), ObjectiveSpec::maximize("f2")],
            |x: &[f64]| {
                if x[0] < 0.5 {
                    None
                } else {
                    Some(vec![x[0], 1.0 - x[0]])
                }
            },
        );
        let result = Wbga::new(GaConfig::small_test()).run(&problem);
        assert!(result.failed_evaluations > 0);
        assert_eq!(
            result.archive.len() + result.failed_evaluations,
            result.evaluations
        );
        // Archived points are all feasible.
        assert!(result.archive.iter().all(|e| e.parameters[0] >= 0.5));
    }

    #[test]
    fn best_by_objective_respects_sense() {
        let result = Wbga::new(GaConfig::small_test()).run(&tradeoff_problem());
        let best_f1 = result.best_by_objective(0).unwrap().objectives[0];
        assert!(result
            .archive
            .iter()
            .all(|e| e.objectives[0] <= best_f1 + 1e-12));
        assert!(result.best_by_objective(5).is_none());
    }
}
