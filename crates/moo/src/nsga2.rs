//! NSGA-II baseline optimiser.
//!
//! The paper chooses the WBGA; NSGA-II (Deb, paper ref. \[8\]) is the standard
//! alternative for multi-objective analogue sizing and is provided here as the
//! comparison baseline for the `ablation_wbga_vs_nsga2` benchmark: same
//! evaluation budget, front quality compared via hypervolume.

use crate::checkpoint::{
    Checkpoint, CheckpointControl, CheckpointError, CheckpointIndividual, CheckpointSink,
    DiscardCheckpoints,
};
use crate::config::{GaConfig, GenerationStats};
use crate::operators::{blend_crossover, gaussian_mutation, random_genes};
use crate::optimizer::{OptimizationResult, Optimizer};
use crate::pareto::{crowding_distance, fast_non_dominated_sort, pareto_front, FrontTracker};
use crate::problem::{Evaluation, Sense, SizingProblem};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Result of an NSGA-II run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Nsga2Result {
    /// Every successful evaluation performed during the run.
    pub archive: Vec<Evaluation>,
    /// The final population (after the last environmental selection).
    pub final_population: Vec<Evaluation>,
    /// Per-generation statistics (best/mean of the first objective).
    pub history: Vec<GenerationStats>,
    /// Number of evaluation attempts, including failures.
    pub evaluations: usize,
    /// Number of failed evaluations.
    pub failed_evaluations: usize,
    /// Objective senses copied from the problem.
    pub senses: Vec<Sense>,
}

impl Nsga2Result {
    /// Pareto front over the complete evaluation archive.
    pub fn pareto_front(&self) -> Vec<Evaluation> {
        pareto_front(&self.archive, &self.senses)
    }
}

#[derive(Debug, Clone)]
struct Candidate {
    genes: Vec<f64>,
    objectives: Option<Vec<f64>>,
}

/// The NSGA-II optimiser.
#[derive(Debug, Clone)]
pub struct Nsga2 {
    config: GaConfig,
}

impl Nsga2 {
    /// Creates an optimiser with the given configuration.
    pub fn new(config: GaConfig) -> Self {
        Nsga2 { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &GaConfig {
        &self.config
    }

    /// Runs the optimisation.
    ///
    /// Populations are evaluated through [`SizingProblem::evaluate_batch`],
    /// so problems with a parallel batch implementation use every core.
    pub fn run<P: SizingProblem + ?Sized>(&self, problem: &P) -> Nsga2Result {
        self.run_resumable(problem, None, &mut DiscardCheckpoints)
            .expect("a fresh NSGA-II run cannot fail")
    }

    /// Runs the optimisation with per-generation checkpointing, optionally
    /// resuming from a previously captured [`Checkpoint`].
    ///
    /// Semantics match [`Wbga::run_resumable`](crate::Wbga::run_resumable):
    /// with [`DiscardCheckpoints`] and no resume state this is exactly
    /// [`Nsga2::run`], and resuming from any emitted checkpoint reproduces
    /// the uninterrupted run bit-for-bit.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError`] on an incompatible `resume` state or
    /// [`CheckpointError::Halted`] when the sink requested a stop.
    pub fn run_resumable<P: SizingProblem + ?Sized>(
        &self,
        problem: &P,
        resume: Option<Checkpoint>,
        sink: &mut dyn CheckpointSink,
    ) -> Result<Nsga2Result, CheckpointError> {
        let cfg = &self.config;
        let n_params = problem.parameter_count();
        let senses: Vec<Sense> = problem.objectives().iter().map(|o| o.sense).collect();

        let evaluate_batch = |genomes: Vec<Vec<f64>>,
                              archive: &mut Vec<Evaluation>,
                              evaluations: &mut usize,
                              failed: &mut usize| {
            let results = problem.evaluate_batch(&genomes);
            genomes
                .into_iter()
                .zip(results)
                .map(|(genes, result)| {
                    *evaluations += 1;
                    let objectives = match result {
                        Some(evaluation) => {
                            let objectives = evaluation.objectives.clone();
                            archive.push(evaluation);
                            Some(objectives)
                        }
                        None => {
                            *failed += 1;
                            None
                        }
                    };
                    Candidate { genes, objectives }
                })
                .collect::<Vec<Candidate>>()
        };

        let mut rng;
        let mut archive;
        let mut history;
        let mut evaluations;
        let mut failed;
        let mut stall;
        let mut population;
        let start_generation;

        match resume {
            None => {
                rng = StdRng::seed_from_u64(cfg.seed);
                archive = Vec::new();
                history = Vec::new();
                evaluations = 0usize;
                failed = 0usize;
                stall = 0usize;
                start_generation = 0;
                let genomes: Vec<Vec<f64>> = (0..cfg.population_size)
                    .map(|_| random_genes(&mut rng, n_params))
                    .collect();
                population = evaluate_batch(genomes, &mut archive, &mut evaluations, &mut failed);
            }
            Some(checkpoint) => {
                checkpoint.validate("nsga2", n_params, &senses, cfg.generations)?;
                rng = StdRng::from_state(checkpoint.rng_state);
                population = checkpoint
                    .population
                    .into_iter()
                    .map(|individual| Candidate {
                        genes: individual.parameters,
                        objectives: individual.objectives,
                    })
                    .collect();
                archive = checkpoint.archive;
                history = checkpoint.history;
                evaluations = checkpoint.evaluations;
                failed = checkpoint.failed_evaluations;
                stall = checkpoint.stall_generations;
                start_generation = checkpoint.next_generation;
            }
        }

        let mut tracker = cfg
            .early_stop
            .map(|_| FrontTracker::from_archive(&archive, &senses));

        for generation in start_generation..cfg.generations {
            history.push(stats(generation, &population, &senses));
            if generation + 1 == cfg.generations {
                break;
            }
            if let Some(early_stop) = &cfg.early_stop {
                if stall >= early_stop.effective_patience() {
                    break;
                }
            }
            // Rank the current population to drive mating selection.
            let (ranks, crowding) = rank_population(&population, &senses);

            // Generate the full offspring genome set, then evaluate one batch.
            let mut offspring_genomes: Vec<Vec<f64>> = Vec::with_capacity(cfg.population_size);
            while offspring_genomes.len() < cfg.population_size {
                let pa = binary_tournament(&mut rng, &ranks, &crowding);
                let pb = binary_tournament(&mut rng, &ranks, &crowding);
                let (mut child_a, mut child_b) = if rng.gen::<f64>() < cfg.crossover_rate {
                    blend_crossover(&mut rng, &population[pa].genes, &population[pb].genes, 0.3)
                } else {
                    (population[pa].genes.clone(), population[pb].genes.clone())
                };
                gaussian_mutation(
                    &mut rng,
                    &mut child_a,
                    cfg.mutation_rate,
                    cfg.mutation_sigma,
                );
                gaussian_mutation(
                    &mut rng,
                    &mut child_b,
                    cfg.mutation_rate,
                    cfg.mutation_sigma,
                );
                for child in [child_a, child_b] {
                    if offspring_genomes.len() >= cfg.population_size {
                        break;
                    }
                    offspring_genomes.push(child);
                }
            }
            let archived_before = archive.len();
            let offspring = evaluate_batch(
                offspring_genomes,
                &mut archive,
                &mut evaluations,
                &mut failed,
            );
            if let Some(tracker) = tracker.as_mut() {
                let mut improved = false;
                for evaluation in &archive[archived_before..] {
                    improved |= tracker.insert(evaluation);
                }
                stall = if improved { 0 } else { stall + 1 };
            }

            // Environmental selection over parents + offspring.
            let mut combined = population;
            combined.extend(offspring);
            population = environmental_selection(combined, cfg.population_size, &senses);

            if sink.wants_checkpoints() {
                let checkpoint = Checkpoint {
                    optimizer: "nsga2".to_string(),
                    next_generation: generation + 1,
                    rng_state: rng.state(),
                    population: population
                        .iter()
                        .map(|candidate| CheckpointIndividual {
                            parameters: candidate.genes.clone(),
                            weight_genes: Vec::new(),
                            objectives: candidate.objectives.clone(),
                        })
                        .collect(),
                    archive: archive.clone(),
                    history: history.clone(),
                    evaluations,
                    failed_evaluations: failed,
                    stall_generations: stall,
                    senses: senses.clone(),
                };
                if sink.on_checkpoint(&checkpoint) == CheckpointControl::Halt {
                    return Err(CheckpointError::Halted {
                        generation: generation + 1,
                    });
                }
            }
        }

        let final_population = population
            .iter()
            .filter_map(|c| {
                c.objectives
                    .as_ref()
                    .map(|obj| Evaluation::new(c.genes.clone(), obj.clone()))
            })
            .collect();

        Ok(Nsga2Result {
            archive,
            final_population,
            history,
            evaluations,
            failed_evaluations: failed,
            senses,
        })
    }
}

impl Optimizer for Nsga2 {
    fn name(&self) -> &'static str {
        "nsga2"
    }

    fn run(&self, problem: &dyn SizingProblem) -> OptimizationResult {
        Nsga2::run(self, problem).into()
    }

    fn run_checkpointed(
        &self,
        problem: &dyn SizingProblem,
        resume: Option<Checkpoint>,
        sink: &mut dyn CheckpointSink,
    ) -> Result<OptimizationResult, CheckpointError> {
        self.run_resumable(problem, resume, sink).map(Into::into)
    }
}

/// Worst-possible objective vector used to park infeasible candidates at the
/// bottom of the ranking without special cases.
fn penalty_objectives(senses: &[Sense]) -> Vec<f64> {
    senses
        .iter()
        .map(|s| match s {
            Sense::Maximize => -1e300,
            Sense::Minimize => 1e300,
        })
        .collect()
}

fn rank_population(population: &[Candidate], senses: &[Sense]) -> (Vec<usize>, Vec<f64>) {
    let objectives: Vec<Vec<f64>> = population
        .iter()
        .map(|c| {
            c.objectives
                .clone()
                .unwrap_or_else(|| penalty_objectives(senses))
        })
        .collect();
    let fronts = fast_non_dominated_sort(&objectives, senses);
    let mut ranks = vec![0usize; population.len()];
    let mut crowding = vec![0.0f64; population.len()];
    for (rank, front) in fronts.iter().enumerate() {
        let distances = crowding_distance(&objectives, front);
        for (&idx, &dist) in front.iter().zip(distances.iter()) {
            ranks[idx] = rank;
            crowding[idx] = dist;
        }
    }
    (ranks, crowding)
}

fn binary_tournament<R: Rng + ?Sized>(rng: &mut R, ranks: &[usize], crowding: &[f64]) -> usize {
    let a = rng.gen_range(0..ranks.len());
    let b = rng.gen_range(0..ranks.len());
    if ranks[a] < ranks[b] {
        a
    } else if ranks[b] < ranks[a] {
        b
    } else if crowding[a] >= crowding[b] {
        a
    } else {
        b
    }
}

fn environmental_selection(
    combined: Vec<Candidate>,
    target: usize,
    senses: &[Sense],
) -> Vec<Candidate> {
    let objectives: Vec<Vec<f64>> = combined
        .iter()
        .map(|c| {
            c.objectives
                .clone()
                .unwrap_or_else(|| penalty_objectives(senses))
        })
        .collect();
    let fronts = fast_non_dominated_sort(&objectives, senses);
    let mut selected: Vec<usize> = Vec::with_capacity(target);
    for front in fronts {
        if selected.len() + front.len() <= target {
            selected.extend_from_slice(&front);
        } else {
            let distances = crowding_distance(&objectives, &front);
            let mut order: Vec<usize> = (0..front.len()).collect();
            order.sort_by(|&a, &b| {
                distances[b]
                    .partial_cmp(&distances[a])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            for &k in order.iter().take(target - selected.len()) {
                selected.push(front[k]);
            }
        }
        if selected.len() >= target {
            break;
        }
    }
    selected.into_iter().map(|i| combined[i].clone()).collect()
}

fn stats(generation: usize, population: &[Candidate], senses: &[Sense]) -> GenerationStats {
    let values: Vec<f64> = population
        .iter()
        .filter_map(|c| c.objectives.as_ref().map(|o| o[0]))
        .collect();
    // An all-infeasible generation records 0.0, not ±inf: checkpoints are
    // JSON and non-finite floats do not survive the round-trip, which would
    // break bit-identical resume.
    let best = if values.is_empty() {
        0.0
    } else {
        match senses[0] {
            Sense::Maximize => values.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
            Sense::Minimize => values.iter().cloned().fold(f64::INFINITY, f64::min),
        }
    };
    let mean = if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    };
    GenerationStats {
        generation,
        best_fitness: best,
        mean_fitness: mean,
        feasible: values.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{FnProblem, ObjectiveSpec};

    /// ZDT1-like problem with three variables (both objectives minimised).
    fn zdt1() -> FnProblem<impl Fn(&[f64]) -> Option<Vec<f64>>> {
        FnProblem::new(
            3,
            vec![ObjectiveSpec::minimize("f1"), ObjectiveSpec::minimize("f2")],
            |x: &[f64]| {
                let f1 = x[0];
                let g = 1.0 + 9.0 * (x[1] + x[2]) / 2.0;
                let f2 = g * (1.0 - (f1 / g).sqrt());
                Some(vec![f1, f2])
            },
        )
    }

    #[test]
    fn nsga2_converges_towards_zdt1_front() {
        let mut cfg = GaConfig::small_test();
        cfg.population_size = 24;
        cfg.generations = 30;
        let result = Nsga2::new(cfg).run(&zdt1());
        assert_eq!(result.evaluations, cfg.evaluation_budget());
        let front = pareto_front(&result.final_population, &result.senses);
        assert!(!front.is_empty());
        // On the true front g = 1, i.e. f2 = 1 − sqrt(f1). Check proximity.
        let mean_violation: f64 = front
            .iter()
            .map(|e| (e.objectives[1] - (1.0 - e.objectives[0].sqrt())).abs())
            .sum::<f64>()
            / front.len() as f64;
        assert!(
            mean_violation < 0.6,
            "front too far from optimum: {mean_violation}"
        );
    }

    #[test]
    fn final_population_size_is_bounded() {
        let cfg = GaConfig::small_test();
        let result = Nsga2::new(cfg).run(&zdt1());
        assert!(result.final_population.len() <= cfg.population_size);
        assert_eq!(result.history.len(), cfg.generations);
    }

    #[test]
    fn infeasible_points_never_reach_the_front() {
        let problem = FnProblem::new(
            2,
            vec![ObjectiveSpec::minimize("f1"), ObjectiveSpec::minimize("f2")],
            |x: &[f64]| {
                if x[0] > 0.8 {
                    None
                } else {
                    Some(vec![x[0], 1.0 - x[0] + x[1]])
                }
            },
        );
        let result = Nsga2::new(GaConfig::small_test()).run(&problem);
        assert!(result.failed_evaluations > 0);
        assert!(result.pareto_front().iter().all(|e| e.parameters[0] <= 0.8));
    }

    #[test]
    fn reproducible_with_same_seed() {
        let cfg = GaConfig::small_test();
        let a = Nsga2::new(cfg).run(&zdt1());
        let b = Nsga2::new(cfg).run(&zdt1());
        assert_eq!(a.archive, b.archive);
    }

    #[test]
    fn resume_from_any_checkpoint_reproduces_the_full_run() {
        let problem = zdt1();
        let nsga2 = Nsga2::new(GaConfig::small_test());
        let full = nsga2.run(&problem);
        let mut checkpoints = Vec::new();
        let mut sink = |cp: &Checkpoint| {
            checkpoints.push(cp.clone());
            CheckpointControl::Continue
        };
        let checkpointed = nsga2.run_resumable(&problem, None, &mut sink).unwrap();
        assert_eq!(checkpointed.archive, full.archive);
        assert_eq!(checkpointed.final_population, full.final_population);

        for checkpoint in checkpoints {
            let generation = checkpoint.next_generation;
            let resumed = nsga2
                .run_resumable(&problem, Some(checkpoint), &mut DiscardCheckpoints)
                .unwrap_or_else(|e| panic!("resume from generation {generation} failed: {e}"));
            assert_eq!(resumed.archive, full.archive, "gen {generation}");
            assert_eq!(
                resumed.final_population, full.final_population,
                "gen {generation}"
            );
            assert_eq!(resumed.history, full.history, "gen {generation}");
        }
    }
}
