//! Per-generation optimiser checkpointing.
//!
//! Every generational optimiser in this crate ([`Wbga`](crate::Wbga),
//! [`Nsga2`](crate::Nsga2) and — chunk-wise — [`RandomSearch`](crate::RandomSearch))
//! can snapshot its complete state between generations as a serializable
//! [`Checkpoint`] and later resume from one, continuing the *exact* run: the
//! RNG stream is restored bit-for-bit (via the xoshiro256++ state exposed by
//! the vendored `rand`), the population round-trips losslessly (JSON floats
//! use shortest-round-trip formatting), and a resumed run therefore produces
//! a result identical to the uninterrupted run with the same seed.
//!
//! The entry point is [`Optimizer::run_checkpointed`](crate::Optimizer::run_checkpointed):
//! checkpoints are pushed into a [`CheckpointSink`] after each completed
//! generation, and the sink can request a [`CheckpointControl::Halt`] to stop
//! the run at a well-defined boundary (used by the flow layer to simulate
//! crashes deterministically and to pause runs).

use crate::config::GenerationStats;
use crate::problem::{Evaluation, Sense};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One population member inside a [`Checkpoint`].
///
/// This is the optimiser-independent projection of a population slot: WBGA
/// individuals carry weight genes, NSGA-II candidates leave them empty, and
/// the fitness assigned by WBGA is intentionally *not* stored — it is a pure
/// function of the population's objectives and is reassigned on resume (which
/// also keeps non-finite fitness values out of the JSON).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointIndividual {
    /// Normalised designable parameters in `[0, 1]^n`.
    pub parameters: Vec<f64>,
    /// Raw weight genes (WBGA only; empty for other optimisers).
    pub weight_genes: Vec<f64>,
    /// Raw objective values, `None` if the evaluation was infeasible.
    pub objectives: Option<Vec<f64>>,
}

/// A complete, serializable optimiser state captured at a generation boundary.
///
/// A checkpoint with `next_generation = g` is taken after the population of
/// generation `g` has been bred and evaluated, but before its fitness
/// assignment; resuming from it re-enters the generation loop at `g` and
/// continues the identical run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Stable identifier of the optimiser that produced this checkpoint
    /// (`"wbga"`, `"nsga2"`, `"random_search"`); resume refuses a mismatch.
    pub optimizer: String,
    /// Index of the next generation to run (for random search: the next
    /// evaluation chunk).
    pub next_generation: usize,
    /// xoshiro256++ state of the optimiser RNG at the snapshot point.
    pub rng_state: [u64; 4],
    /// Current population (empty for non-populational optimisers).
    pub population: Vec<CheckpointIndividual>,
    /// Every successful evaluation performed so far.
    pub archive: Vec<Evaluation>,
    /// Per-generation statistics recorded so far.
    pub history: Vec<GenerationStats>,
    /// Number of evaluation attempts so far, including failures.
    pub evaluations: usize,
    /// Number of failed (infeasible) evaluations so far.
    pub failed_evaluations: usize,
    /// Consecutive generations without a Pareto-front improvement (the
    /// early-stopping stall counter; see [`EarlyStop`](crate::EarlyStop)).
    pub stall_generations: usize,
    /// Objective senses copied from the problem.
    pub senses: Vec<Sense>,
}

/// Errors produced when resuming from (or halting at) a checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckpointError {
    /// The checkpoint was produced by a different optimiser.
    OptimizerMismatch {
        /// Name of the optimiser asked to resume.
        expected: String,
        /// Name recorded in the checkpoint.
        found: String,
    },
    /// The checkpoint does not fit the problem or configuration.
    Incompatible(String),
    /// The optimiser does not support checkpointed execution.
    Unsupported(String),
    /// The run was stopped by the sink at a checkpoint boundary (not an
    /// error in the usual sense: the checkpoint with this generation index
    /// holds the complete state and the run can be resumed from it).
    Halted {
        /// `next_generation` of the checkpoint the run stopped at.
        generation: usize,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::OptimizerMismatch { expected, found } => write!(
                f,
                "checkpoint was produced by optimiser `{found}`, cannot resume with `{expected}`"
            ),
            CheckpointError::Incompatible(reason) => {
                write!(f, "checkpoint is incompatible: {reason}")
            }
            CheckpointError::Unsupported(name) => {
                write!(f, "optimiser `{name}` does not support checkpointing")
            }
            CheckpointError::Halted { generation } => {
                write!(
                    f,
                    "run halted at generation {generation} by the checkpoint sink"
                )
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Whether a checkpointed run continues past a checkpoint boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointControl {
    /// Keep running.
    Continue,
    /// Stop at this boundary; the run returns
    /// [`CheckpointError::Halted`] and can be resumed from the checkpoint
    /// that was just emitted.
    Halt,
}

/// Receives a [`Checkpoint`] after every completed generation.
pub trait CheckpointSink {
    /// Called once per generation boundary with the freshly captured state.
    fn on_checkpoint(&mut self, checkpoint: &Checkpoint) -> CheckpointControl;

    /// Whether this sink wants checkpoints at all. When `false`, the
    /// optimiser skips both the snapshot construction (which deep-clones
    /// the population and archive every generation) *and* the
    /// [`CheckpointSink::on_checkpoint`] call — so a non-wanting sink can
    /// never halt a run. Defaults to `true`.
    fn wants_checkpoints(&self) -> bool {
        true
    }
}

impl<F: FnMut(&Checkpoint) -> CheckpointControl> CheckpointSink for F {
    fn on_checkpoint(&mut self, checkpoint: &Checkpoint) -> CheckpointControl {
        self(checkpoint)
    }
}

/// A [`CheckpointSink`] that discards every checkpoint and never halts —
/// checkpointed execution with this sink is exactly a plain run (the
/// snapshots are not even constructed).
#[derive(Debug, Clone, Copy, Default)]
pub struct DiscardCheckpoints;

impl CheckpointSink for DiscardCheckpoints {
    fn on_checkpoint(&mut self, _checkpoint: &Checkpoint) -> CheckpointControl {
        CheckpointControl::Continue
    }

    fn wants_checkpoints(&self) -> bool {
        false
    }
}

impl Checkpoint {
    /// Validates the parts of a checkpoint every optimiser shares: the
    /// optimiser name, the problem's parameter/objective shape, and the
    /// generation bound.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::OptimizerMismatch`] or
    /// [`CheckpointError::Incompatible`] when the checkpoint cannot drive
    /// the given problem/configuration.
    pub fn validate(
        &self,
        expected_optimizer: &str,
        parameter_count: usize,
        senses: &[Sense],
        max_generation: usize,
    ) -> Result<(), CheckpointError> {
        if self.optimizer != expected_optimizer {
            return Err(CheckpointError::OptimizerMismatch {
                expected: expected_optimizer.to_string(),
                found: self.optimizer.clone(),
            });
        }
        if self.senses != senses {
            return Err(CheckpointError::Incompatible(format!(
                "objective senses differ (checkpoint has {}, problem has {})",
                self.senses.len(),
                senses.len()
            )));
        }
        if self.next_generation > max_generation {
            return Err(CheckpointError::Incompatible(format!(
                "checkpoint is at generation {} but the configuration only runs {}",
                self.next_generation, max_generation
            )));
        }
        for individual in &self.population {
            if individual.parameters.len() != parameter_count {
                return Err(CheckpointError::Incompatible(format!(
                    "population individual has {} parameters, problem has {}",
                    individual.parameters.len(),
                    parameter_count
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_checkpoint() -> Checkpoint {
        Checkpoint {
            optimizer: "wbga".to_string(),
            next_generation: 3,
            rng_state: [1, 2, 3, u64::MAX],
            population: vec![
                CheckpointIndividual {
                    parameters: vec![0.25, 0.5],
                    weight_genes: vec![0.1, 0.9],
                    objectives: Some(vec![1.5, -2.25]),
                },
                CheckpointIndividual {
                    parameters: vec![0.75, 0.125],
                    weight_genes: vec![0.4, 0.6],
                    objectives: None,
                },
            ],
            archive: vec![Evaluation::new(vec![0.25, 0.5], vec![1.5, -2.25])],
            history: vec![GenerationStats {
                generation: 0,
                best_fitness: 0.75,
                mean_fitness: 0.5,
                feasible: 1,
            }],
            evaluations: 4,
            failed_evaluations: 1,
            stall_generations: 2,
            senses: vec![Sense::Maximize, Sense::Minimize],
        }
    }

    #[test]
    fn checkpoint_roundtrips_through_json() {
        let checkpoint = sample_checkpoint();
        let json = serde_json::to_string(&checkpoint).expect("serializes");
        let back: Checkpoint = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, checkpoint);
    }

    #[test]
    fn validate_accepts_matching_shape() {
        let checkpoint = sample_checkpoint();
        let senses = [Sense::Maximize, Sense::Minimize];
        assert!(checkpoint.validate("wbga", 2, &senses, 10).is_ok());
    }

    #[test]
    fn validate_rejects_mismatches() {
        let checkpoint = sample_checkpoint();
        let senses = [Sense::Maximize, Sense::Minimize];
        assert!(matches!(
            checkpoint.validate("nsga2", 2, &senses, 10),
            Err(CheckpointError::OptimizerMismatch { .. })
        ));
        assert!(matches!(
            checkpoint.validate("wbga", 3, &senses, 10),
            Err(CheckpointError::Incompatible(_))
        ));
        assert!(matches!(
            checkpoint.validate("wbga", 2, &[Sense::Maximize], 10),
            Err(CheckpointError::Incompatible(_))
        ));
        assert!(matches!(
            checkpoint.validate("wbga", 2, &senses, 2),
            Err(CheckpointError::Incompatible(_))
        ));
    }

    #[test]
    fn closures_and_discard_are_sinks() {
        let mut seen = 0usize;
        let mut sink = |_: &Checkpoint| {
            seen += 1;
            CheckpointControl::Continue
        };
        let checkpoint = sample_checkpoint();
        assert_eq!(
            CheckpointSink::on_checkpoint(&mut sink, &checkpoint),
            CheckpointControl::Continue
        );
        assert_eq!(seen, 1);
        assert_eq!(
            DiscardCheckpoints.on_checkpoint(&checkpoint),
            CheckpointControl::Continue
        );
        // Closures want checkpoints by default; the discard sink opts out so
        // plain runs never pay for snapshot construction.
        let closure_sink = |_: &Checkpoint| CheckpointControl::Continue;
        assert!(CheckpointSink::wants_checkpoints(&closure_sink));
        assert!(!DiscardCheckpoints.wants_checkpoints());
    }

    #[test]
    fn errors_display_their_cause() {
        let e = CheckpointError::OptimizerMismatch {
            expected: "wbga".into(),
            found: "nsga2".into(),
        };
        assert!(e.to_string().contains("nsga2"));
        assert!(CheckpointError::Halted { generation: 7 }
            .to_string()
            .contains('7'));
        assert!(CheckpointError::Unsupported("x".into())
            .to_string()
            .contains("checkpointing"));
    }
}
