//! An in-process, cross-generation **evaluation cache**.
//!
//! GA populations revisit points: elitism carries individuals across
//! generations verbatim, archives are re-evaluated by variation studies, and
//! converged populations cluster. [`CachedProblem`] wraps any
//! [`SizingProblem`] and answers repeated evaluations from memory, so a
//! revisited point skips the expensive solve (the MNA factorisation, for the
//! circuit problems) entirely.
//!
//! ## Digest neutrality, by construction
//!
//! The cache is keyed by a *quantized* copy of the parameter vector — each
//! coordinate is divided by the configured step and rounded, so one map
//! entry covers a whole bucket of near-identical points and memory stays
//! bounded. A hit, however, is served **only when the stored raw parameters
//! are bit-for-bit equal** to the queried ones. Evaluation is a pure
//! function of the raw parameters, so a served hit is exactly the value the
//! wrapped problem would have recomputed: enabling the cache can never
//! change an optimiser's trajectory or a flow's determinism digest. The
//! quantization step only tunes how buckets (and therefore collisions —
//! which are misses, not wrong answers) are laid out.
//!
//! Infeasible outcomes (`None`) are cached too: a diverging bias point is
//! just as expensive to rediscover as a converging one.
//!
//! Batch evaluation additionally de-duplicates *within* the batch: identical
//! candidates in one population are solved once and fanned out, while the
//! distinct remainder still goes through the wrapped problem's own
//! `evaluate_batch` (keeping its thread pool or shard plane in play).

use crate::problem::{Evaluation, ObjectiveSpec, SizingProblem};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Default bound on cached entries; when reached the cache stops inserting
/// (deterministically) but keeps serving existing entries.
const DEFAULT_MAX_ENTRIES: usize = 262_144;

/// A cached outcome: the exact raw parameters it was computed from, plus
/// the objective values (`None` = infeasible).
type Cached = (Vec<f64>, Option<Vec<f64>>);

/// A [`SizingProblem`] wrapper that memoises evaluations.
///
/// See the [module docs](self) for the exactness guarantee. Hit/lookup
/// counters are exposed so flows can report cache effectiveness without
/// perturbing results.
pub struct CachedProblem<P> {
    inner: P,
    step: f64,
    max_entries: usize,
    map: Mutex<HashMap<Vec<u64>, Cached>>,
    hits: AtomicU64,
    lookups: AtomicU64,
}

/// Whether two vectors are bit-for-bit identical (the hit condition).
fn bits_equal(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

impl<P: SizingProblem> CachedProblem<P> {
    /// Wraps `inner` with a cache using quantization step `step` (values
    /// `<= 0` or non-finite fall back to a fine default of `1e-12`).
    pub fn new(inner: P, step: f64) -> CachedProblem<P> {
        let step = if step.is_finite() && step > 0.0 {
            step
        } else {
            1e-12
        };
        CachedProblem {
            inner,
            step,
            max_entries: DEFAULT_MAX_ENTRIES,
            map: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            lookups: AtomicU64::new(0),
        }
    }

    /// Caps the number of cached entries (insertions stop at the cap; hits
    /// keep being served).
    #[must_use]
    pub fn with_max_entries(mut self, max_entries: usize) -> CachedProblem<P> {
        self.max_entries = max_entries.max(1);
        self
    }

    /// Evaluations answered from the cache (including in-batch duplicates).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Total evaluations requested through this wrapper.
    pub fn lookups(&self) -> u64 {
        self.lookups.load(Ordering::Relaxed)
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.map.lock().expect("eval cache lock").len()
    }

    /// Whether the cache holds no entries yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The bucket key of `parameters`: each coordinate divided by the step
    /// and rounded. One entry per bucket bounds memory; a bucket collision
    /// with different raw bits is a miss (and the newer point takes the
    /// bucket over), never a wrong answer.
    fn bucket(&self, parameters: &[f64]) -> Vec<u64> {
        parameters
            .iter()
            .map(|&p| ((p / self.step).round() as i64) as u64)
            .collect()
    }

    /// Inserts unless the cap is reached (replacing an existing bucket
    /// entry is always allowed).
    fn store(
        &self,
        map: &mut HashMap<Vec<u64>, Cached>,
        key: Vec<u64>,
        parameters: &[f64],
        objectives: Option<Vec<f64>>,
    ) {
        if map.len() < self.max_entries || map.contains_key(&key) {
            map.insert(key, (parameters.to_vec(), objectives));
        }
    }
}

impl<P: SizingProblem> SizingProblem for CachedProblem<P> {
    fn parameter_count(&self) -> usize {
        self.inner.parameter_count()
    }

    fn objectives(&self) -> &[ObjectiveSpec] {
        self.inner.objectives()
    }

    fn evaluate(&self, parameters: &[f64]) -> Option<Vec<f64>> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let key = self.bucket(parameters);
        {
            let map = self.map.lock().expect("eval cache lock");
            if let Some((stored, outcome)) = map.get(&key) {
                if bits_equal(stored, parameters) {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return outcome.clone();
                }
            }
        }
        let outcome = self.inner.evaluate(parameters);
        let mut map = self.map.lock().expect("eval cache lock");
        self.store(&mut map, key, parameters, outcome.clone());
        outcome
    }

    fn evaluate_batch(&self, batch: &[Vec<f64>]) -> Vec<Option<Evaluation>> {
        self.lookups
            .fetch_add(batch.len() as u64, Ordering::Relaxed);

        /// Where slot `i`'s answer comes from.
        enum Slot {
            /// Served from the cross-generation cache.
            Hit(Option<Evaluation>),
            /// Index into the de-duplicated miss list.
            Miss(usize),
        }

        let mut slots: Vec<Slot> = Vec::with_capacity(batch.len());
        let mut misses: Vec<Vec<f64>> = Vec::new();
        let mut miss_keys: Vec<Vec<u64>> = Vec::new();
        // Raw-bits key → miss index: identical candidates inside one batch
        // are solved once and fanned out.
        let mut in_batch: HashMap<Vec<u64>, usize> = HashMap::new();
        {
            let map = self.map.lock().expect("eval cache lock");
            for parameters in batch {
                let key = self.bucket(parameters);
                if let Some((stored, outcome)) = map.get(&key) {
                    if bits_equal(stored, parameters) {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        slots.push(Slot::Hit(
                            outcome
                                .clone()
                                .map(|objectives| Evaluation::new(parameters.clone(), objectives)),
                        ));
                        continue;
                    }
                }
                let bits: Vec<u64> = parameters.iter().map(|p| p.to_bits()).collect();
                match in_batch.get(&bits) {
                    Some(&index) => {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        slots.push(Slot::Miss(index));
                    }
                    None => {
                        let index = misses.len();
                        in_batch.insert(bits, index);
                        misses.push(parameters.clone());
                        miss_keys.push(key);
                        slots.push(Slot::Miss(index));
                    }
                }
            }
        }

        // The distinct misses go through the wrapped problem's own batch
        // path — its parallelism (or shard plane) stays in effect.
        let results = if misses.is_empty() {
            Vec::new()
        } else {
            self.inner.evaluate_batch(&misses)
        };

        {
            let mut map = self.map.lock().expect("eval cache lock");
            for ((key, parameters), result) in miss_keys.into_iter().zip(&misses).zip(&results) {
                let objectives = result.as_ref().map(|e| e.objectives.clone());
                self.store(&mut map, key, parameters, objectives);
            }
        }

        slots
            .into_iter()
            .zip(batch)
            .map(|(slot, parameters)| match slot {
                Slot::Hit(evaluation) => evaluation,
                Slot::Miss(index) => results[index]
                    .as_ref()
                    .map(|e| Evaluation::new(parameters.clone(), e.objectives.clone())),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::FnProblem;
    use std::sync::atomic::AtomicUsize;

    fn counted_problem(
        calls: &AtomicUsize,
    ) -> FnProblem<impl Fn(&[f64]) -> Option<Vec<f64>> + Sync + '_> {
        FnProblem::new(
            2,
            vec![ObjectiveSpec::maximize("f1"), ObjectiveSpec::minimize("f2")],
            move |x: &[f64]| {
                calls.fetch_add(1, Ordering::Relaxed);
                if x[0] > 0.9 {
                    None
                } else {
                    Some(vec![x[0] + x[1], x[0] * x[1]])
                }
            },
        )
    }

    #[test]
    fn cached_results_match_uncached_including_infeasible_points() {
        let calls = AtomicUsize::new(0);
        let plain = counted_problem(&calls);
        let cached = CachedProblem::new(counted_problem(&calls), 1e-6);
        let batch: Vec<Vec<f64>> = (0..24)
            .map(|i| vec![(i as f64) / 24.0, ((i * 5) % 24) as f64 / 24.0])
            .collect();
        assert_eq!(cached.evaluate_batch(&batch), plain.evaluate_batch(&batch));
        for parameters in &batch {
            assert_eq!(cached.evaluate(parameters), plain.evaluate(parameters));
        }
    }

    #[test]
    fn a_repeated_batch_is_served_entirely_from_the_cache() {
        let calls = AtomicUsize::new(0);
        let cached = CachedProblem::new(counted_problem(&calls), 1e-6);
        let batch: Vec<Vec<f64>> = (0..8).map(|i| vec![(i as f64) / 10.0, 0.5]).collect();
        let first = cached.evaluate_batch(&batch);
        let solves = calls.load(Ordering::Relaxed);
        assert_eq!(solves, 8);
        let second = cached.evaluate_batch(&batch);
        assert_eq!(first, second);
        assert_eq!(calls.load(Ordering::Relaxed), solves, "no new solves");
        assert_eq!(cached.hits(), 8);
        assert_eq!(cached.lookups(), 16);
    }

    #[test]
    fn in_batch_duplicates_are_solved_once_and_fanned_out() {
        let calls = AtomicUsize::new(0);
        let cached = CachedProblem::new(counted_problem(&calls), 1e-6);
        let point = vec![0.25, 0.75];
        let batch = vec![point.clone(), point.clone(), point.clone(), point];
        let results = cached.evaluate_batch(&batch);
        assert_eq!(calls.load(Ordering::Relaxed), 1, "one solve for four slots");
        assert_eq!(cached.hits(), 3);
        assert!(results.iter().all(|r| r == &results[0]));
    }

    #[test]
    fn near_identical_points_in_one_bucket_are_never_served_stale() {
        // Two points inside the same (coarse) quantization bucket must each
        // get their own exact objectives — a collision is a miss, not an
        // approximation.
        let calls = AtomicUsize::new(0);
        let cached = CachedProblem::new(counted_problem(&calls), 0.1);
        let a = vec![0.500, 0.500];
        let b = vec![0.501, 0.500];
        let ra = cached.evaluate(&a).unwrap();
        let rb = cached.evaluate(&b).unwrap();
        assert_ne!(ra, rb, "each point gets its exact value");
        assert_eq!(cached.hits(), 0);
        assert_eq!(calls.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn the_entry_cap_stops_insertions_but_not_correctness() {
        let calls = AtomicUsize::new(0);
        let cached = CachedProblem::new(counted_problem(&calls), 1e-6).with_max_entries(2);
        let batch: Vec<Vec<f64>> = (0..6).map(|i| vec![(i as f64) / 10.0, 0.1]).collect();
        let plain = counted_problem(&calls);
        assert_eq!(cached.evaluate_batch(&batch), plain.evaluate_batch(&batch));
        assert!(cached.len() <= 2);
    }
}
