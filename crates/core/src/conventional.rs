//! The conventional simulation-based baseline.
//!
//! The paper's headline claim is a large reduction in simulation time and
//! effort compared with "conventional simulation based approaches" — flows
//! that keep the transistor-level netlist in the loop and evaluate yield by
//! Monte Carlo for every candidate (e.g. HOLMES, paper ref. \[5\], which needed
//! 7 hours against the proposed 4 for the same OTA). This module implements
//! that baseline so the comparison benchmarks can measure both sides:
//!
//! * per-candidate cost of a transistor-level Monte Carlo yield estimate
//!   versus a single behavioural-model lookup, and
//! * per-evaluation cost of the transistor-level filter versus the
//!   behavioural (macromodel) filter.

use crate::config::FlowConfig;
use crate::ota_problem::measure_testbench;
use crate::verify::YieldReport;
use ayb_behavioral::{CombinedOtaModel, FilterSpec, OtaSpec};
use ayb_circuit::filter::FilterParameters;
use ayb_circuit::ota::{build_open_loop_testbench, OtaParameters};
use ayb_process::{montecarlo, yield_estimate, MonteCarloConfig};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Timing comparison between the conventional and model-based approaches.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ApproachComparison {
    /// Wall-clock time of the conventional (transistor Monte Carlo) evaluation.
    pub conventional: Duration,
    /// Wall-clock time of the model-based evaluation.
    pub model_based: Duration,
    /// Yield estimated by the conventional approach (0–1).
    pub conventional_yield: f64,
    /// Yield predicted by the behavioural model (0–1).
    pub model_yield: f64,
}

impl ApproachComparison {
    /// Speed-up factor of the model-based approach.
    pub fn speedup(&self) -> f64 {
        let model = self.model_based.as_secs_f64().max(1e-9);
        self.conventional.as_secs_f64() / model
    }
}

/// Conventional approach: estimate the yield of one OTA design by
/// transistor-level Monte Carlo (the expensive inner loop of a
/// simulation-in-the-loop flow).
///
/// Returns `None` if the nominal circuit cannot be built.
pub fn conventional_ota_yield(
    params: &OtaParameters,
    spec: &OtaSpec,
    config: &FlowConfig,
    samples: usize,
    seed: u64,
) -> Option<YieldReport> {
    let circuit = build_open_loop_testbench(params, &config.testbench).ok()?;
    let sweep = config.sweep.clone();
    let mc = MonteCarloConfig::new(samples, seed);
    let run = montecarlo::run(&circuit, &config.variation, &mc, |sample| {
        measure_testbench(sample, &sweep).map(|p| (p.gain_db, p.phase_margin_deg))
    });
    let yield_fraction = yield_estimate(&run.values, |&(g, pm)| spec.is_met(g, pm))?;
    Some(YieldReport {
        yield_fraction,
        samples: run.values.len(),
        failed_samples: run.failed_samples,
    })
}

/// Model-based approach: the yield prediction is a pair of table lookups — if
/// the retargeted design exists in the model, the specification is met at the
/// process extremes and the predicted parametric yield is 100 %; if the
/// specification lies outside what the front can deliver, the prediction is
/// 0 % (the designer must relax the spec or change topology).
pub fn model_based_ota_yield(model: &CombinedOtaModel, spec: &OtaSpec) -> f64 {
    match model.design_for_spec(spec) {
        Ok(_) => 1.0,
        Err(_) => 0.0,
    }
}

/// Runs both approaches on the same specification and measures their cost.
///
/// `samples` controls the conventional Monte Carlo size (the paper uses 500
/// for verification runs). Returns `None` if the conventional path cannot
/// simulate the nominal design.
pub fn compare_approaches(
    model: &CombinedOtaModel,
    nominal: &OtaParameters,
    spec: &OtaSpec,
    config: &FlowConfig,
    samples: usize,
    seed: u64,
) -> Option<ApproachComparison> {
    let t0 = Instant::now();
    let conventional = conventional_ota_yield(nominal, spec, config, samples, seed)?;
    let conventional_time = t0.elapsed();

    let t1 = Instant::now();
    let model_yield = model_based_ota_yield(model, spec);
    let model_time = t1.elapsed();

    Some(ApproachComparison {
        conventional: conventional_time,
        model_based: model_time,
        conventional_yield: conventional.yield_fraction,
        model_yield,
    })
}

/// Per-evaluation cost probe used by the filter benchmarks: one behavioural
/// filter evaluation versus one transistor-level filter evaluation of the same
/// sizing. Returns `(behavioural, transistor)` durations, or `None` when
/// either simulation fails.
pub fn filter_evaluation_cost(
    capacitors: &FilterParameters,
    ota_params: &OtaParameters,
    model_gain_db: f64,
    model_pm_deg: f64,
    model_unity_hz: f64,
    config: &FlowConfig,
) -> Option<(Duration, Duration)> {
    use ayb_behavioral::filter::{filter_sweep, simulate_macromodel_filter};
    use ayb_behavioral::OtaBehavior;

    let behavior = OtaBehavior::new(model_gain_db, model_pm_deg, model_unity_hz);
    let macro_spec = behavior.to_macro_spec(config.testbench.cload);

    let t0 = Instant::now();
    simulate_macromodel_filter(capacitors, &macro_spec, &filter_sweep()).ok()?;
    let behavioural = t0.elapsed();

    let t1 = Instant::now();
    crate::filter_design::simulate_transistor_filter(
        capacitors,
        ota_params,
        &FilterSpec::anti_aliasing_1mhz(),
        config,
        &filter_sweep(),
    )?;
    let transistor = t1.elapsed();
    Some((behavioural, transistor))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_is_ratio_of_durations() {
        let cmp = ApproachComparison {
            conventional: Duration::from_millis(400),
            model_based: Duration::from_millis(2),
            conventional_yield: 1.0,
            model_yield: 1.0,
        };
        assert!((cmp.speedup() - 200.0).abs() < 1.0);
    }

    #[test]
    fn conventional_yield_runs_on_tiny_sample_count() {
        let mut config = FlowConfig::reduced();
        config.sweep = ayb_sim::FrequencySweep::logarithmic(10.0, 1e9, 4);
        let report = conventional_ota_yield(
            &OtaParameters::nominal(),
            &OtaSpec::new(30.0, 40.0),
            &config,
            6,
            1,
        )
        .expect("yield runs");
        assert!(report.samples > 0);
        assert!(report.yield_fraction >= 0.5);
    }
}
