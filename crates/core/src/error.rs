//! The unified workspace error type.
//!
//! Every stage of the flow can fail in its own layer — optimisation
//! ([`FlowError`]), behavioural-model construction
//! ([`ayb_behavioral::ModelError`]), circuit simulation
//! ([`ayb_sim::SimError`]), table lookups
//! ([`ayb_table::TableError`]) or circuit construction
//! ([`ayb_circuit::CircuitError`]). [`AybError`] wraps them all
//! with `From` conversions so that `?` works across layer boundaries, and
//! [`std::error::Error::source`] preserves the underlying cause.

use crate::flow::FlowError;
use ayb_behavioral::ModelError;
use ayb_circuit::CircuitError;
use ayb_moo::CheckpointError;
use ayb_sim::SimError;
use ayb_store::StoreError;
use ayb_table::TableError;
use std::fmt;

/// Unified error for the end-to-end flow: wraps every layer's error type.
#[derive(Debug, Clone, PartialEq)]
pub enum AybError {
    /// Flow-level failure (no candidates, insufficient Pareto data, ...).
    Flow(FlowError),
    /// Behavioural-model construction or model-use failure.
    Model(ModelError),
    /// Circuit-simulation failure.
    Sim(SimError),
    /// Table-model construction or lookup failure.
    Table(TableError),
    /// Circuit-construction failure.
    Circuit(CircuitError),
    /// Run-store persistence failure.
    Store(StoreError),
    /// Checkpoint resume/halt outcome. Note that
    /// [`ayb_moo::CheckpointError::Halted`] is a
    /// deliberate pause, not a failure: the run's state is on disk and
    /// [`FlowBuilder::resume`](crate::FlowBuilder::resume) continues it.
    Checkpoint(CheckpointError),
}

impl fmt::Display for AybError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AybError::Flow(e) => write!(f, "flow error: {e}"),
            AybError::Model(e) => write!(f, "model error: {e}"),
            AybError::Sim(e) => write!(f, "simulation error: {e}"),
            AybError::Table(e) => write!(f, "table error: {e}"),
            AybError::Circuit(e) => write!(f, "circuit error: {e}"),
            AybError::Store(e) => write!(f, "store error: {e}"),
            AybError::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
        }
    }
}

impl std::error::Error for AybError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AybError::Flow(e) => Some(e),
            AybError::Model(e) => Some(e),
            AybError::Sim(e) => Some(e),
            AybError::Table(e) => Some(e),
            AybError::Circuit(e) => Some(e),
            AybError::Store(e) => Some(e),
            AybError::Checkpoint(e) => Some(e),
        }
    }
}

impl From<FlowError> for AybError {
    fn from(e: FlowError) -> Self {
        AybError::Flow(e)
    }
}

impl From<ModelError> for AybError {
    fn from(e: ModelError) -> Self {
        AybError::Model(e)
    }
}

impl From<SimError> for AybError {
    fn from(e: SimError) -> Self {
        AybError::Sim(e)
    }
}

impl From<TableError> for AybError {
    fn from(e: TableError) -> Self {
        AybError::Table(e)
    }
}

impl From<CircuitError> for AybError {
    fn from(e: CircuitError) -> Self {
        AybError::Circuit(e)
    }
}

impl From<StoreError> for AybError {
    fn from(e: StoreError) -> Self {
        AybError::Store(e)
    }
}

impl From<CheckpointError> for AybError {
    fn from(e: CheckpointError) -> Self {
        AybError::Checkpoint(e)
    }
}

impl AybError {
    /// Projects the unified error back onto [`FlowError`] for the
    /// `generate_model` compatibility wrapper.
    pub fn into_flow_error(self) -> FlowError {
        match self {
            AybError::Flow(e) => e,
            AybError::Model(e) => FlowError::Model(e),
            AybError::Sim(e) => FlowError::Circuit(e.to_string()),
            AybError::Table(e) => FlowError::Model(ModelError::Table(e)),
            AybError::Circuit(e) => FlowError::Circuit(e.to_string()),
            AybError::Store(e) => FlowError::Persistence(e.to_string()),
            AybError::Checkpoint(e) => FlowError::Persistence(e.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn question_mark_converts_every_layer() {
        fn flows() -> Result<(), AybError> {
            Err(FlowError::NoFeasibleCandidates)?
        }
        fn models() -> Result<(), AybError> {
            Err(ModelError::NotEnoughData(1))?
        }
        fn sims() -> Result<(), AybError> {
            Err(SimError::SingularMatrix {
                pivot: 3,
                unknown: None,
            })?
        }
        fn tables() -> Result<(), AybError> {
            Err(TableError::NotEnoughPoints { got: 1, needed: 4 })?
        }
        fn circuits() -> Result<(), AybError> {
            Err(CircuitError::UnknownModel("nmos9".into()))?
        }
        assert!(matches!(flows(), Err(AybError::Flow(_))));
        assert!(matches!(models(), Err(AybError::Model(_))));
        assert!(matches!(sims(), Err(AybError::Sim(_))));
        assert!(matches!(tables(), Err(AybError::Table(_))));
        assert!(matches!(circuits(), Err(AybError::Circuit(_))));
    }

    #[test]
    fn display_and_source_preserve_the_cause() {
        let e = AybError::from(SimError::SingularMatrix {
            pivot: 3,
            unknown: None,
        });
        assert!(e.to_string().contains("singular"));
        assert!(e.source().is_some());
        let e = AybError::from(FlowError::InsufficientParetoData(2));
        assert!(e.to_string().contains('2'));
    }

    #[test]
    fn flow_error_projection_is_lossless_where_possible() {
        let flow = AybError::Flow(FlowError::NoFeasibleCandidates);
        assert_eq!(flow.into_flow_error(), FlowError::NoFeasibleCandidates);
        let model = AybError::Model(ModelError::NotEnoughData(1));
        assert!(matches!(model.into_flow_error(), FlowError::Model(_)));
        let table = AybError::Table(TableError::Dimension("x".into()));
        assert!(matches!(
            table.into_flow_error(),
            FlowError::Model(ModelError::Table(_))
        ));
        let sim = AybError::Sim(SimError::Circuit("bad".into()));
        assert!(matches!(sim.into_flow_error(), FlowError::Circuit(_)));
    }

    #[test]
    fn store_and_checkpoint_errors_wrap_and_project() {
        let store = AybError::from(StoreError::RunNotFound("run-0001".into()));
        assert!(store.to_string().contains("run-0001"));
        assert!(store.source().is_some());
        assert!(matches!(
            store.into_flow_error(),
            FlowError::Persistence(message) if message.contains("run-0001")
        ));

        let halted = AybError::from(CheckpointError::Halted { generation: 5 });
        assert!(halted.to_string().contains('5'));
        assert!(matches!(
            halted.into_flow_error(),
            FlowError::Persistence(_)
        ));
    }
}
