//! # ayb-core — the combined yield / performance modelling flow
//!
//! End-to-end implementation of *"A New Approach for Combining Yield and
//! Performance in Behavioural Models for Analogue Integrated Circuits"*
//! (Ali, Wilcock, Wilson, Brown — DATE 2008) on top of the AYB substrate
//! crates:
//!
//! * [`OtaSizingProblem`] — the paper's benchmark problem: size the
//!   symmetrical OTA for open-loop gain and phase margin (§3.1, §4.1),
//! * [`generate_model`] — the five-step flow of Figure 3: WBGA optimisation,
//!   Pareto extraction, per-point Monte Carlo, table-model generation,
//! * [`verify`] — transistor-level accuracy (Table 4) and yield verification,
//! * [`filter_design`] — the hierarchical 2nd-order anti-aliasing filter
//!   application of §5,
//! * [`conventional`] — the simulation-in-the-loop baseline used for the
//!   speed/efficiency comparison,
//! * [`report`] — text renderers for every table and figure of the paper.
//!
//! # Examples
//!
//! Running the whole flow at reduced scale (seconds, not hours):
//!
//! ```no_run
//! use ayb_core::{generate_model, FlowConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = FlowConfig::reduced();
//! let result = generate_model(&config)?;
//! println!("{} Pareto points", result.pareto.len());
//! println!("{}", ayb_core::report::render_table2(&result.pareto_data));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod conventional;
pub mod filter_design;
pub mod flow;
pub mod ota_problem;
pub mod report;
pub mod verify;

pub use config::FlowConfig;
pub use conventional::{compare_approaches, conventional_ota_yield, ApproachComparison};
pub use filter_design::{design_filter, verify_filter_yield, FilterDesignResult};
pub use flow::{generate_model, FlowError, FlowResult, FlowSummary, FlowTimings};
pub use ota_problem::{evaluate_ota, measure_testbench, OtaPerformance, OtaSizingProblem};
pub use verify::{verify_accuracy, verify_ota_yield, AccuracyReport, YieldReport};
