//! # ayb-core — the combined yield / performance modelling flow
//!
//! End-to-end implementation of *"A New Approach for Combining Yield and
//! Performance in Behavioural Models for Analogue Integrated Circuits"*
//! (Ali, Wilcock, Wilson, Brown — DATE 2008) on top of the AYB substrate
//! crates.
//!
//! The public API is engine-style: the *problem*
//! ([`OtaSizingProblem`], an `ayb_moo::SizingProblem`), the *optimiser*
//! (any `ayb_moo::Optimizer`, selected with `ayb_moo::OptimizerConfig`) and
//! the *flow* ([`FlowBuilder`]) are decoupled layers:
//!
//! * [`FlowBuilder`] — staged execution of the five-step flow of Figure 3
//!   (`.optimize()?.analyze_variation()?.build_model()?`), with pluggable
//!   optimisers, per-stage [`FlowObserver`] progress callbacks and explicit
//!   RNG seeding ([`FlowBuilder::with_seed`]) for end-to-end determinism;
//!   attaching an [`ayb_store::Store`] ([`FlowBuilder::with_store`]) makes
//!   runs durable — manifest, per-generation checkpoints and result on disk
//!   — and [`FlowBuilder::resume`] continues an interrupted run from its
//!   latest checkpoint with a bit-identical [`FlowResult`]; durable runs can
//!   additionally shard their batch evaluation across any number of worker
//!   processes and machines sharing the store
//!   ([`FlowBuilder::sharded`], `ayb serve --shards-only`) — still
//!   bit-identical,
//! * [`generate_model`] — thin compatibility wrapper running all stages with
//!   the paper's WBGA,
//! * [`AybError`] — the unified error that wraps `FlowError`, `ModelError`,
//!   `SimError`, `TableError` and `CircuitError` with `From` impls,
//! * [`OtaSizingProblem`] — the paper's benchmark problem: size the
//!   symmetrical OTA for open-loop gain and phase margin (§3.1, §4.1), with
//!   multi-threaded batch evaluation for the optimiser populations,
//! * [`verify`] — transistor-level accuracy (Table 4) and yield verification,
//! * [`filter_design`] — the hierarchical 2nd-order anti-aliasing filter
//!   application of §5,
//! * [`conventional`] — the simulation-in-the-loop baseline used for the
//!   speed/efficiency comparison,
//! * [`report`] — text renderers for every table and figure of the paper.
//!
//! # Examples
//!
//! Running the whole flow at reduced scale (seconds, not hours):
//!
//! ```no_run
//! use ayb_core::{FlowBuilder, FlowConfig};
//!
//! # fn main() -> Result<(), ayb_core::AybError> {
//! let config = FlowConfig::reduced();
//! let result = FlowBuilder::new(config.clone())
//!     .optimize()?
//!     .analyze_variation()?
//!     .build_model()?;
//! println!("{} Pareto points", result.pareto.len());
//! println!("{}", ayb_core::report::render_table2(&result.pareto_data));
//! # Ok(())
//! # }
//! ```
//!
//! Swapping the optimiser while keeping every other stage identical:
//!
//! ```no_run
//! use ayb_core::{FlowBuilder, FlowConfig};
//! use ayb_moo::{GaConfig, OptimizerConfig};
//!
//! # fn main() -> Result<(), ayb_core::AybError> {
//! let result = FlowBuilder::new(FlowConfig::reduced())
//!     .with_optimizer(OptimizerConfig::Nsga2(GaConfig::small_test()))
//!     .run()?;
//! assert_eq!(result.optimization.optimizer, "nsga2");
//! # Ok(())
//! # }
//! ```
//!
//! Builder configuration is plain data — seeding, optimiser selection and
//! sharding knobs are inspectable before anything expensive runs:
//!
//! ```
//! use ayb_core::{FlowBuilder, FlowConfig};
//! use ayb_moo::OptimizerConfig;
//!
//! let builder = FlowBuilder::new(FlowConfig::reduced())
//!     .with_optimizer(OptimizerConfig::RandomSearch { budget: 64, seed: 1 })
//!     .with_seed(2008)
//!     .sharded(true)
//!     .shard_size(8);
//! assert_eq!(builder.optimizer().seed(), 2008);
//! assert_eq!(builder.config().monte_carlo.seed, 2008);
//! assert!(builder.config().sharded);
//! assert_eq!(builder.config().shard_size, 8);
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod conventional;
pub mod error;
pub mod filter_design;
pub mod flow;
pub mod ota_problem;
pub mod report;
pub mod verify;

pub use config::FlowConfig;
pub use conventional::{compare_approaches, conventional_ota_yield, ApproachComparison};
pub use error::AybError;
pub use filter_design::{design_filter, verify_filter_yield, FilterDesignResult};
pub use flow::{
    analyse_pareto_point, analyse_variation_point, generate_model, point_mc_seed, AnalyzedFlow,
    FlowBuilder, FlowError, FlowObserver, FlowResult, FlowStage, FlowSummary, FlowTimings,
    OptimizedFlow, StderrObserver, TransportIncident, TransportReport, VariationBoundary,
    VariationHaltHook, VariationPointRecord,
};
pub use ota_problem::{
    evaluate_ota, evaluate_ota_with, measure_testbench, measure_testbench_with, OtaPerformance,
    OtaSizingProblem,
};
pub use verify::{verify_accuracy, verify_ota_yield, AccuracyReport, YieldReport};
