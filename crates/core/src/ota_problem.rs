//! The OTA sizing problem (paper §3.1 / §4.1–4.2).
//!
//! Maps the eight normalised designable parameters of Table 1 onto the
//! symmetrical OTA test bench, runs a DC operating point plus AC sweep, and
//! returns the two objective functions of the paper: open-loop gain and phase
//! margin, both maximised.

use ayb_circuit::ota::{build_open_loop_testbench, OtaParameters, OtaTestbenchConfig};
use ayb_circuit::{Circuit, DesignPoint, ParameterSet};
use ayb_moo::{evaluate_batch_parallel, Evaluation, ObjectiveSpec, SizingProblem};
use ayb_sim::{
    ac_analysis_with, dc_operating_point_with, measure, DcOptions, FrequencySweep, MnaLayout,
    SolverKind,
};
use serde::{Deserialize, Serialize};

/// Measured figures of merit of one OTA candidate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OtaPerformance {
    /// Open-loop gain in dB.
    pub gain_db: f64,
    /// Phase margin in degrees.
    pub phase_margin_deg: f64,
    /// Unity-gain frequency in hertz.
    pub unity_gain_hz: f64,
    /// −3 dB bandwidth in hertz.
    pub bandwidth_hz: f64,
}

/// Simulates one already-built OTA test-bench circuit and extracts the
/// performance figures.
///
/// Returns `None` when the bias point does not converge or the gain never
/// crosses 0 dB inside the sweep (no phase margin defined) — the optimisers
/// treat such candidates as infeasible.
pub fn measure_testbench(circuit: &Circuit, sweep: &FrequencySweep) -> Option<OtaPerformance> {
    measure_testbench_with(circuit, sweep, SolverKind::Dense)
}

/// As [`measure_testbench`], with an explicit solver backend.
///
/// The MNA layout is derived once and shared between the DC operating point
/// and the AC sweep.
pub fn measure_testbench_with(
    circuit: &Circuit,
    sweep: &FrequencySweep,
    solver: SolverKind,
) -> Option<OtaPerformance> {
    let layout = MnaLayout::new(circuit);
    let op = dc_operating_point_with(circuit, &layout, &DcOptions::new(), solver).ok()?;
    let ac = ac_analysis_with(circuit, &layout, &op, sweep, solver).ok()?;
    let response = ac.response_by_name(circuit, ayb_circuit::ota::OPEN_LOOP_OUTPUT)?;
    let m = measure::measure(ac.frequencies(), &response).ok()?;
    Some(OtaPerformance {
        gain_db: m.dc_gain_db,
        phase_margin_deg: m.phase_margin_deg?,
        unity_gain_hz: m.unity_gain_hz?,
        bandwidth_hz: m.bandwidth_hz.unwrap_or(f64::NAN),
    })
}

/// Builds the test bench for a set of sized parameters and measures it.
pub fn evaluate_ota(
    params: &OtaParameters,
    testbench: &OtaTestbenchConfig,
    sweep: &FrequencySweep,
) -> Option<OtaPerformance> {
    evaluate_ota_with(params, testbench, sweep, SolverKind::Dense)
}

/// As [`evaluate_ota`], with an explicit solver backend.
pub fn evaluate_ota_with(
    params: &OtaParameters,
    testbench: &OtaTestbenchConfig,
    sweep: &FrequencySweep,
    solver: SolverKind,
) -> Option<OtaPerformance> {
    let circuit = build_open_loop_testbench(params, testbench).ok()?;
    measure_testbench_with(&circuit, sweep, solver)
}

/// The paper's two-objective OTA sizing problem over the Table 1 parameter space.
pub struct OtaSizingProblem {
    parameter_set: ParameterSet,
    objectives: Vec<ObjectiveSpec>,
    testbench: OtaTestbenchConfig,
    sweep: FrequencySweep,
    threads: usize,
    solver: SolverKind,
}

impl OtaSizingProblem {
    /// Creates the problem with the given test-bench conditions and AC sweep.
    pub fn new(testbench: OtaTestbenchConfig, sweep: FrequencySweep) -> Self {
        OtaSizingProblem {
            parameter_set: OtaParameters::parameter_set(),
            objectives: vec![
                ObjectiveSpec::maximize("gain_db"),
                ObjectiveSpec::maximize("phase_margin_deg"),
            ],
            testbench,
            sweep,
            threads: 1,
            solver: SolverKind::Dense,
        }
    }

    /// Sets the linear-solver backend used for every candidate simulation.
    #[must_use]
    pub fn with_solver(mut self, solver: SolverKind) -> Self {
        self.solver = solver;
        self
    }

    /// The linear-solver backend candidate simulations run on.
    pub fn solver(&self) -> SolverKind {
        self.solver
    }

    /// Sets the number of worker threads batch evaluations may use.
    ///
    /// The optimisers evaluate whole populations through
    /// [`SizingProblem::evaluate_batch`], so this is what spreads GA circuit
    /// simulations — not just Monte Carlo samples — across cores.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The number of worker threads batch evaluations may use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The designable parameter space (Table 1).
    pub fn parameter_set(&self) -> &ParameterSet {
        &self.parameter_set
    }

    /// Converts a normalised gene vector into named physical parameters.
    pub fn design_point(&self, genes: &[f64]) -> Option<DesignPoint> {
        self.parameter_set.denormalize(genes).ok()
    }

    /// Converts a normalised gene vector into sized OTA parameters.
    pub fn ota_parameters(&self, genes: &[f64]) -> Option<OtaParameters> {
        self.design_point(genes)
            .map(|point| OtaParameters::from_design_point(&point))
    }

    /// Evaluates the full performance record (not just the raw objectives).
    pub fn performance(&self, genes: &[f64]) -> Option<OtaPerformance> {
        let params = self.ota_parameters(genes)?;
        evaluate_ota_with(&params, &self.testbench, &self.sweep, self.solver)
    }
}

impl SizingProblem for OtaSizingProblem {
    fn parameter_count(&self) -> usize {
        self.parameter_set.len()
    }

    fn objectives(&self) -> &[ObjectiveSpec] {
        &self.objectives
    }

    fn evaluate(&self, parameters: &[f64]) -> Option<Vec<f64>> {
        let perf = self.performance(parameters)?;
        Some(vec![perf.gain_db, perf.phase_margin_deg])
    }

    fn evaluate_batch(&self, batch: &[Vec<f64>]) -> Vec<Option<Evaluation>> {
        evaluate_batch_parallel(self, batch, self.threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn problem() -> OtaSizingProblem {
        OtaSizingProblem::new(
            OtaTestbenchConfig::new(),
            FrequencySweep::logarithmic(10.0, 1e9, 5),
        )
    }

    #[test]
    fn problem_has_eight_parameters_and_two_maximised_objectives() {
        let p = problem();
        assert_eq!(p.parameter_count(), 8);
        assert_eq!(p.objective_count(), 2);
        assert!(p
            .objectives()
            .iter()
            .all(|o| o.sense == ayb_moo::Sense::Maximize));
    }

    #[test]
    fn midpoint_genes_evaluate_to_paper_range_performance() {
        let p = problem();
        let genes = vec![0.5; 8];
        let objectives = p.evaluate(&genes).expect("midpoint candidate simulates");
        let (gain, pm) = (objectives[0], objectives[1]);
        assert!((30.0..80.0).contains(&gain), "gain = {gain}");
        assert!((20.0..120.0).contains(&pm), "pm = {pm}");
        let perf = p.performance(&genes).unwrap();
        assert!(perf.unity_gain_hz > 1e5);
    }

    #[test]
    fn gene_mapping_respects_table1_bounds() {
        let p = problem();
        let params = p.ota_parameters(&[0.0; 8]).unwrap();
        assert!((params.w1 - 10e-6).abs() < 1e-12);
        assert!((params.l1 - 0.35e-6).abs() < 1e-15);
        let params = p.ota_parameters(&[1.0; 8]).unwrap();
        assert!((params.w1 - 60e-6).abs() < 1e-12);
        assert!((params.l1 - 4e-6).abs() < 1e-15);
    }

    #[test]
    fn parallel_batch_evaluation_matches_sequential() {
        let sequential = problem();
        let parallel = problem().with_threads(4);
        assert_eq!(parallel.threads(), 4);
        let batch: Vec<Vec<f64>> = (0..6)
            .map(|i| vec![0.2 + 0.1 * (i % 4) as f64; 8])
            .collect();
        let a = sequential.evaluate_batch(&batch);
        let b = parallel.evaluate_batch(&batch);
        assert_eq!(a, b, "thread count must not change results");
        assert_eq!(a.len(), batch.len());
        assert!(a.iter().any(|r| r.is_some()));
    }

    #[test]
    fn sparse_solver_matches_dense_on_the_nominal_ota() {
        let params = OtaParameters::nominal();
        let sweep = FrequencySweep::logarithmic(10.0, 1e9, 5);
        let dense = evaluate_ota_with(
            &params,
            &OtaTestbenchConfig::new(),
            &sweep,
            SolverKind::Dense,
        )
        .unwrap();
        let sparse = evaluate_ota_with(
            &params,
            &OtaTestbenchConfig::new(),
            &sweep,
            SolverKind::Sparse,
        )
        .unwrap();
        assert!((dense.gain_db - sparse.gain_db).abs() < 1e-9);
        assert!((dense.phase_margin_deg - sparse.phase_margin_deg).abs() < 1e-9);
        assert!((dense.unity_gain_hz - sparse.unity_gain_hz).abs() / dense.unity_gain_hz < 1e-9);
    }

    #[test]
    fn evaluate_ota_and_measure_testbench_agree() {
        let params = OtaParameters::nominal();
        let sweep = FrequencySweep::logarithmic(10.0, 1e9, 5);
        let direct = evaluate_ota(&params, &OtaTestbenchConfig::new(), &sweep).unwrap();
        let circuit = build_open_loop_testbench(&params, &OtaTestbenchConfig::new()).unwrap();
        let via_circuit = measure_testbench(&circuit, &sweep).unwrap();
        assert!((direct.gain_db - via_circuit.gain_db).abs() < 1e-9);
        assert!((direct.phase_margin_deg - via_circuit.phase_margin_deg).abs() < 1e-9);
    }
}
