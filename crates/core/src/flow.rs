//! The end-to-end model-generation flow (paper §3, Figure 3).
//!
//! The five steps of the proposed algorithm are executed in order:
//!
//! 1. netlist / objective generation ([`OtaSizingProblem`]),
//! 2. multi-objective optimisation (§3.2) behind the
//!    [`Optimizer`](ayb_moo::Optimizer) trait — the paper's WBGA by default,
//!    NSGA-II or random search via [`OptimizerConfig`],
//! 3. Pareto-front extraction (§3.3),
//! 4. Monte Carlo variation analysis of every Pareto point (§3.4),
//! 5. table-model / combined-model generation (§3.5).
//!
//! The public entry point is [`FlowBuilder`], which executes the steps as
//! explicit stages with progress callbacks:
//!
//! ```no_run
//! use ayb_core::{FlowBuilder, FlowConfig};
//!
//! # fn main() -> Result<(), ayb_core::AybError> {
//! let result = FlowBuilder::new(FlowConfig::reduced())
//!     .with_seed(2008)
//!     .optimize()?          // steps 1-3: problem + optimiser + Pareto front
//!     .analyze_variation()? // step 4: per-point Monte Carlo
//!     .build_model()?;      // step 5: combined behavioural model
//! println!("{} Pareto points", result.pareto.len());
//! # Ok(())
//! # }
//! ```
//!
//! [`generate_model`] remains as a thin compatibility wrapper that runs all
//! stages with the default (WBGA) optimiser.
//!
//! Flows become *durable* by attaching a run store
//! ([`FlowBuilder::with_store`]): the configuration is recorded in a
//! manifest, every optimiser generation is checkpointed to disk, the final
//! [`FlowResult`] is persisted, and an interrupted run is continued with
//! [`FlowBuilder::resume`] — producing a result bit-identical to the
//! same-seed uninterrupted run (see `tests/resumable_flow.rs`).

use crate::config::FlowConfig;
use crate::error::AybError;
use crate::ota_problem::{measure_testbench_with, OtaSizingProblem};
use ayb_behavioral::{CombinedOtaModel, ModelError, ParetoPointData};
use ayb_circuit::ota::{build_open_loop_testbench, OtaParameters};
use ayb_moo::{
    drive_epoch, CachedProblem, Checkpoint, CheckpointControl, CheckpointError, EpochWork,
    Evaluation, OptimizationResult, OptimizerConfig, ShardError, ShardTransport, ShardedEvaluator,
    ShardingOptions, SizingProblem, WithEvaluator,
};
use ayb_net::TcpTransport;
use ayb_obs::{kind as event_kind, Event, JsonlSink, Recorder, Severity, SinkGuard};
use ayb_process::{montecarlo, Summary};
use ayb_store::{
    ClaimHeartbeat, ClaimInfo, Manifest, RunHandle, RunStatus, ShardDataPlane, ShardOutcome,
    ShardWork, ShardWorkKind, Store, StoreError, VariationOutcome, VariationPointWork,
};
use serde::{Deserialize, Serialize};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Errors produced by the flow.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowError {
    /// The optimisation produced no feasible candidates at all.
    NoFeasibleCandidates,
    /// Too few Pareto points survived Monte Carlo analysis to build a model.
    InsufficientParetoData(usize),
    /// Building the combined model failed.
    Model(ModelError),
    /// A circuit could not be constructed.
    Circuit(String),
    /// Persisting or resuming a durable run failed.
    Persistence(String),
}

impl std::fmt::Display for FlowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowError::NoFeasibleCandidates => {
                write!(f, "the optimisation produced no feasible candidates")
            }
            FlowError::InsufficientParetoData(n) => write!(
                f,
                "only {n} Pareto points completed Monte Carlo analysis; at least 3 are required"
            ),
            FlowError::Model(e) => write!(f, "model construction failed: {e}"),
            FlowError::Circuit(e) => write!(f, "circuit construction failed: {e}"),
            FlowError::Persistence(e) => write!(f, "run persistence failed: {e}"),
        }
    }
}

impl std::error::Error for FlowError {}

impl From<ModelError> for FlowError {
    fn from(e: ModelError) -> Self {
        FlowError::Model(e)
    }
}

/// Wall-clock timings of the flow stages (Table 5's CPU-time column).
///
/// `Deserialize` is implemented by hand so results persisted before the
/// per-point work accounting existed still load (absent fields default to
/// zero).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct FlowTimings {
    /// Multi-objective optimisation time.
    pub optimization: Duration,
    /// Monte Carlo variation-analysis time — the *submitter's* wall clock
    /// for the stage. For sharded runs most of the per-point work happens in
    /// other processes; compare [`FlowTimings::mc_point_seconds`] for the
    /// actual work done.
    pub monte_carlo: Duration,
    /// Model construction time.
    pub model_build: Duration,
    /// Number of Pareto points that went through Monte Carlo analysis
    /// (including points whose analysis produced no data, and points
    /// restored from variation checkpoints on resume).
    pub mc_points: usize,
    /// Summed per-point analysis wall-clock seconds, counted by whichever
    /// process analysed each point — so serial and sharded runs report
    /// comparable work even though their submitter wall clocks differ.
    pub mc_point_seconds: f64,
    /// Shard requests this flow sent over a TCP data plane (0 for disk
    /// planes and unsharded flows).
    pub shard_requests: u64,
    /// Summed round-trip seconds of those shard requests.
    pub shard_request_seconds: f64,
    /// Late writes from stolen shard claims the data plane fenced off and
    /// discarded during this flow.
    pub shards_fenced: u64,
    /// Shards that degraded from the data plane to local production (each
    /// one also lands in the run's transport report with its cause).
    pub shards_degraded: usize,
    /// Optimiser evaluations answered by the in-process evaluation cache
    /// (0 when [`FlowConfig::eval_cache`](crate::FlowConfig::eval_cache) is
    /// off). Timing-only accounting: served values are bit-identical to
    /// recomputation, so the determinism digest never depends on this.
    pub eval_cache_hits: u64,
    /// Optimiser evaluations that consulted the cache (hits + misses).
    pub eval_cache_lookups: u64,
}

impl FlowTimings {
    /// Total flow time.
    pub fn total(&self) -> Duration {
        self.optimization + self.monte_carlo + self.model_build
    }
}

impl Deserialize for FlowTimings {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        // The per-point accounting postdates the first persisted results;
        // absent fields mean "not recorded", not a malformed file.
        let mc_points = match value.get("mc_points") {
            Some(field) => Deserialize::from_value(field)?,
            None => 0,
        };
        let mc_point_seconds = match value.get("mc_point_seconds") {
            Some(field) => Deserialize::from_value(field)?,
            None => 0.0,
        };
        let shard_requests = match value.get("shard_requests") {
            Some(field) => Deserialize::from_value(field)?,
            None => 0,
        };
        let shard_request_seconds = match value.get("shard_request_seconds") {
            Some(field) => Deserialize::from_value(field)?,
            None => 0.0,
        };
        let shards_fenced = match value.get("shards_fenced") {
            Some(field) => Deserialize::from_value(field)?,
            None => 0,
        };
        let shards_degraded = match value.get("shards_degraded") {
            Some(field) => Deserialize::from_value(field)?,
            None => 0,
        };
        let eval_cache_hits = match value.get("eval_cache_hits") {
            Some(field) => Deserialize::from_value(field)?,
            None => 0,
        };
        let eval_cache_lookups = match value.get("eval_cache_lookups") {
            Some(field) => Deserialize::from_value(field)?,
            None => 0,
        };
        Ok(FlowTimings {
            optimization: Deserialize::from_value(serde::__field(value, "optimization")?)?,
            monte_carlo: Deserialize::from_value(serde::__field(value, "monte_carlo")?)?,
            model_build: Deserialize::from_value(serde::__field(value, "model_build")?)?,
            mc_points,
            mc_point_seconds,
            shard_requests,
            shard_request_seconds,
            shards_fenced,
            shards_degraded,
            eval_cache_hits,
            eval_cache_lookups,
        })
    }
}

/// Summary of the flow, mirroring Table 5 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowSummary {
    /// Number of GA generations.
    pub generations: usize,
    /// Number of evaluation samples (circuit simulations in the GA).
    pub evaluation_samples: usize,
    /// Number of Pareto-optimal points found.
    pub pareto_points: usize,
    /// Number of Pareto points carried through Monte Carlo analysis.
    pub analysed_pareto_points: usize,
    /// Monte Carlo samples per analysed point.
    pub mc_samples_per_point: usize,
    /// Total CPU (wall-clock) time of the flow in seconds.
    pub cpu_time_seconds: f64,
    /// Summed per-point Monte Carlo analysis seconds, counted where the
    /// work actually ran (see [`FlowTimings::mc_point_seconds`]): the
    /// comparable work column for serial vs sharded runs.
    pub mc_work_seconds: f64,
}

impl FlowSummary {
    /// Copy with the wall-clock columns zeroed, for comparing the
    /// deterministic part of two summaries.
    #[must_use]
    pub fn without_timing(mut self) -> Self {
        self.cpu_time_seconds = 0.0;
        self.mc_work_seconds = 0.0;
        self
    }
}

/// Complete output of the model-generation flow.
///
/// The whole result is serde-friendly, so a completed run can be persisted
/// as `result.json` in an [`ayb_store::Store`] and reloaded later.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlowResult {
    /// Every evaluation the optimiser performed (the scatter of Figure 7).
    pub archive: Vec<Evaluation>,
    /// The Pareto front extracted from the archive (the front of Figure 7).
    pub pareto: Vec<Evaluation>,
    /// Pareto points annotated with Monte Carlo variation (Table 2 data).
    pub pareto_data: Vec<ParetoPointData>,
    /// The combined performance + variation behavioural model.
    pub model: CombinedOtaModel,
    /// Stage timings.
    pub timings: FlowTimings,
    /// Raw optimiser result (history, evaluation counters, algorithm name).
    pub optimization: OptimizationResult,
}

impl FlowResult {
    /// Builds the Table 5 style summary for a given configuration.
    pub fn summary(&self, config: &FlowConfig) -> FlowSummary {
        FlowSummary {
            generations: config.ga.generations,
            evaluation_samples: self.optimization.evaluations,
            pareto_points: self.pareto.len(),
            analysed_pareto_points: self.pareto_data.len(),
            mc_samples_per_point: config.monte_carlo.samples,
            cpu_time_seconds: self.timings.total().as_secs_f64(),
            mc_work_seconds: self.timings.mc_point_seconds,
        }
    }

    /// FNV-1a hash over the deterministic artefacts (archive, front,
    /// variation data, model and optimiser counters), excluding wall-clock
    /// timings.
    ///
    /// Two same-seed runs of the same configuration — interrupted-and-resumed
    /// or not — produce equal digests, which is what the `ayb` CLI and the CI
    /// resume-smoke job compare.
    pub fn determinism_digest(&self) -> u64 {
        fn fnv1a(hash: &mut u64, bytes: &[u8]) {
            for &byte in bytes {
                *hash ^= u64::from(byte);
                *hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        let parts = [
            serde_json::to_string(&self.archive),
            serde_json::to_string(&self.pareto),
            serde_json::to_string(&self.pareto_data),
            serde_json::to_string(&self.model),
            serde_json::to_string(&self.optimization),
        ];
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for part in parts {
            let json = part.expect("flow artefacts serialize infallibly");
            fnv1a(&mut hash, json.as_bytes());
            fnv1a(&mut hash, b"\x1f");
        }
        hash
    }
}

/// Selects at most `limit` points spread evenly along a front.
///
/// The first and last front points are always kept (`limit >= 2`); a `limit`
/// of exactly one selects the *middle* (knee-region) point rather than an
/// arbitrary endpoint, so a single analysed point is representative of the
/// trade-off rather than an extreme.
pub fn subsample_front(front: &[Evaluation], limit: usize) -> Vec<Evaluation> {
    if front.len() <= limit || limit == 0 {
        return front.to_vec();
    }
    if limit == 1 {
        return vec![front[front.len() / 2].clone()];
    }
    (0..limit)
        .map(|i| {
            let idx = i * (front.len() - 1) / (limit - 1);
            front[idx].clone()
        })
        .collect()
}

/// Derives the Monte Carlo seed of Pareto point `index` from the flow's base
/// `monte_carlo.seed` (splitmix64-style mixing).
///
/// Every analysed point gets its own reproducible, statistically independent
/// sample stream — and because the seed depends only on the base seed and
/// the point's index in the analysed front, *any* process analysing point
/// `index` (the submitting flow, a resumed flow, or a remote shard worker)
/// draws the identical sequence. This is what makes the sharded variation
/// stage bit-identical to the serial one.
pub fn point_mc_seed(base_seed: u64, index: usize) -> u64 {
    let mut z = base_seed ^ (index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Runs the Monte Carlo variation analysis (§3.4) for one Pareto point
/// identified by its normalised parameter vector, drawing samples from
/// `mc_seed`.
///
/// This is the shared kernel of the serial stage, the sharded submitter and
/// the `ayb serve` shard workers: all three call it with the same
/// `(parameters, config, seed)` triple for a given point, so the result is
/// identical wherever the point is analysed. Returns `None` when the
/// nominal candidate cannot be re-simulated or every Monte Carlo sample
/// fails.
pub fn analyse_variation_point(
    problem: &OtaSizingProblem,
    parameters: &[f64],
    config: &FlowConfig,
    mc_seed: u64,
) -> Option<ParetoPointData> {
    let design_point = problem.design_point(parameters)?;
    let ota_params = OtaParameters::from_design_point(&design_point);
    let nominal = problem.performance(parameters)?;
    let circuit = build_open_loop_testbench(&ota_params, &config.testbench).ok()?;

    let mut monte_carlo = config.monte_carlo;
    monte_carlo.seed = mc_seed;
    let sweep = config.sweep.clone();
    let solver = config.solver;
    let run = montecarlo::run_parallel(
        &circuit,
        &config.variation,
        &monte_carlo,
        config.threads,
        move |sample| {
            measure_testbench_with(sample, &sweep, solver)
                .map(|perf| (perf.gain_db, perf.phase_margin_deg))
        },
    );
    if run.values.len() < 2 {
        return None;
    }
    let gains: Vec<f64> = run.values.iter().map(|v| v.0).collect();
    let pms: Vec<f64> = run.values.iter().map(|v| v.1).collect();
    let gain_summary = Summary::of(&gains)?;
    let pm_summary = Summary::of(&pms)?;
    Some(ParetoPointData {
        gain_db: nominal.gain_db,
        phase_margin_deg: nominal.phase_margin_deg,
        gain_delta_percent: gain_summary.variation_percent(config.sigma_level),
        pm_delta_percent: pm_summary.variation_percent(config.sigma_level),
        unity_gain_hz: nominal.unity_gain_hz,
        parameters: design_point,
    })
}

/// Runs the Monte Carlo variation analysis (§3.4) for one Pareto point with
/// the flow's base Monte Carlo seed.
///
/// Standalone-analysis convenience over [`analyse_variation_point`]; the
/// flow's variation *stage* derives a per-point seed with [`point_mc_seed`]
/// instead, so its points are statistically independent.
pub fn analyse_pareto_point(
    problem: &OtaSizingProblem,
    point: &Evaluation,
    config: &FlowConfig,
) -> Option<ParetoPointData> {
    analyse_variation_point(problem, &point.parameters, config, config.monte_carlo.seed)
}

/// One analysed Pareto point as persisted per-point in
/// `checkpoints/variation_NNNN.json` (durable runs) and carried over the
/// shard plane (sharded runs).
///
/// `data: None` records that the point was analysed but produced no usable
/// variation data — a deterministic outcome that must be remembered, or a
/// resumed flow would re-analyse the point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VariationPointRecord {
    /// The point's variation data, when the analysis succeeded.
    pub data: Option<ParetoPointData>,
    /// Wall-clock seconds spent analysing the point, by whichever process
    /// did it (feeds [`FlowTimings::mc_point_seconds`]).
    pub elapsed_seconds: f64,
}

impl VariationPointRecord {
    /// Converts to the store's opaque wire form (see
    /// [`ayb_store::VariationOutcome`]).
    fn to_outcome(&self) -> VariationOutcome {
        VariationOutcome {
            data: self.data.as_ref().map(Serialize::to_value),
            elapsed_seconds: self.elapsed_seconds,
        }
    }

    /// Parses the store's wire form back; `None` when the payload is
    /// malformed (the shard then simply stays pending and is re-analysed).
    fn from_outcome(outcome: &VariationOutcome) -> Option<VariationPointRecord> {
        let data = match &outcome.data {
            None => None,
            Some(value) => Some(Deserialize::from_value(value).ok()?),
        };
        Some(VariationPointRecord {
            data,
            elapsed_seconds: outcome.elapsed_seconds,
        })
    }
}

// ---------------------------------------------------------------------------
// Observers
// ---------------------------------------------------------------------------

/// The stages a [`FlowBuilder`] run passes through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlowStage {
    /// Steps 1–3: problem construction, optimisation, Pareto extraction.
    Optimize,
    /// Step 4: per-Pareto-point Monte Carlo variation analysis.
    AnalyzeVariation,
    /// Step 5: combined table-model generation.
    BuildModel,
}

impl FlowStage {
    /// Human-readable stage name.
    pub fn name(self) -> &'static str {
        match self {
            FlowStage::Optimize => "optimize",
            FlowStage::AnalyzeVariation => "analyze_variation",
            FlowStage::BuildModel => "build_model",
        }
    }
}

/// Per-stage progress callbacks for a [`FlowBuilder`] run.
///
/// All methods have empty defaults, so an observer only implements what it
/// cares about.
pub trait FlowObserver {
    /// Called when a stage begins.
    fn on_stage_start(&mut self, stage: FlowStage) {
        let _ = stage;
    }

    /// Called when a stage completes successfully.
    fn on_stage_complete(&mut self, stage: FlowStage, elapsed: Duration) {
        let _ = (stage, elapsed);
    }

    /// Called as work progresses inside a stage (`done` out of `total`; the
    /// variation stage reports one tick per analysed Pareto point).
    fn on_progress(&mut self, stage: FlowStage, done: usize, total: usize) {
        let _ = (stage, done, total);
    }

    /// Called after a per-generation optimiser checkpoint has been persisted
    /// to the attached run store (only fires when the builder runs with
    /// [`FlowBuilder::with_store`]). `generation` is the checkpoint's
    /// `next_generation`, `path` the file that was written.
    fn on_checkpoint_written(&mut self, generation: usize, path: &Path) {
        let _ = (generation, path);
    }

    /// Called when the shard data plane failed repeatedly for one shard and
    /// the flow produced it locally instead. `detail` is the transport error
    /// that tipped the shard into degradation — the flow never degrades
    /// silently. Results are unaffected (local production is bit-identical);
    /// this is purely diagnostic, surfaced by `ayb status` via the run's
    /// transport report.
    fn on_transport_degraded(&mut self, stage: FlowStage, shard: usize, detail: &str) {
        let _ = (stage, shard, detail);
    }
}

/// Boundaries of the variation stage (stage 4) at which a flow can halt —
/// the variation-stage counterpart of the optimiser's checkpoint
/// boundaries.
///
/// Used by [`FlowBuilder::halt_variation_when`] to inject deterministic
/// faults: a hook returning `true` stops the flow at that boundary exactly
/// as a crash would (status [`RunStatus::Interrupted`], every completed
/// point checkpointed, resumable to a bit-identical result). The chaos test
/// harness (`tests/chaos.rs`) scripts kill-points over these boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VariationBoundary {
    /// A point's analysis was claimed by this process (serial path: the
    /// point is about to be analysed).
    Claim {
        /// Index of the point in the analysed front.
        point: usize,
    },
    /// A point's record landed (and, for durable runs, its variation
    /// checkpoint was written).
    ResultWrite {
        /// Index of the point in the analysed front.
        point: usize,
    },
    /// The variation epoch is about to be disposed of (sharded path only).
    EpochClose,
}

/// Decides whether the flow halts at a variation boundary (`true` = halt);
/// see [`FlowBuilder::halt_variation_when`].
pub type VariationHaltHook = Arc<dyn Fn(VariationBoundary) -> bool + Send + Sync>;

/// A [`FlowObserver`] that logs stage transitions to stderr through the
/// telemetry plane's shared formatter: one line format everywhere, filtered
/// by the `AYB_LOG` severity threshold (default `info`).
#[derive(Debug, Clone, Copy, Default)]
pub struct StderrObserver;

impl FlowObserver for StderrObserver {
    fn on_stage_start(&mut self, stage: FlowStage) {
        ayb_obs::log_to_stderr(
            &Event::new(Severity::Info, "flow", event_kind::STAGE_START)
                .detail(format!("stage {} started", stage.name())),
        );
    }

    fn on_stage_complete(&mut self, stage: FlowStage, elapsed: Duration) {
        ayb_obs::log_to_stderr(
            &Event::new(Severity::Info, "flow", event_kind::STAGE_COMPLETE)
                .value(elapsed.as_secs_f64())
                .detail(format!(
                    "stage {} completed in {:.2}s",
                    stage.name(),
                    elapsed.as_secs_f64()
                )),
        );
    }

    fn on_transport_degraded(&mut self, stage: FlowStage, shard: usize, detail: &str) {
        ayb_obs::log_to_stderr(
            &Event::new(Severity::Warn, "flow", event_kind::SHARD_DEGRADED)
                .shard(shard as u64)
                .detail(format!(
                    "{}: shard {shard} degraded: {detail}",
                    stage.name()
                )),
        );
    }
}

// ---------------------------------------------------------------------------
// FlowBuilder and its staged execution types
// ---------------------------------------------------------------------------

/// Builder for the model-generation flow with pluggable stages.
///
/// Construction selects the configuration, the optimiser and the observers;
/// [`FlowBuilder::optimize`] then starts staged execution
/// (`.optimize()?.analyze_variation()?.build_model()?`), or
/// [`FlowBuilder::run`] executes all stages in one call.
///
/// Attaching a [`Store`] with [`FlowBuilder::with_store`] makes the run
/// durable: a manifest records the configuration, every optimiser generation
/// is checkpointed to disk, and the final [`FlowResult`] is persisted. A run
/// interrupted at any point — killed, crashed or deliberately halted with
/// [`FlowBuilder::halt_after_checkpoints`] / [`FlowBuilder::halt_when`] —
/// continues from its latest checkpoint via [`FlowBuilder::resume`] and
/// produces a result identical to the uninterrupted run.
///
/// A durable run is *claimed* (`claim.json` lock file) for the whole
/// execution, so two processes — a stray `ayb resume` racing a job-server
/// worker, say — can never execute the same run concurrently: the loser gets
/// [`StoreError::RunClaimed`] before touching any state.
pub struct FlowBuilder {
    config: FlowConfig,
    optimizer: OptimizerConfig,
    observers: Vec<Box<dyn FlowObserver>>,
    seed: Option<u64>,
    store: Option<Store>,
    run_id: Option<String>,
    resume_from: Option<(RunHandle, Option<Checkpoint>)>,
    halt_after_checkpoints: Option<usize>,
    halt_signal: Option<Arc<AtomicBool>>,
    variation_halt: Option<VariationHaltHook>,
    claim_owner: Option<String>,
    recorder: Option<Recorder>,
}

impl FlowBuilder {
    /// Creates a builder running the paper's WBGA with `config.ga` settings.
    pub fn new(config: FlowConfig) -> Self {
        let optimizer = OptimizerConfig::Wbga(config.ga);
        FlowBuilder {
            config,
            optimizer,
            observers: Vec::new(),
            seed: None,
            store: None,
            run_id: None,
            resume_from: None,
            halt_after_checkpoints: None,
            halt_signal: None,
            variation_halt: None,
            claim_owner: None,
            recorder: None,
        }
    }

    /// Recreates a builder for a stored run, resuming from its latest
    /// checkpoint (or from scratch when the run died before its first
    /// checkpoint). Configuration, optimiser selection and seed are restored
    /// from the run's manifest, so the resumed flow produces a [`FlowResult`]
    /// identical to the same-seed uninterrupted run.
    ///
    /// # Errors
    ///
    /// Returns [`AybError::Store`] when the run does not exist or its
    /// manifest/checkpoints cannot be read.
    pub fn resume(store: &Store, run_id: &str) -> Result<FlowBuilder, AybError> {
        let handle = store.run(run_id)?;
        let manifest: Manifest<FlowConfig> = handle.manifest()?;
        let checkpoint = handle.latest_checkpoint()?;
        Ok(FlowBuilder {
            config: manifest.flow,
            optimizer: manifest.optimizer,
            observers: Vec::new(),
            seed: Some(manifest.seed),
            store: Some(store.clone()),
            run_id: None,
            resume_from: Some((handle, checkpoint)),
            halt_after_checkpoints: None,
            halt_signal: None,
            variation_halt: None,
            claim_owner: None,
            recorder: None,
        })
    }

    /// Selects a different optimisation algorithm (step 2 of the flow).
    ///
    /// An explicit seed set via [`FlowBuilder::with_seed`] survives this call
    /// regardless of ordering: the seed is re-applied to the incoming
    /// optimiser configuration.
    #[must_use]
    pub fn with_optimizer(mut self, optimizer: OptimizerConfig) -> Self {
        self.optimizer = match self.seed {
            Some(seed) => optimizer.with_seed(seed),
            None => optimizer,
        };
        self
    }

    /// Registers a progress observer (may be called multiple times).
    #[must_use]
    pub fn with_observer(mut self, observer: impl FlowObserver + 'static) -> Self {
        self.observers.push(Box::new(observer));
        self
    }

    /// Seeds the optimiser *and* the Monte Carlo engine for end-to-end
    /// determinism: two runs with the same configuration and seed produce
    /// identical archives, fronts and variation data.
    ///
    /// Order-independent with respect to [`FlowBuilder::with_optimizer`]:
    /// the seed applies to whichever optimiser ends up selected.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self.config.ga.seed = seed;
        self.config.monte_carlo.seed = seed;
        self.optimizer = self.optimizer.with_seed(seed);
        self
    }

    /// Attaches a run store: the flow writes a manifest, per-generation
    /// checkpoints and the final result under `runs/<run_id>/`.
    #[must_use]
    pub fn with_store(mut self, store: &Store) -> Self {
        self.store = Some(store.clone());
        self
    }

    /// Chooses the run id inside the attached store (default: the store
    /// allocates a sequential `run-NNNN` id).
    #[must_use]
    pub fn with_run_id(mut self, run_id: impl Into<String>) -> Self {
        self.run_id = Some(run_id.into());
        self
    }

    /// Deliberately halts the optimisation after `count` checkpoints have
    /// been written, leaving the run in the store with status
    /// [`RunStatus::Interrupted`]. The flow then returns
    /// [`AybError::Checkpoint`] wrapping
    /// [`ayb_moo::CheckpointError::Halted`].
    ///
    /// This is the deterministic stand-in for a kill/crash — the on-disk
    /// state is indistinguishable apart from the recorded status — used by
    /// the resume integration tests and the `ayb run --halt-after` flag.
    /// Requires an attached store to be meaningful.
    #[must_use]
    pub fn halt_after_checkpoints(mut self, count: usize) -> Self {
        self.halt_after_checkpoints = Some(count.max(1));
        self
    }

    /// Registers an external halt signal: whenever `signal` reads `true` at
    /// a checkpoint boundary — an optimiser generation checkpoint, or a
    /// variation-stage point boundary — the run stops gracefully exactly as
    /// [`FlowBuilder::halt_after_checkpoints`] would — status
    /// [`RunStatus::Interrupted`], every checkpoint on disk, resumable to a
    /// bit-identical result. This is how a job server drains its workers on
    /// shutdown without losing (or perturbing) any run, whichever stage they
    /// are in.
    #[must_use]
    pub fn halt_when(mut self, signal: Arc<AtomicBool>) -> Self {
        self.halt_signal = Some(signal);
        self
    }

    /// Registers a deterministic fault-injection hook over the variation
    /// stage's boundaries (see [`VariationBoundary`]): whenever the hook
    /// returns `true` the flow halts at that exact boundary, leaving on-disk
    /// state indistinguishable from a crash there (apart from the recorded
    /// [`RunStatus::Interrupted`] status) and resumable to a bit-identical
    /// result. This is the variation-stage counterpart of
    /// [`FlowBuilder::halt_after_checkpoints`], used by the chaos test
    /// harness to script crash schedules.
    #[must_use]
    pub fn halt_variation_when(mut self, hook: VariationHaltHook) -> Self {
        self.variation_halt = Some(hook);
        self
    }

    /// Attaches an event recorder: the flow emits structured run events
    /// (stage boundaries, checkpoints, shard claim/fence/degrade traffic)
    /// and metrics through it, and — for durable runs — persists the
    /// events to `runs/<id>/events.jsonl` alongside the result. Telemetry
    /// is strictly observational: enabling it never changes a
    /// [`FlowResult::determinism_digest`]. Without this call a durable run
    /// records through a private recorder of its own; pass one explicitly
    /// to share it (a job server funnelling many runs into one stream, a
    /// test asserting on events).
    #[must_use]
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Labels the execution claim this flow takes on its stored run
    /// (default: `flow-<pid>`). Purely diagnostic — the claim itself is
    /// always taken; the label shows up in `ayb status` and in
    /// [`StoreError::RunClaimed`] errors.
    #[must_use]
    pub fn with_claim_owner(mut self, owner: impl Into<String>) -> Self {
        self.claim_owner = Some(owner.into());
        self
    }

    /// Enables (or disables) sharded batch evaluation
    /// ([`FlowConfig::sharded`]): optimiser populations are split into
    /// shards published under the durable run's directory, where any
    /// `ayb serve` worker sharing the store — including on other machines —
    /// can claim and evaluate them. The submitting flow participates too,
    /// so a sharded run completes even with no workers, and results are
    /// bit-identical to unsharded execution either way. Requires an attached
    /// store to have any effect.
    #[must_use]
    pub fn sharded(mut self, sharded: bool) -> Self {
        self.config.sharded = sharded;
        self
    }

    /// Sets the maximum number of candidates per shard
    /// ([`FlowConfig::shard_size`]; minimum 1).
    #[must_use]
    pub fn shard_size(mut self, shard_size: usize) -> Self {
        self.config.shard_size = shard_size.max(1);
        self
    }

    /// The configuration this builder will run with.
    pub fn config(&self) -> &FlowConfig {
        &self.config
    }

    /// The optimiser selection this builder will run with.
    pub fn optimizer(&self) -> &OptimizerConfig {
        &self.optimizer
    }

    /// Stage 1–3: builds the sizing problem, runs the selected optimiser and
    /// extracts the Pareto front.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::NoFeasibleCandidates`] (wrapped in [`AybError`])
    /// when not a single candidate evaluated successfully.
    pub fn optimize(mut self) -> Result<OptimizedFlow, AybError> {
        let problem = OtaSizingProblem::new(self.config.testbench, self.config.sweep.clone())
            .with_threads(self.config.threads)
            .with_solver(self.config.solver);
        let recorder = self.recorder.take().unwrap_or_default();

        notify_start(&mut self.observers, FlowStage::Optimize);

        // Open (resume) or create the durable run when a store is attached.
        // Either way the run is *claimed* for the whole execution: a second
        // process resuming (or a job-server worker picking up) the same run
        // fails fast with `StoreError::RunClaimed` instead of silently
        // executing it twice. The claim is released at every terminal state.
        let claim_owner = self
            .claim_owner
            .take()
            .unwrap_or_else(|| format!("flow-{}", std::process::id()));
        // The fenced `ClaimInfo` minted by `try_claim` is kept for the whole
        // execution: every durable write below re-checks it, so a recovery
        // pass that presumed this process hung and stole the claim fences
        // this writer off instead of letting two executors fight over one
        // run's files.
        let (run, run_claim, resume_checkpoint) =
            match (self.store.as_ref(), self.resume_from.take()) {
                (_, Some((handle, checkpoint))) => {
                    let minted = handle.try_claim(&claim_owner)?;
                    // Under the claim, re-check for a result: the run may
                    // have been completed by another worker between this
                    // builder's construction and the claim; re-executing it
                    // would be wasted (if bit-identical) work.
                    if handle.has_result() {
                        let _ = handle.break_claim(&minted);
                        return Err(AybError::Store(StoreError::AlreadyCompleted(
                            handle.id().to_string(),
                        )));
                    }
                    if let Err(error) = handle.set_status(RunStatus::Running) {
                        let _ = handle.break_claim(&minted);
                        return Err(error.into());
                    }
                    (Some(handle), Some(minted), checkpoint)
                }
                (Some(store), None) => {
                    let seed = self.optimizer.seed();
                    let handle = match &self.run_id {
                        Some(id) => {
                            store.create_run_with_id(id, seed, &self.optimizer, &self.config)
                        }
                        None => store.create_run(seed, &self.optimizer, &self.config),
                    }?;
                    let minted = handle.try_claim(&claim_owner)?;
                    (Some(handle), Some(minted), None)
                }
                (None, None) => (None, None, None),
            };

        // Heartbeat the run claim for as long as this flow holds it (all
        // stages), so recovery passes — here or on other hosts — can tell
        // this live execution from a dead one.
        let claim_heartbeat = run
            .as_ref()
            .map(|handle| handle.start_claim_heartbeat(CLAIM_HEARTBEAT_INTERVAL));

        // Durable runs persist their event stream next to the result. The
        // sink is scoped: carried through all stages and detached when the
        // flow ends, so a recorder shared across runs (a job server's) never
        // leaks one run's sink into the next. Every (re-)entry marks a new
        // attempt boundary in the file — `ayb trace` splits on it.
        let events_guard = run
            .as_ref()
            .map(|handle| recorder.add_scoped_sink(Box::new(JsonlSink::new(handle.events_path()))));
        recorder.emit(
            flow_event(run.as_ref(), Severity::Info, event_kind::FLOW_START)
                .detail(format!("flow started (owner `{claim_owner}`)")),
        );
        recorder.emit(
            flow_event(run.as_ref(), Severity::Info, event_kind::STAGE_START)
                .detail(FlowStage::Optimize.name()),
        );

        // With sharding enabled (and a durable run to host the data plane),
        // batch evaluation goes through the shard data plane — on disk, or
        // over TCP when the config selects a coordinator. The plane is built
        // once and carried through all stages, so its traffic and fencing
        // counters cover the whole flow.
        let shard_plane = match &run {
            Some(handle) if self.config.sharded => {
                // This flow holds the run's exclusive claim, so any shard
                // epochs still on disk belong to a dead predecessor.
                let _ = handle.sweep_shards();
                Some(match self.config.transport.as_deref() {
                    Some(url) => match TcpTransport::from_url(url) {
                        Ok(transport) => {
                            let context = serde::Serialize::to_value(&self.config);
                            FlowShardPlane::Tcp(
                                transport
                                    .with_run_context(handle.id(), context)
                                    .with_recorder(recorder.clone()),
                            )
                        }
                        Err(reason) => {
                            // A malformed selector degrades to the disk
                            // plane — noisily, so a typo'd URL never passes
                            // for a working coordinator (the CLI validates
                            // up front; this guards configs edited by hand).
                            let detail = format!("{reason}; using the disk data plane");
                            for observer in &mut self.observers {
                                observer.on_transport_degraded(FlowStage::Optimize, 0, &detail);
                            }
                            FlowShardPlane::Disk(
                                handle
                                    .shard_plane(SHARD_CLAIM_STALE_AFTER)
                                    .with_recorder(recorder.clone()),
                            )
                        }
                    },
                    None => FlowShardPlane::Disk(
                        handle
                            .shard_plane(SHARD_CLAIM_STALE_AFTER)
                            .with_recorder(recorder.clone()),
                    ),
                })
            }
            _ => None,
        };

        // Degradations inside the optimiser's batch evaluations are buffered
        // (the evaluator is shared behind `&self` while the checkpoint sink
        // holds the observers) and drained into the observers at every exit
        // from this stage.
        let degraded_events: Arc<Mutex<Vec<(usize, String)>>> = Arc::default();
        // Optional cross-generation evaluation cache under the optimiser:
        // repeated candidates skip the solve. A hit is served only for
        // bit-identical raw parameters, so enabling the cache never changes
        // results or the determinism digest (see `ayb_moo::evalcache`).
        let eval_cache = self
            .config
            .eval_cache
            .map(|step| CachedProblem::new(&problem, step));
        let base: &dyn SizingProblem = match &eval_cache {
            Some(cached) => cached,
            None => &problem,
        };
        // The wrapper borrows `problem` (through the cache, when enabled),
        // so the optimisation runs in its own scope; results are identical
        // sharded or not (see `ayb_moo::sharding`).
        let sharded = shard_plane.as_ref().map(|plane| {
            let sink = Arc::clone(&degraded_events);
            WithEvaluator::new(
                base,
                ShardedEvaluator::new(
                    plane.boxed_transport(),
                    ShardingOptions::with_shard_size(self.config.shard_size),
                )
                .with_degraded_hook(Arc::new(move |shard, error| {
                    let ShardError::Transport(detail) = error;
                    sink.lock()
                        .expect("degradation event lock")
                        .push((shard, detail.clone()));
                })),
            )
        });
        let sizing: &dyn SizingProblem = match &sharded {
            Some(wrapped) => wrapped,
            None => base,
        };

        let t0 = Instant::now();
        let mut transport_incidents: Vec<TransportIncident> = Vec::new();
        let optimizer = self.optimizer.build();
        let optimization = match &run {
            None => optimizer.run(sizing),
            Some(handle) => {
                let mut written = 0usize;
                let mut write_error: Option<StoreError> = None;
                let observers = &mut self.observers;
                let halt_after = self.halt_after_checkpoints;
                let halt_signal = self.halt_signal.clone();
                let minted = run_claim.as_ref();
                let sink_recorder = recorder.clone();
                let mut sink = |checkpoint: &Checkpoint| match guard_claim(handle, minted)
                    .and_then(|()| handle.save_checkpoint(checkpoint))
                {
                    Ok(path) => {
                        written += 1;
                        for observer in observers.iter_mut() {
                            observer.on_checkpoint_written(checkpoint.next_generation, &path);
                        }
                        sink_recorder.emit(
                            Event::new(Severity::Debug, "flow", event_kind::CHECKPOINT)
                                .run(handle.id())
                                .value(checkpoint.next_generation as f64)
                                .detail(format!(
                                    "generation {} checkpoint written",
                                    checkpoint.next_generation
                                )),
                        );
                        let count_reached = matches!(halt_after, Some(limit) if written >= limit);
                        let signalled = halt_signal
                            .as_ref()
                            .is_some_and(|signal| signal.load(Ordering::Relaxed));
                        if count_reached || signalled {
                            CheckpointControl::Halt
                        } else {
                            CheckpointControl::Continue
                        }
                    }
                    Err(error) => {
                        write_error = Some(error);
                        CheckpointControl::Halt
                    }
                };
                let outcome = optimizer.run_checkpointed(sizing, resume_checkpoint, &mut sink);
                drain_degraded(
                    &mut self.observers,
                    &degraded_events,
                    &mut transport_incidents,
                );
                if let Some(error) = write_error {
                    finish_run(&recorder, handle, run_claim.as_ref(), RunStatus::Failed);
                    return Err(AybError::Store(error));
                }
                match outcome {
                    Ok(result) => result,
                    Err(halted @ CheckpointError::Halted { .. }) => {
                        finish_run(
                            &recorder,
                            handle,
                            run_claim.as_ref(),
                            RunStatus::Interrupted,
                        );
                        return Err(AybError::Checkpoint(halted));
                    }
                    Err(error) => {
                        finish_run(&recorder, handle, run_claim.as_ref(), RunStatus::Failed);
                        return Err(AybError::Checkpoint(error));
                    }
                }
            }
        };
        let optimization_time = t0.elapsed();
        drop(sharded); // ends the wrapper's borrow of the (cached) problem
        let (eval_cache_hits, eval_cache_lookups) = eval_cache
            .as_ref()
            .map(|cache| (cache.hits(), cache.lookups()))
            .unwrap_or((0, 0));
        drop(eval_cache); // ends the cache's borrow of `problem`
        drain_degraded(
            &mut self.observers,
            &degraded_events,
            &mut transport_incidents,
        );
        if optimization.archive.is_empty() {
            if let Some(handle) = &run {
                finish_run(&recorder, handle, run_claim.as_ref(), RunStatus::Failed);
            }
            return Err(AybError::Flow(FlowError::NoFeasibleCandidates));
        }
        let pareto = optimization.pareto_front();
        let selected = subsample_front(&pareto, self.config.max_pareto_points);
        notify_complete(&mut self.observers, FlowStage::Optimize, optimization_time);
        recorder.emit(
            flow_event(run.as_ref(), Severity::Info, event_kind::STAGE_COMPLETE)
                .value(optimization_time.as_secs_f64())
                .detail(FlowStage::Optimize.name()),
        );

        Ok(OptimizedFlow {
            config: self.config,
            observers: self.observers,
            problem,
            optimization,
            pareto,
            selected,
            run,
            run_claim,
            shard_plane,
            transport_incidents,
            claim_heartbeat,
            halt_signal: self.halt_signal,
            variation_halt: self.variation_halt,
            recorder,
            events_guard,
            timings: FlowTimings {
                optimization: optimization_time,
                eval_cache_hits,
                eval_cache_lookups,
                ..FlowTimings::default()
            },
        })
    }

    /// Runs all stages (`optimize -> analyze_variation -> build_model`).
    ///
    /// # Errors
    ///
    /// Propagates the first failing stage's [`AybError`].
    pub fn run(self) -> Result<FlowResult, AybError> {
        self.optimize()?.analyze_variation()?.build_model()
    }
}

/// Flow state after the optimisation stage: archive and Pareto front exist,
/// variation analysis has not run yet.
pub struct OptimizedFlow {
    config: FlowConfig,
    observers: Vec<Box<dyn FlowObserver>>,
    problem: OtaSizingProblem,
    optimization: OptimizationResult,
    pareto: Vec<Evaluation>,
    selected: Vec<Evaluation>,
    run: Option<RunHandle>,
    run_claim: Option<ClaimInfo>,
    shard_plane: Option<FlowShardPlane>,
    transport_incidents: Vec<TransportIncident>,
    claim_heartbeat: Option<ClaimHeartbeat>,
    halt_signal: Option<Arc<AtomicBool>>,
    variation_halt: Option<VariationHaltHook>,
    recorder: Recorder,
    events_guard: Option<SinkGuard>,
    timings: FlowTimings,
}

/// How the variation stage's analysis loop ended.
enum VariationStageOutcome {
    /// Every pending point was analysed and recorded.
    Done,
    /// A halt signal or fault-injection hook stopped the stage at a
    /// boundary; `analysed` points are safely on disk.
    Halted {
        /// Points recorded (restored + newly analysed) at the halt.
        analysed: usize,
    },
    /// A variation checkpoint could not be persisted.
    Failed(StoreError),
}

fn recorded_points(slots: &[Option<VariationPointRecord>]) -> usize {
    slots.iter().filter(|slot| slot.is_some()).count()
}

impl OptimizedFlow {
    /// Every successful evaluation the optimiser performed.
    pub fn archive(&self) -> &[Evaluation] {
        &self.optimization.archive
    }

    /// The Pareto front extracted from the archive.
    pub fn pareto(&self) -> &[Evaluation] {
        &self.pareto
    }

    /// The subset of Pareto points selected for Monte Carlo analysis.
    pub fn selected(&self) -> &[Evaluation] {
        &self.selected
    }

    /// Stage 4: Monte Carlo variation analysis of every selected Pareto
    /// point.
    ///
    /// Each point is analysed with its own derived seed ([`point_mc_seed`]),
    /// so points are independent of each other and of execution order. For
    /// durable runs every analysed point is persisted as
    /// `checkpoints/variation_NNNN.json` the moment it lands — the stage
    /// checkpoints, and a flow killed mid-stage resumes here without
    /// re-analysing completed points. With [`FlowConfig::sharded`] the stage
    /// additionally distributes pending points through the run's shard data
    /// plane (one variation task per point), where any `ayb serve` worker
    /// sharing the store helps out; the submitter participates exactly like
    /// sharded population evaluation, so the stage completes with zero
    /// workers and the result is bit-identical to the serial path either
    /// way.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::InsufficientParetoData`] (wrapped in
    /// [`AybError`]) when fewer than three points survive the analysis,
    /// [`AybError::Checkpoint`] ([`CheckpointError::Halted`]) when a halt
    /// signal or fault hook stopped the stage at a point boundary, and
    /// [`AybError::Store`] when a variation checkpoint cannot be persisted.
    pub fn analyze_variation(mut self) -> Result<AnalyzedFlow, AybError> {
        notify_start(&mut self.observers, FlowStage::AnalyzeVariation);
        self.recorder.emit(
            flow_event(self.run.as_ref(), Severity::Info, event_kind::STAGE_START)
                .detail(FlowStage::AnalyzeVariation.name()),
        );
        let t0 = Instant::now();
        let total = self.selected.len();
        let mut slots: Vec<Option<VariationPointRecord>> = vec![None; total];

        // Restore per-point checkpoints of an interrupted predecessor: those
        // points are *not* re-analysed (their derived seeds make the
        // remainder independent of them, so the final result is still
        // bit-identical to an uninterrupted run).
        if let Some(handle) = &self.run {
            let restored = (|| -> Result<(), StoreError> {
                for index in handle.variation_checkpoint_indices()? {
                    if index < total {
                        slots[index] = Some(handle.load_variation_checkpoint(index)?);
                    }
                }
                Ok(())
            })();
            if let Err(error) = restored {
                drop(self.claim_heartbeat.take());
                finish_run(
                    &self.recorder,
                    handle,
                    self.run_claim.as_ref(),
                    RunStatus::Failed,
                );
                return Err(AybError::Store(error));
            }
        }

        let pending: Vec<usize> = (0..total).filter(|&index| slots[index].is_none()).collect();
        let outcome = if pending.is_empty() {
            VariationStageOutcome::Done
        } else if self.config.sharded && self.run.is_some() && pending.len() > 1 {
            self.variation_sharded(&pending, &mut slots)
        } else {
            self.variation_serial(&pending, &mut slots)
        };
        match outcome {
            VariationStageOutcome::Done => {}
            VariationStageOutcome::Halted { analysed } => {
                drop(self.claim_heartbeat.take());
                if let Some(handle) = &self.run {
                    finish_run(
                        &self.recorder,
                        handle,
                        self.run_claim.as_ref(),
                        RunStatus::Interrupted,
                    );
                }
                return Err(AybError::Checkpoint(CheckpointError::Halted {
                    generation: analysed,
                }));
            }
            VariationStageOutcome::Failed(error) => {
                drop(self.claim_heartbeat.take());
                if let Some(handle) = &self.run {
                    finish_run(
                        &self.recorder,
                        handle,
                        self.run_claim.as_ref(),
                        RunStatus::Failed,
                    );
                }
                return Err(AybError::Store(error));
            }
        }

        let mut pareto_data = Vec::with_capacity(total);
        let mut mc_point_seconds = 0.0f64;
        for slot in slots {
            let record = slot.expect("every selected point was analysed or restored");
            mc_point_seconds += record.elapsed_seconds;
            if let Some(data) = record.data {
                pareto_data.push(data);
            }
        }
        self.timings.monte_carlo = t0.elapsed();
        self.timings.mc_points = total;
        self.timings.mc_point_seconds = mc_point_seconds;
        notify_complete(
            &mut self.observers,
            FlowStage::AnalyzeVariation,
            self.timings.monte_carlo,
        );
        self.recorder.emit(
            flow_event(
                self.run.as_ref(),
                Severity::Info,
                event_kind::STAGE_COMPLETE,
            )
            .value(self.timings.monte_carlo.as_secs_f64())
            .detail(FlowStage::AnalyzeVariation.name()),
        );
        if pareto_data.len() < 3 {
            drop(self.claim_heartbeat.take());
            if let Some(handle) = &self.run {
                finish_run(
                    &self.recorder,
                    handle,
                    self.run_claim.as_ref(),
                    RunStatus::Failed,
                );
            }
            return Err(AybError::Flow(FlowError::InsufficientParetoData(
                pareto_data.len(),
            )));
        }
        Ok(AnalyzedFlow {
            config: self.config,
            observers: self.observers,
            optimization: self.optimization,
            pareto: self.pareto,
            pareto_data,
            run: self.run,
            run_claim: self.run_claim,
            shard_plane: self.shard_plane,
            transport_incidents: self.transport_incidents,
            claim_heartbeat: self.claim_heartbeat,
            recorder: self.recorder,
            events_guard: self.events_guard,
            timings: self.timings,
        })
    }

    /// Whether the flow must halt at `boundary` (fault hook or external halt
    /// signal).
    ///
    /// The external halt signal is only honoured by durable runs: halting a
    /// store-less flow would discard everything with nothing to resume,
    /// which is worse than finishing the stage. The fault-injection hook is
    /// unconditional — it exists precisely to script halts.
    fn variation_should_halt(&self, boundary: VariationBoundary) -> bool {
        if self
            .variation_halt
            .as_ref()
            .is_some_and(|hook| hook(boundary))
        {
            return true;
        }
        self.run.is_some()
            && self
                .halt_signal
                .as_ref()
                .is_some_and(|signal| signal.load(Ordering::Relaxed))
    }

    /// Analyses one selected point in-process (the shared kernel of both
    /// paths), timing the work.
    fn analyse_one(&self, index: usize) -> VariationPointRecord {
        let t0 = Instant::now();
        let data = analyse_variation_point(
            &self.problem,
            &self.selected[index].parameters,
            &self.config,
            point_mc_seed(self.config.monte_carlo.seed, index),
        );
        VariationPointRecord {
            data,
            elapsed_seconds: t0.elapsed().as_secs_f64(),
        }
    }

    /// Reports one shard's degradation to local production: observers hear
    /// it immediately, and the incident lands in the run's persisted
    /// [`TransportReport`].
    fn note_transport_degraded(&mut self, stage: FlowStage, shard: usize, detail: &str) {
        for observer in &mut self.observers {
            observer.on_transport_degraded(stage, shard, detail);
        }
        self.recorder.emit(
            flow_event(
                self.run.as_ref(),
                Severity::Warn,
                event_kind::SHARD_DEGRADED,
            )
            .shard(shard as u64)
            .detail(format!("{}: {detail}", stage.name())),
        );
        self.transport_incidents.push(TransportIncident {
            stage: stage.name().to_string(),
            shard,
            detail: detail.to_string(),
        });
    }

    /// Persists (durable runs) and slots one landed point, ticking the
    /// progress observers.
    fn record_point(
        &mut self,
        slots: &mut [Option<VariationPointRecord>],
        index: usize,
        record: VariationPointRecord,
    ) -> Result<(), StoreError> {
        if let Some(handle) = &self.run {
            guard_claim(handle, self.run_claim.as_ref())?;
            handle.save_variation_checkpoint(index, &record)?;
        }
        let elapsed_seconds = record.elapsed_seconds;
        slots[index] = Some(record);
        let done = recorded_points(slots);
        let total = slots.len();
        for observer in &mut self.observers {
            observer.on_progress(FlowStage::AnalyzeVariation, done, total);
        }
        self.recorder.emit(
            flow_event(
                self.run.as_ref(),
                Severity::Debug,
                event_kind::VARIATION_POINT,
            )
            .shard(index as u64)
            .value(elapsed_seconds)
            .detail(format!("point {index} analysed ({done}/{total})")),
        );
        Ok(())
    }

    /// The serial variation path: analyse pending points in index order,
    /// checkpointing each as it completes.
    fn variation_serial(
        &mut self,
        pending: &[usize],
        slots: &mut [Option<VariationPointRecord>],
    ) -> VariationStageOutcome {
        for &index in pending {
            if self.variation_should_halt(VariationBoundary::Claim { point: index }) {
                return VariationStageOutcome::Halted {
                    analysed: recorded_points(slots),
                };
            }
            let record = self.analyse_one(index);
            if let Err(error) = self.record_point(slots, index, record) {
                return VariationStageOutcome::Failed(error);
            }
            if self.variation_should_halt(VariationBoundary::ResultWrite { point: index }) {
                return VariationStageOutcome::Halted {
                    analysed: recorded_points(slots),
                };
            }
        }
        VariationStageOutcome::Done
    }

    /// The sharded variation path: chunk the pending points into
    /// [`FlowConfig::variation_batch`]-sized tasks, publish them into a
    /// variation epoch on the run's shard data plane, then participate in
    /// the generic claim-poll-recover drive ([`drive_epoch`]) exactly like
    /// sharded population evaluation. Transport failures degrade to the
    /// serial path — the stage always completes, with identical results.
    fn variation_sharded(
        &mut self,
        pending: &[usize],
        slots: &mut [Option<VariationPointRecord>],
    ) -> VariationStageOutcome {
        // Clones share counters with the plane built in `optimize`, so
        // traffic and fencing stats keep accumulating across stages.
        let Some(plane) = self.shard_plane.clone() else {
            return self.variation_serial(pending, slots);
        };
        let batch_size = self.config.variation_batch.max(1);
        let batches: Vec<Vec<usize>> = pending
            .chunks(batch_size)
            .map(|chunk| chunk.to_vec())
            .collect();
        let Ok(epoch) = plane.open_typed_epoch(ShardWorkKind::Variation, batches.len()) else {
            let detail = "variation epoch could not be opened; analysing serially".to_string();
            self.note_transport_degraded(FlowStage::AnalyzeVariation, 0, &detail);
            return self.variation_serial(pending, slots);
        };
        let base_seed = self.config.monte_carlo.seed;
        for (shard, batch) in batches.iter().enumerate() {
            let point_work = |&index: &usize| VariationPointWork {
                parameters: self.selected[index].parameters.clone(),
                mc_seed: point_mc_seed(base_seed, index),
            };
            // A single-point batch keeps the historical task shape, so
            // pre-batching workers stay compatible.
            let work = match batch.as_slice() {
                [index] => {
                    let point = point_work(index);
                    ShardWork::Variation {
                        parameters: point.parameters,
                        mc_seed: point.mc_seed,
                    }
                }
                _ => ShardWork::VariationBatch {
                    points: batch.iter().map(point_work).collect(),
                },
            };
            if plane.publish_work(&epoch, shard, &work).is_err() {
                // A half-published epoch is unusable; dispose of it and fall
                // back to the serial path.
                let _ = plane.close_epoch(&epoch);
                return self.variation_serial(pending, slots);
            }
        }

        let options = ShardingOptions::default();
        let shard_count = batches.len();
        let mut work = VariationEpochWork {
            flow: self,
            plane: &plane,
            epoch: &epoch,
            batches: &batches,
            slots,
            abort: None,
        };
        let driven = drive_epoch(&mut work, shard_count, &options);
        let abort = work.abort;
        match driven {
            Some(_) => {
                if self.variation_should_halt(VariationBoundary::EpochClose) {
                    // Halt *before* disposal, like a crash at this boundary:
                    // the leftover epoch is swept when the run resumes.
                    return VariationStageOutcome::Halted {
                        analysed: recorded_points(slots),
                    };
                }
                let _ = plane.close_epoch(&epoch);
                VariationStageOutcome::Done
            }
            // Aborted mid-epoch: leave the epoch on disk (exactly what a
            // crash leaves behind); the resumed flow sweeps it.
            None => match abort {
                Some(VariationAbort::Failed(error)) => VariationStageOutcome::Failed(error),
                _ => VariationStageOutcome::Halted {
                    analysed: recorded_points(slots),
                },
            },
        }
    }
}

/// Why a variation epoch drive aborted (see [`VariationEpochWork`]).
enum VariationAbort {
    /// A halt signal or fault hook fired at a boundary.
    Halted,
    /// A variation checkpoint could not be persisted.
    Failed(StoreError),
}

/// [`EpochWork`] binding of the variation stage: one shard = one batch of
/// pending Pareto points, transported as [`ShardWork::Variation`] /
/// [`ShardWork::VariationBatch`] over the run's [`ShardDataPlane`]. Landing
/// a batch writes each point's variation checkpoint in batch order and ticks
/// the flow's observers — identical bookkeeping to the serial path, with a
/// halt boundary between every point.
struct VariationEpochWork<'a> {
    flow: &'a mut OptimizedFlow,
    plane: &'a FlowShardPlane,
    epoch: &'a str,
    /// Pending point indices, chunked as published (`batches[shard]`).
    batches: &'a [Vec<usize>],
    slots: &'a mut [Option<VariationPointRecord>],
    abort: Option<VariationAbort>,
}

impl EpochWork for VariationEpochWork<'_> {
    type Output = Vec<VariationPointRecord>;

    fn fetch(&mut self, shard: usize) -> Result<Option<Vec<VariationPointRecord>>, ShardError> {
        let outcome = self.plane.fetch_outcome(self.epoch, shard)?;
        let points = match outcome {
            Some(ShardOutcome::Variation(outcome)) => vec![outcome],
            Some(ShardOutcome::VariationBatch { points }) => points,
            Some(ShardOutcome::Eval { .. }) | None => return Ok(None),
        };
        if points.len() != self.batches[shard].len() {
            // A mis-shaped payload leaves the shard pending (it will be
            // claimed and re-analysed locally) instead of failing the stage.
            return Ok(None);
        }
        let records: Option<Vec<VariationPointRecord>> = points
            .iter()
            .map(VariationPointRecord::from_outcome)
            .collect();
        // Same treatment for a malformed point payload.
        Ok(records)
    }

    fn try_claim(&mut self, shard: usize) -> Result<bool, ShardError> {
        self.plane.try_claim(self.epoch, shard)
    }

    fn evaluate(&mut self, shard: usize) -> Vec<VariationPointRecord> {
        self.batches[shard]
            .iter()
            .map(|&index| self.flow.analyse_one(index))
            .collect()
    }

    fn submit(
        &mut self,
        shard: usize,
        records: &Vec<VariationPointRecord>,
    ) -> Result<(), ShardError> {
        let outcome = match records.as_slice() {
            [record] if self.batches[shard].len() == 1 => {
                ShardOutcome::Variation(record.to_outcome())
            }
            _ => ShardOutcome::VariationBatch {
                points: records.iter().map(|r| r.to_outcome()).collect(),
            },
        };
        self.plane.submit_outcome(self.epoch, shard, &outcome)
    }

    fn recover(&mut self, shard: usize) -> Result<bool, ShardError> {
        self.plane.recover(self.epoch, shard)
    }

    fn on_claimed(&mut self, shard: usize) -> bool {
        // Check the claim boundary of every point in the batch up front: a
        // scripted halt at any of them stops before the batch is analysed
        // (its unrecorded points are re-analysed on resume, with unchanged
        // results thanks to the per-point seeds).
        for &point in &self.batches[shard] {
            if self
                .flow
                .variation_should_halt(VariationBoundary::Claim { point })
            {
                self.abort = Some(VariationAbort::Halted);
                return false;
            }
        }
        true
    }

    fn on_result(&mut self, shard: usize, records: &Vec<VariationPointRecord>) -> bool {
        // Record batch points sequentially, honouring the result-write halt
        // boundary between points exactly like the serial path: a mid-batch
        // halt leaves the earlier points durably checkpointed and the rest
        // for the resumed flow.
        for (&index, record) in self.batches[shard].iter().zip(records) {
            if let Err(error) = self.flow.record_point(self.slots, index, record.clone()) {
                self.abort = Some(VariationAbort::Failed(error));
                return false;
            }
            let boundary = VariationBoundary::ResultWrite { point: index };
            if self.flow.variation_should_halt(boundary) {
                self.abort = Some(VariationAbort::Halted);
                return false;
            }
        }
        true
    }

    fn on_degraded(&mut self, shard: usize, error: &ShardError) {
        let ShardError::Transport(detail) = error;
        let point = self.batches[shard][0];
        self.flow
            .note_transport_degraded(FlowStage::AnalyzeVariation, point, detail);
    }
}

/// Flow state after variation analysis: per-point variation data exists, the
/// combined model has not been built yet.
pub struct AnalyzedFlow {
    config: FlowConfig,
    observers: Vec<Box<dyn FlowObserver>>,
    optimization: OptimizationResult,
    pareto: Vec<Evaluation>,
    pareto_data: Vec<ParetoPointData>,
    run: Option<RunHandle>,
    run_claim: Option<ClaimInfo>,
    shard_plane: Option<FlowShardPlane>,
    transport_incidents: Vec<TransportIncident>,
    claim_heartbeat: Option<ClaimHeartbeat>,
    recorder: Recorder,
    /// Held, not read: keeps the run's events.jsonl sink attached to the
    /// recorder until the flow ends (detached on drop).
    #[allow(dead_code)]
    events_guard: Option<SinkGuard>,
    timings: FlowTimings,
}

impl AnalyzedFlow {
    /// The Pareto points annotated with Monte Carlo variation (Table 2 data).
    pub fn pareto_data(&self) -> &[ParetoPointData] {
        &self.pareto_data
    }

    /// Stage 5: builds the combined performance + variation model and
    /// finishes the flow.
    ///
    /// # Errors
    ///
    /// Returns the [`ModelError`] (wrapped in [`AybError`]) when the model
    /// cannot be constructed from the analysed points.
    pub fn build_model(mut self) -> Result<FlowResult, AybError> {
        notify_start(&mut self.observers, FlowStage::BuildModel);
        self.recorder.emit(
            flow_event(self.run.as_ref(), Severity::Info, event_kind::STAGE_START)
                .detail(FlowStage::BuildModel.name()),
        );
        let t0 = Instant::now();
        let model = match CombinedOtaModel::from_pareto_data(
            self.pareto_data.clone(),
            self.config.sigma_level,
        ) {
            Ok(model) => model,
            Err(error) => {
                drop(self.claim_heartbeat.take());
                if let Some(handle) = &self.run {
                    finish_run(
                        &self.recorder,
                        handle,
                        self.run_claim.as_ref(),
                        RunStatus::Failed,
                    );
                }
                return Err(error.into());
            }
        };
        self.timings.model_build = t0.elapsed();
        notify_complete(
            &mut self.observers,
            FlowStage::BuildModel,
            self.timings.model_build,
        );
        self.recorder.emit(
            flow_event(
                self.run.as_ref(),
                Severity::Info,
                event_kind::STAGE_COMPLETE,
            )
            .value(self.timings.model_build.as_secs_f64())
            .detail(FlowStage::BuildModel.name()),
        );
        // Shard-plane accounting, accumulated over every stage. Timings are
        // excluded from determinism digests, so recording traffic here can
        // never perturb a result.
        if let Some(plane) = &self.shard_plane {
            let (requests, seconds) = plane.traffic();
            self.timings.shard_requests = requests;
            self.timings.shard_request_seconds = seconds;
            self.timings.shards_fenced = plane.fenced_rejections();
        }
        self.timings.shards_degraded = self.transport_incidents.len();
        let result = FlowResult {
            archive: self.optimization.archive.clone(),
            pareto: self.pareto,
            pareto_data: self.pareto_data,
            model,
            timings: self.timings,
            optimization: self.optimization,
        };
        drop(self.claim_heartbeat.take());
        if let Some(handle) = &self.run {
            // Every epoch was assembled (or abandoned) by now; anything left
            // under `shards/` is debris from an epoch disposal that lost the
            // race against a worker's in-flight claim. Re-verify the claim
            // first: if a recovery pass stole it (this flow was presumed
            // hung), a successor owns these files now and this writer must
            // not touch them — not even to sweep.
            let persisted = guard_claim(handle, self.run_claim.as_ref()).and_then(|()| {
                let _ = handle.sweep_shards();
                if let Some(plane) = &self.shard_plane {
                    let (requests, request_seconds) = plane.traffic();
                    // Diagnostic only — failure to write the report must not
                    // fail a completed flow.
                    let _ = handle.save_transport_report(&TransportReport {
                        transport: plane.describe(),
                        incidents: self.transport_incidents.clone(),
                        requests,
                        request_seconds,
                        fenced_rejections: plane.fenced_rejections(),
                    });
                }
                handle.save_result(&result)?;
                handle.set_status(RunStatus::Completed)
            });
            if persisted.is_ok() {
                self.recorder.emit(
                    Event::new(Severity::Info, "flow", event_kind::RUN_COMPLETED)
                        .run(handle.id())
                        .value(result.timings.total().as_secs_f64()),
                );
            }
            // Compare-and-delete: releases only the claim this flow minted,
            // never a successor's.
            if let Some(minted) = self.run_claim.as_ref() {
                let _ = handle.break_claim(minted);
            }
            persisted?;
        }
        Ok(result)
    }
}

/// Interval at which a flow refreshes its run claim's heartbeat (see
/// [`ayb_store::ClaimHeartbeat`]): recovery thresholds are tens of seconds,
/// so one touch per second gives ample margin.
const CLAIM_HEARTBEAT_INTERVAL: Duration = Duration::from_secs(1);

/// How long a *shard* claim may go without a heartbeat before the submitter
/// presumes its holder dead and re-evaluates the shard. Duplicate shard
/// evaluation is benign (pure evaluations, atomic result writes), so this is
/// deliberately more aggressive than run-claim recovery; workers heartbeat
/// their shard claims every second while evaluating.
const SHARD_CLAIM_STALE_AFTER: Duration = Duration::from_secs(60);

/// The shard data plane a sharded flow drives its epochs through, selected
/// by [`FlowConfig::transport`]: the store's on-disk plane (workers share
/// the filesystem) or a TCP coordinator (workers share nothing but the
/// network). Both speak the same typed epoch vocabulary, so the eval and
/// variation stages are transport-agnostic — and bit-identical, since shard
/// payloads and reassembly order never depend on how they travelled.
///
/// Clones share counters (and, for TCP, the token table), so the stats read
/// at flow completion cover every stage.
#[derive(Clone)]
enum FlowShardPlane {
    /// Epochs as files under the run directory (`ShardDataPlane`).
    Disk(ShardDataPlane),
    /// Epochs in an `ayb coordinate` server's memory, over TCP.
    Tcp(TcpTransport),
}

impl FlowShardPlane {
    /// A boxed [`ShardTransport`] view for [`ShardedEvaluator`].
    fn boxed_transport(&self) -> Box<dyn ShardTransport> {
        match self {
            FlowShardPlane::Disk(plane) => Box::new(plane.clone()),
            FlowShardPlane::Tcp(transport) => Box::new(transport.clone()),
        }
    }

    /// Where this plane lives, for diagnostics ("disk" or the `tcp://` URL).
    fn describe(&self) -> String {
        match self {
            FlowShardPlane::Disk(_) => "disk".to_string(),
            FlowShardPlane::Tcp(transport) => transport.url(),
        }
    }

    fn open_typed_epoch(
        &self,
        kind: ShardWorkKind,
        shard_count: usize,
    ) -> Result<String, ShardError> {
        match self {
            FlowShardPlane::Disk(plane) => plane.open_typed_epoch(kind),
            FlowShardPlane::Tcp(transport) => transport.open_typed_epoch(kind, shard_count),
        }
    }

    fn publish_work(&self, epoch: &str, shard: usize, work: &ShardWork) -> Result<(), ShardError> {
        match self {
            FlowShardPlane::Disk(plane) => plane.publish_work(epoch, shard, work),
            FlowShardPlane::Tcp(transport) => transport.publish_work(epoch, shard, work),
        }
    }

    fn try_claim(&self, epoch: &str, shard: usize) -> Result<bool, ShardError> {
        match self {
            FlowShardPlane::Disk(plane) => plane.try_claim(epoch, shard),
            FlowShardPlane::Tcp(transport) => transport.try_claim(epoch, shard),
        }
    }

    fn submit_outcome(
        &self,
        epoch: &str,
        shard: usize,
        outcome: &ShardOutcome,
    ) -> Result<(), ShardError> {
        match self {
            FlowShardPlane::Disk(plane) => plane.submit_outcome(epoch, shard, outcome),
            FlowShardPlane::Tcp(transport) => transport.submit_outcome(epoch, shard, outcome),
        }
    }

    fn fetch_outcome(&self, epoch: &str, shard: usize) -> Result<Option<ShardOutcome>, ShardError> {
        match self {
            FlowShardPlane::Disk(plane) => plane.fetch_outcome(epoch, shard),
            FlowShardPlane::Tcp(transport) => transport.fetch_outcome(epoch, shard),
        }
    }

    fn recover(&self, epoch: &str, shard: usize) -> Result<bool, ShardError> {
        match self {
            FlowShardPlane::Disk(plane) => ShardTransport::recover(plane, epoch, shard),
            FlowShardPlane::Tcp(transport) => ShardTransport::recover(transport, epoch, shard),
        }
    }

    fn close_epoch(&self, epoch: &str) -> Result<(), ShardError> {
        match self {
            FlowShardPlane::Disk(plane) => ShardTransport::close_epoch(plane, epoch),
            FlowShardPlane::Tcp(transport) => ShardTransport::close_epoch(transport, epoch),
        }
    }

    /// Results this plane's writers had fenced off (stolen claims whose late
    /// submissions were discarded), accumulated across all stages.
    fn fenced_rejections(&self) -> u64 {
        match self {
            FlowShardPlane::Disk(plane) => plane.fenced_rejections(),
            FlowShardPlane::Tcp(transport) => transport.stats().fenced_rejections,
        }
    }

    /// `(requests, summed round-trip seconds)` of shard traffic. The disk
    /// plane reports zero — per-file I/O is not request-shaped.
    fn traffic(&self) -> (u64, f64) {
        match self {
            FlowShardPlane::Disk(_) => (0, 0.0),
            FlowShardPlane::Tcp(transport) => {
                let stats = transport.stats();
                (stats.requests, stats.request_seconds)
            }
        }
    }
}

/// One shard's degradation to local evaluation: the record behind
/// [`FlowObserver::on_transport_degraded`], persisted in the run's
/// [`TransportReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransportIncident {
    /// Stage the degradation happened in (`optimize` / `analyze_variation`).
    pub stage: String,
    /// Shard index within its epoch (eval) or Pareto-point index
    /// (variation).
    pub shard: usize,
    /// The transport error that tipped the shard into local evaluation.
    pub detail: String,
}

/// Diagnostic summary of a sharded run's data-plane behaviour, persisted as
/// `transport.json` next to the result and shown by `ayb status`. Purely
/// observational: results and digests never depend on it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransportReport {
    /// Where the data plane lived ("disk" or a `tcp://host:port` URL).
    pub transport: String,
    /// Every shard that degraded to local evaluation, with its cause.
    pub incidents: Vec<TransportIncident>,
    /// Shard requests sent over the wire (TCP planes; 0 on disk).
    pub requests: u64,
    /// Summed request round-trip seconds (TCP planes; 0 on disk).
    pub request_seconds: f64,
    /// Late writes from stolen claims this flow's plane discarded.
    pub fenced_rejections: u64,
}

/// Terminal-state bookkeeping for a durable run: record the status and
/// release the execution claim taken in [`FlowBuilder::optimize`].
///
/// When the minted claim is known and no longer on disk — a recovery pass
/// stole it from this presumed-hung process — the run now belongs to a
/// successor and is left entirely alone: writing a terminal status over the
/// successor's `Running` (or deleting its claim) is exactly the split-brain
/// the fencing tokens exist to prevent.
fn finish_run(
    recorder: &Recorder,
    handle: &RunHandle,
    minted: Option<&ClaimInfo>,
    status: RunStatus,
) {
    let (severity, kind) = match status {
        RunStatus::Completed => (Severity::Info, event_kind::RUN_COMPLETED),
        RunStatus::Interrupted => (Severity::Warn, event_kind::RUN_INTERRUPTED),
        _ => (Severity::Error, event_kind::RUN_FAILED),
    };
    recorder.emit(Event::new(severity, "flow", kind).run(handle.id()));
    if let Some(minted) = minted {
        if !handle.claim_is(minted).unwrap_or(false) {
            return;
        }
        let _ = handle.set_status(status);
        let _ = handle.break_claim(minted);
    } else {
        let _ = handle.set_status(status);
        let _ = handle.release_claim();
    }
}

/// Drains eval-stage degradation events buffered by the sharded evaluator's
/// hook into the observers and the flow's incident record (see
/// [`FlowObserver::on_transport_degraded`]).
fn drain_degraded(
    observers: &mut [Box<dyn FlowObserver>],
    events: &Arc<Mutex<Vec<(usize, String)>>>,
    incidents: &mut Vec<TransportIncident>,
) {
    for (shard, detail) in events.lock().expect("degradation event lock").drain(..) {
        for observer in observers.iter_mut() {
            observer.on_transport_degraded(FlowStage::Optimize, shard, &detail);
        }
        incidents.push(TransportIncident {
            stage: FlowStage::Optimize.name().to_string(),
            shard,
            detail,
        });
    }
}

/// Pre-write fence check for durable-run files: verifies this flow still
/// holds the claim it minted, so a fenced-off (stolen-claim) writer fails
/// with [`StoreError::RunClaimed`] instead of corrupting its successor's
/// state. The check-then-write window is a single stat — the successor's
/// first act is its own fence-stamped claim, which this comparison can never
/// match.
fn guard_claim(handle: &RunHandle, minted: Option<&ClaimInfo>) -> Result<(), StoreError> {
    let Some(minted) = minted else {
        return Ok(());
    };
    if handle.claim_is(minted)? {
        return Ok(());
    }
    let owner = handle
        .claim()
        .ok()
        .flatten()
        .map_or_else(|| "unknown".to_string(), |claim| claim.owner);
    Err(StoreError::RunClaimed {
        run_id: handle.id().to_string(),
        owner,
    })
}

/// An [`Event`] stamped with the flow's source label and, when the run is
/// durable, its run id.
fn flow_event(run: Option<&RunHandle>, severity: Severity, kind: &str) -> Event {
    let event = Event::new(severity, "flow", kind);
    match run {
        Some(handle) => event.run(handle.id()),
        None => event,
    }
}

fn notify_start(observers: &mut [Box<dyn FlowObserver>], stage: FlowStage) {
    for observer in observers {
        observer.on_stage_start(stage);
    }
}

fn notify_complete(observers: &mut [Box<dyn FlowObserver>], stage: FlowStage, elapsed: Duration) {
    for observer in observers {
        observer.on_stage_complete(stage, elapsed);
    }
}

/// Runs the complete model-generation flow with the paper's WBGA.
///
/// Thin compatibility wrapper over [`FlowBuilder`]: `generate_model(&config)`
/// is exactly `FlowBuilder::new(config.clone()).run()` with the error
/// projected onto [`FlowError`], and produces an identical [`FlowResult`].
///
/// # Errors
///
/// Returns an error if the optimisation finds no feasible candidates, too few
/// Pareto points survive the variation analysis, or model construction fails.
pub fn generate_model(config: &FlowConfig) -> Result<FlowResult, FlowError> {
    FlowBuilder::new(config.clone())
        .run()
        .map_err(AybError::into_flow_error)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn numbered_front(n: usize) -> Vec<Evaluation> {
        (0..n)
            .map(|i| Evaluation::new(vec![i as f64], vec![i as f64, n as f64 - i as f64]))
            .collect()
    }

    #[test]
    fn subsample_preserves_ends_and_order() {
        let front = numbered_front(50);
        let sub = subsample_front(&front, 10);
        assert_eq!(sub.len(), 10);
        assert_eq!(sub[0].objectives[0], 0.0);
        assert_eq!(sub[9].objectives[0], 49.0);
        assert!(sub
            .windows(2)
            .all(|w| w[0].objectives[0] < w[1].objectives[0]));
        // Limits larger than the front return it unchanged.
        assert_eq!(subsample_front(&front, 100).len(), 50);
    }

    #[test]
    fn subsample_limit_one_selects_a_representative_middle_point() {
        let front = numbered_front(9);
        let sub = subsample_front(&front, 1);
        assert_eq!(sub.len(), 1);
        // The knee-region (middle) point, not the first point.
        assert_eq!(sub[0].objectives[0], 4.0);
        // Still well-defined for the smallest front that can be subsampled.
        let pair = numbered_front(2);
        assert_eq!(subsample_front(&pair, 1)[0].objectives[0], 1.0);
    }

    #[test]
    fn subsample_limit_two_keeps_both_ends() {
        let front = numbered_front(17);
        let sub = subsample_front(&front, 2);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub[0].objectives[0], 0.0);
        assert_eq!(sub[1].objectives[0], 16.0);
    }

    #[test]
    fn subsample_limit_zero_and_empty_front_are_identity() {
        let front = numbered_front(5);
        assert_eq!(subsample_front(&front, 0).len(), 5);
        assert!(subsample_front(&[], 3).is_empty());
    }

    // The full reduced-scale flow is exercised by the workspace-level
    // integration tests (tests/full_flow.rs); unit tests here stay cheap.
    #[test]
    fn flow_error_display() {
        let e = FlowError::InsufficientParetoData(1);
        assert!(e.to_string().contains('1'));
        assert!(FlowError::NoFeasibleCandidates
            .to_string()
            .contains("no feasible"));
    }

    #[test]
    fn flow_summary_without_timing_zeroes_only_the_clocks() {
        let summary = FlowSummary {
            generations: 8,
            evaluation_samples: 100,
            pareto_points: 12,
            analysed_pareto_points: 8,
            mc_samples_per_point: 16,
            cpu_time_seconds: 3.25,
            mc_work_seconds: 2.5,
        };
        let stripped = summary.without_timing();
        assert_eq!(stripped.cpu_time_seconds, 0.0);
        assert_eq!(stripped.mc_work_seconds, 0.0);
        assert_eq!(stripped.generations, summary.generations);
        assert_eq!(stripped.evaluation_samples, summary.evaluation_samples);
        assert_eq!(
            stripped.analysed_pareto_points,
            summary.analysed_pareto_points
        );
    }

    #[test]
    fn point_mc_seeds_are_distinct_and_reproducible() {
        let seeds: Vec<u64> = (0..64).map(|i| point_mc_seed(2008, i)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len(), "per-point seeds never collide");
        // Pure function of (base, index): same inputs, same seed.
        assert_eq!(point_mc_seed(2008, 7), seeds[7]);
        // A different base seed moves every point's stream.
        assert!((0..64).all(|i| point_mc_seed(2009, i) != seeds[i]));
    }

    #[test]
    fn flow_timings_deserialize_defaults_missing_work_fields() {
        // A result persisted before the per-point accounting existed lacks
        // `mc_points`/`mc_point_seconds`; it must still load.
        let timings = FlowTimings {
            optimization: Duration::from_secs(2),
            monte_carlo: Duration::from_secs(3),
            model_build: Duration::from_secs(1),
            mc_points: 9,
            mc_point_seconds: 2.75,
            shard_requests: 40,
            shard_request_seconds: 0.5,
            shards_fenced: 1,
            shards_degraded: 2,
            eval_cache_hits: 12,
            eval_cache_lookups: 30,
        };
        let serde::Value::Object(mut pairs) = serde::Serialize::to_value(&timings) else {
            panic!("FlowTimings serializes to an object");
        };
        pairs.retain(|(key, _)| {
            key != "mc_points"
                && key != "mc_point_seconds"
                && key != "shard_requests"
                && key != "shard_request_seconds"
                && key != "shards_fenced"
                && key != "shards_degraded"
                && key != "eval_cache_hits"
                && key != "eval_cache_lookups"
        });
        let legacy = serde::Value::Object(pairs);
        let back: FlowTimings = serde::Deserialize::from_value(&legacy).expect("legacy loads");
        assert_eq!(back.mc_points, 0);
        assert_eq!(back.mc_point_seconds, 0.0);
        assert_eq!(back.shard_requests, 0);
        assert_eq!(back.shard_request_seconds, 0.0);
        assert_eq!(back.shards_fenced, 0);
        assert_eq!(back.shards_degraded, 0);
        assert_eq!(back.eval_cache_hits, 0);
        assert_eq!(back.eval_cache_lookups, 0);
        assert_eq!(back.monte_carlo, timings.monte_carlo);

        // And the current shape round-trips unchanged.
        let roundtrip: FlowTimings =
            serde::Deserialize::from_value(&serde::Serialize::to_value(&timings)).unwrap();
        assert_eq!(roundtrip, timings);
    }

    #[test]
    fn variation_point_record_survives_the_wire_format() {
        use ayb_circuit::DesignPoint;
        let record = VariationPointRecord {
            data: Some(ParetoPointData {
                gain_db: 61.25,
                phase_margin_deg: 58.5,
                gain_delta_percent: 3.125,
                pm_delta_percent: 1.75,
                unity_gain_hz: 8.5e6,
                parameters: DesignPoint::new().with("w1", 2.5e-6),
            }),
            elapsed_seconds: 0.25,
        };
        let back = VariationPointRecord::from_outcome(&record.to_outcome())
            .expect("well-formed outcome parses");
        assert_eq!(back, record, "bit-identical through the shard wire");

        let none = VariationPointRecord {
            data: None,
            elapsed_seconds: 0.125,
        };
        let back = VariationPointRecord::from_outcome(&none.to_outcome()).unwrap();
        assert_eq!(back, none, "failed-analysis records round-trip too");
    }

    #[test]
    fn builder_records_configuration_and_optimizer() {
        let config = FlowConfig::reduced();
        let builder = FlowBuilder::new(config.clone());
        assert_eq!(builder.optimizer().name(), "wbga");
        assert_eq!(builder.config().ga.seed, config.ga.seed);

        let reseeded = FlowBuilder::new(config)
            .with_optimizer(OptimizerConfig::RandomSearch {
                budget: 64,
                seed: 1,
            })
            .with_seed(0xabcd);
        assert_eq!(reseeded.optimizer().seed(), 0xabcd);
        assert_eq!(reseeded.config().monte_carlo.seed, 0xabcd);
        assert_eq!(reseeded.optimizer().name(), "random_search");
    }

    #[test]
    fn eval_cache_is_digest_neutral_and_observable_in_timings() {
        let mut config = FlowConfig::reduced();
        config.ga.generations = 3;
        config.sweep = ayb_sim::FrequencySweep::logarithmic(10.0, 1e9, 4);
        config.monte_carlo.samples = 4;
        config.max_pareto_points = 4;

        let off = FlowBuilder::new(config.clone())
            .with_seed(5)
            .run()
            .expect("uncached flow completes");
        config.eval_cache = Some(1e-9);
        let on = FlowBuilder::new(config)
            .with_seed(5)
            .run()
            .expect("cached flow completes");

        assert_eq!(
            off.determinism_digest(),
            on.determinism_digest(),
            "the evaluation cache must never change results"
        );
        // The cache is off by default (no lookups recorded)…
        assert_eq!(off.timings.eval_cache_lookups, 0);
        assert_eq!(off.timings.eval_cache_hits, 0);
        // …and on when configured: every optimiser evaluation consults it.
        assert!(on.timings.eval_cache_lookups > 0);
        assert!(on.timings.eval_cache_hits <= on.timings.eval_cache_lookups);
    }

    #[test]
    fn with_seed_applies_regardless_of_call_order() {
        let config = FlowConfig::reduced();
        let optimizer = OptimizerConfig::RandomSearch {
            budget: 64,
            seed: 1,
        };

        let seed_first = FlowBuilder::new(config.clone())
            .with_seed(0x5eed)
            .with_optimizer(optimizer.clone());
        let seed_last = FlowBuilder::new(config)
            .with_optimizer(optimizer)
            .with_seed(0x5eed);

        assert_eq!(seed_first.optimizer().seed(), 0x5eed);
        assert_eq!(seed_last.optimizer().seed(), 0x5eed);
        assert_eq!(seed_first.optimizer(), seed_last.optimizer());
        assert_eq!(
            seed_first.config().monte_carlo.seed,
            seed_last.config().monte_carlo.seed
        );
    }
}
