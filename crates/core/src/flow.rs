//! The end-to-end model-generation flow (paper §3, Figure 3).
//!
//! The five steps of the proposed algorithm are executed in order:
//!
//! 1. netlist / objective generation ([`OtaSizingProblem`]),
//! 2. multi-objective optimisation with the WBGA (§3.2),
//! 3. Pareto-front extraction (§3.3),
//! 4. Monte Carlo variation analysis of every Pareto point (§3.4),
//! 5. table-model / combined-model generation (§3.5).
//!
//! The output is a [`CombinedOtaModel`] plus everything needed to regenerate
//! Figure 7 and Tables 2/5 of the paper.

use crate::config::FlowConfig;
use crate::ota_problem::{measure_testbench, OtaSizingProblem};
use ayb_behavioral::{CombinedOtaModel, ModelError, ParetoPointData};
use ayb_circuit::ota::{build_open_loop_testbench, OtaParameters};
use ayb_moo::{Evaluation, Wbga, WbgaResult};
use ayb_process::{montecarlo, Summary};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Errors produced by the flow.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowError {
    /// The optimisation produced no feasible candidates at all.
    NoFeasibleCandidates,
    /// Too few Pareto points survived Monte Carlo analysis to build a model.
    InsufficientParetoData(usize),
    /// Building the combined model failed.
    Model(ModelError),
    /// A circuit could not be constructed.
    Circuit(String),
}

impl std::fmt::Display for FlowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowError::NoFeasibleCandidates => {
                write!(f, "the optimisation produced no feasible candidates")
            }
            FlowError::InsufficientParetoData(n) => write!(
                f,
                "only {n} Pareto points completed Monte Carlo analysis; at least 3 are required"
            ),
            FlowError::Model(e) => write!(f, "model construction failed: {e}"),
            FlowError::Circuit(e) => write!(f, "circuit construction failed: {e}"),
        }
    }
}

impl std::error::Error for FlowError {}

impl From<ModelError> for FlowError {
    fn from(e: ModelError) -> Self {
        FlowError::Model(e)
    }
}

/// Wall-clock timings of the flow stages (Table 5's CPU-time column).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct FlowTimings {
    /// Multi-objective optimisation time.
    pub optimization: Duration,
    /// Monte Carlo variation-analysis time.
    pub monte_carlo: Duration,
    /// Model construction time.
    pub model_build: Duration,
}

impl FlowTimings {
    /// Total flow time.
    pub fn total(&self) -> Duration {
        self.optimization + self.monte_carlo + self.model_build
    }
}

/// Summary of the flow, mirroring Table 5 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowSummary {
    /// Number of GA generations.
    pub generations: usize,
    /// Number of evaluation samples (circuit simulations in the GA).
    pub evaluation_samples: usize,
    /// Number of Pareto-optimal points found.
    pub pareto_points: usize,
    /// Number of Pareto points carried through Monte Carlo analysis.
    pub analysed_pareto_points: usize,
    /// Monte Carlo samples per analysed point.
    pub mc_samples_per_point: usize,
    /// Total CPU (wall-clock) time of the flow in seconds.
    pub cpu_time_seconds: f64,
}

/// Complete output of the model-generation flow.
#[derive(Debug, Clone)]
pub struct FlowResult {
    /// Every evaluation the GA performed (the scatter of Figure 7).
    pub archive: Vec<Evaluation>,
    /// The Pareto front extracted from the archive (the front of Figure 7).
    pub pareto: Vec<Evaluation>,
    /// Pareto points annotated with Monte Carlo variation (Table 2 data).
    pub pareto_data: Vec<ParetoPointData>,
    /// The combined performance + variation behavioural model.
    pub model: CombinedOtaModel,
    /// Stage timings.
    pub timings: FlowTimings,
    /// Raw WBGA result (history, evaluation counters).
    pub optimization: WbgaResult,
}

impl FlowResult {
    /// Builds the Table 5 style summary for a given configuration.
    pub fn summary(&self, config: &FlowConfig) -> FlowSummary {
        FlowSummary {
            generations: config.ga.generations,
            evaluation_samples: self.optimization.evaluations,
            pareto_points: self.pareto.len(),
            analysed_pareto_points: self.pareto_data.len(),
            mc_samples_per_point: config.monte_carlo.samples,
            cpu_time_seconds: self.timings.total().as_secs_f64(),
        }
    }
}

/// Selects at most `limit` points spread evenly along a front.
pub fn subsample_front(front: &[Evaluation], limit: usize) -> Vec<Evaluation> {
    if front.len() <= limit || limit == 0 {
        return front.to_vec();
    }
    (0..limit)
        .map(|i| {
            let idx = i * (front.len() - 1) / (limit - 1).max(1);
            front[idx].clone()
        })
        .collect()
}

/// Runs the Monte Carlo variation analysis (§3.4) for one Pareto point.
///
/// Returns `None` when the nominal candidate cannot be re-simulated or every
/// Monte Carlo sample fails.
pub fn analyse_pareto_point(
    problem: &OtaSizingProblem,
    point: &Evaluation,
    config: &FlowConfig,
) -> Option<ParetoPointData> {
    let design_point = problem.design_point(&point.parameters)?;
    let ota_params = OtaParameters::from_design_point(&design_point);
    let nominal = problem.performance(&point.parameters)?;
    let circuit = build_open_loop_testbench(&ota_params, &config.testbench).ok()?;

    let sweep = config.sweep.clone();
    let run = montecarlo::run_parallel(
        &circuit,
        &config.variation,
        &config.monte_carlo,
        config.threads,
        move |sample| {
            measure_testbench(sample, &sweep).map(|perf| (perf.gain_db, perf.phase_margin_deg))
        },
    );
    if run.values.len() < 2 {
        return None;
    }
    let gains: Vec<f64> = run.values.iter().map(|v| v.0).collect();
    let pms: Vec<f64> = run.values.iter().map(|v| v.1).collect();
    let gain_summary = Summary::of(&gains)?;
    let pm_summary = Summary::of(&pms)?;
    Some(ParetoPointData {
        gain_db: nominal.gain_db,
        phase_margin_deg: nominal.phase_margin_deg,
        gain_delta_percent: gain_summary.variation_percent(config.sigma_level),
        pm_delta_percent: pm_summary.variation_percent(config.sigma_level),
        unity_gain_hz: nominal.unity_gain_hz,
        parameters: design_point,
    })
}

/// Runs the complete model-generation flow.
///
/// # Errors
///
/// Returns an error if the optimisation finds no feasible candidates, too few
/// Pareto points survive the variation analysis, or model construction fails.
pub fn generate_model(config: &FlowConfig) -> Result<FlowResult, FlowError> {
    let problem = OtaSizingProblem::new(config.testbench, config.sweep.clone());

    // Steps 1–2: netlist/objective generation + WBGA optimisation.
    let t0 = Instant::now();
    let optimization = Wbga::new(config.ga).run(&problem);
    let optimization_time = t0.elapsed();
    if optimization.archive.is_empty() {
        return Err(FlowError::NoFeasibleCandidates);
    }

    // Step 3: Pareto front extraction.
    let pareto = optimization.pareto_front();
    let selected = subsample_front(&pareto, config.max_pareto_points);

    // Step 4: Monte Carlo variation analysis per Pareto point.
    let t1 = Instant::now();
    let pareto_data: Vec<ParetoPointData> = selected
        .iter()
        .filter_map(|point| analyse_pareto_point(&problem, point, config))
        .collect();
    let monte_carlo_time = t1.elapsed();
    if pareto_data.len() < 3 {
        return Err(FlowError::InsufficientParetoData(pareto_data.len()));
    }

    // Step 5: combined table-model generation.
    let t2 = Instant::now();
    let model = CombinedOtaModel::from_pareto_data(pareto_data.clone(), config.sigma_level)?;
    let model_build_time = t2.elapsed();

    Ok(FlowResult {
        archive: optimization.archive.clone(),
        pareto,
        pareto_data,
        model,
        timings: FlowTimings {
            optimization: optimization_time,
            monte_carlo: monte_carlo_time,
            model_build: model_build_time,
        },
        optimization,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subsample_preserves_ends_and_order() {
        let front: Vec<Evaluation> = (0..50)
            .map(|i| Evaluation::new(vec![i as f64], vec![i as f64, 50.0 - i as f64]))
            .collect();
        let sub = subsample_front(&front, 10);
        assert_eq!(sub.len(), 10);
        assert_eq!(sub[0].objectives[0], 0.0);
        assert_eq!(sub[9].objectives[0], 49.0);
        assert!(sub.windows(2).all(|w| w[0].objectives[0] < w[1].objectives[0]));
        // Limits larger than the front return it unchanged.
        assert_eq!(subsample_front(&front, 100).len(), 50);
    }

    // The full reduced-scale flow is exercised by the workspace-level
    // integration tests (tests/full_flow.rs); unit tests here stay cheap.
    #[test]
    fn flow_error_display() {
        let e = FlowError::InsufficientParetoData(1);
        assert!(e.to_string().contains('1'));
        assert!(FlowError::NoFeasibleCandidates.to_string().contains("no feasible"));
    }
}
