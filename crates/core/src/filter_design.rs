//! Hierarchical filter design using the behavioural OTA model (paper §5).
//!
//! The application example of the paper: a 2nd-order low-pass (anti-aliasing)
//! filter is designed around the modelled OTA. The OTA is *selected* through
//! the combined model (specification → retargeted performance → design
//! parameters), the filter capacitors C1–C3 are then optimised with the same
//! WBGA machinery (30 individuals × 40 generations in the paper) against the
//! behavioural filter — never touching the transistor level — and the final
//! design is verified with a transistor-level Monte Carlo analysis.

use crate::config::FlowConfig;
use crate::flow::FlowError;
use ayb_behavioral::filter::{filter_sweep, simulate_macromodel_filter, FilterResponse};
use ayb_behavioral::{CombinedOtaModel, FilterSpec, ModelDesign, OtaBehavior, OtaSpec};
use ayb_circuit::filter::{
    build_filter_with_transistor_otas, FilterParameters, OtaMacroSpec, FILTER_OUTPUT,
};
use ayb_circuit::ota::OtaParameters;
use ayb_moo::{FnProblem, GaConfig, ObjectiveSpec, OptimizerConfig};
use ayb_process::{montecarlo, yield_estimate, MonteCarloConfig};
use ayb_sim::{ac_analysis, dc_operating_point, DcOptions, FrequencySweep};
use serde::{Deserialize, Serialize};

/// Outcome of the behavioural filter design flow.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FilterDesignResult {
    /// The OTA operating point selected from the combined model.
    pub ota_design: ModelDesign,
    /// The small-signal macromodel used for the OTAs inside the filter.
    pub ota_macro: OtaMacroSpec,
    /// Optimised capacitor values.
    pub capacitors: FilterParameters,
    /// Behavioural-filter response of the final design.
    pub response: FilterResponse,
    /// Specification margin of the final design in dB (positive = met).
    pub margin_db: f64,
    /// Number of behavioural filter evaluations spent by the optimiser.
    pub evaluations: usize,
}

impl FilterDesignResult {
    /// Returns `true` when the final behavioural design meets the template.
    pub fn meets_spec(&self, spec: &FilterSpec) -> bool {
        self.response.check(spec).all_met()
    }
}

/// Designs the filter capacitors against a [`FilterSpec`] using the
/// behavioural OTA selected from `model` for `ota_spec`.
///
/// `ga` controls the capacitor optimisation (the paper uses 30 × 40);
/// `c_load` is the load capacitance assumed when converting the OTA behaviour
/// into a macromodel.
///
/// # Errors
///
/// Returns an error if the OTA specification cannot be met by the model or no
/// feasible capacitor sizing is found.
pub fn design_filter(
    model: &CombinedOtaModel,
    ota_spec: &OtaSpec,
    filter_spec: &FilterSpec,
    ga: GaConfig,
    c_load: f64,
) -> Result<FilterDesignResult, FlowError> {
    // Step 1: select the OTA through the combined model (§5: "the performance
    // and variation model was used to select OTAs that met these
    // specifications taking into account their variations").
    let ota_design = model.design_for_spec(ota_spec).map_err(FlowError::Model)?;
    let behavior = OtaBehavior::new(
        ota_design.retarget.new_gain_db,
        ota_design.nominal_pm_deg,
        ota_design.predicted_unity_gain_hz,
    );
    let ota_macro = behavior.to_macro_spec(c_load);

    // Step 2: optimise C1–C3 against the behavioural filter.
    let parameter_set = FilterParameters::parameter_set();
    let sweep = filter_sweep();
    let spec = *filter_spec;
    let macro_spec = ota_macro;
    let problem = FnProblem::new(
        parameter_set.len(),
        vec![
            ObjectiveSpec::maximize("spec_margin_db"),
            ObjectiveSpec::minimize("total_capacitance"),
        ],
        move |genes: &[f64]| {
            let point = parameter_set.denormalize(genes).ok()?;
            let params = FilterParameters::from_design_point(&point);
            let response = simulate_macromodel_filter(&params, &macro_spec, &sweep).ok()?;
            let report = response.check(&spec);
            let total_c = params.c1 + params.c2 + params.c3;
            Some(vec![report.margin_db(&spec), total_c])
        },
    );
    // The capacitor sizing runs through the same `Optimizer` abstraction as
    // the OTA flow, so the two optimisation stages share one code path.
    let result = OptimizerConfig::Wbga(ga).build().run(&problem);

    // Candidate pool: every GA evaluation plus a family of analytically sized
    // Butterworth-style seeds (ideal design equations, §5). The analytic seeds
    // guarantee a sensible design even with very small GA budgets; the GA
    // refines beyond them when given a real budget.
    let mut candidates: Vec<(FilterParameters, f64, f64)> = Vec::new();
    let parameter_set = FilterParameters::parameter_set();
    for evaluation in &result.archive {
        if let Ok(point) = parameter_set.denormalize(&evaluation.parameters) {
            candidates.push((
                FilterParameters::from_design_point(&point),
                evaluation.objectives[0],
                evaluation.objectives[1],
            ));
        }
    }
    let f0_candidates = [
        1.2 * filter_spec.passband_edge_hz,
        1.5 * filter_spec.passband_edge_hz,
        1.8 * filter_spec.passband_edge_hz,
        2.2 * filter_spec.passband_edge_hz,
        2.8 * filter_spec.passband_edge_hz,
    ];
    for f0 in f0_candidates {
        let params = ayb_behavioral::filter::size_capacitors_for(
            f0,
            std::f64::consts::FRAC_1_SQRT_2,
            ota_macro.gm,
        );
        if let Ok(response) = simulate_macromodel_filter(&params, &ota_macro, &filter_sweep()) {
            let report = response.check(filter_spec);
            candidates.push((
                params,
                report.margin_db(filter_spec),
                params.c1 + params.c2 + params.c3,
            ));
        }
    }
    if candidates.is_empty() {
        return Err(FlowError::NoFeasibleCandidates);
    }

    // Step 3: pick the candidate — smallest total capacitance among those that
    // meet the template with margin; fall back to the largest margin.
    let best = candidates
        .iter()
        .filter(|c| c.1 > 0.0)
        .min_by(|a, b| a.2.partial_cmp(&b.2).unwrap_or(std::cmp::Ordering::Equal))
        .or_else(|| {
            candidates
                .iter()
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
        })
        .expect("candidate pool is non-empty");

    let capacitors = best.0;
    let response = simulate_macromodel_filter(&capacitors, &ota_macro, &filter_sweep())
        .map_err(|e| FlowError::Circuit(e.to_string()))?;
    let margin_db = response.check(filter_spec).margin_db(filter_spec);

    Ok(FilterDesignResult {
        ota_design,
        ota_macro,
        capacitors,
        response,
        margin_db,
        evaluations: result.evaluations,
    })
}

/// Transistor-level Monte Carlo yield of the completed filter design
/// (the paper's final 500-sample verification in §5).
///
/// Every OTA in the filter is expanded to its ten-transistor implementation
/// using the design parameters the model selected; each Monte Carlo sample
/// perturbs the process and mismatch and re-checks the filter template.
///
/// Returns `None` when the nominal filter cannot be simulated.
pub fn verify_filter_yield(
    design: &FilterDesignResult,
    filter_spec: &FilterSpec,
    config: &FlowConfig,
    samples: usize,
    seed: u64,
) -> Option<crate::verify::YieldReport> {
    let ota_params = OtaParameters::from_design_point(&design.ota_design.parameters);
    let circuit = build_filter_with_transistor_otas(
        &design.capacitors,
        &ota_params,
        config.testbench.vdd,
        config.testbench.vcm,
    )
    .ok()?;
    let sweep = filter_sweep();
    let spec = *filter_spec;
    let mc = MonteCarloConfig::new(samples, seed);
    let run = montecarlo::run_parallel(
        &circuit,
        &config.variation,
        &mc,
        config.threads,
        move |sample| {
            let op = dc_operating_point(sample, &DcOptions::new()).ok()?;
            let ac = ac_analysis(sample, &op, &sweep).ok()?;
            let response = ac.response_by_name(sample, FILTER_OUTPUT)?;
            let report = spec.evaluate(ac.frequencies(), &response);
            Some(report.all_met())
        },
    );
    let yield_fraction = yield_estimate(&run.values, |&met| met)?;
    Some(crate::verify::YieldReport {
        yield_fraction,
        samples: run.values.len(),
        failed_samples: run.failed_samples,
    })
}

/// Characterises the transistor-level filter once (no Monte Carlo); used by
/// the conventional-approach comparison and the Figure 11 bench.
///
/// Returns the frequencies, response and spec report.
pub fn simulate_transistor_filter(
    capacitors: &FilterParameters,
    ota_params: &OtaParameters,
    filter_spec: &FilterSpec,
    config: &FlowConfig,
    sweep: &FrequencySweep,
) -> Option<(FilterResponse, ayb_behavioral::FilterSpecReport)> {
    let circuit = build_filter_with_transistor_otas(
        capacitors,
        ota_params,
        config.testbench.vdd,
        config.testbench.vcm,
    )
    .ok()?;
    let op = dc_operating_point(&circuit, &DcOptions::new()).ok()?;
    let ac = ac_analysis(&circuit, &op, sweep).ok()?;
    let response = ac.response_by_name(&circuit, FILTER_OUTPUT)?;
    let report = filter_spec.evaluate(ac.frequencies(), &response);
    Some((
        FilterResponse {
            frequencies: ac.frequencies().to_vec(),
            response,
        },
        report,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ayb_behavioral::ParetoPointData;
    use ayb_circuit::DesignPoint;

    /// A synthetic combined model good enough to drive the filter design.
    fn synthetic_model() -> CombinedOtaModel {
        let points: Vec<ParetoPointData> = (0..15)
            .map(|i| ParetoPointData {
                gain_db: 48.5 + i as f64 * 0.3,
                phase_margin_deg: 78.0 - i as f64 * 0.5,
                gain_delta_percent: 0.6 - i as f64 * 0.01,
                pm_delta_percent: 1.4 + i as f64 * 0.02,
                unity_gain_hz: 8e6 + i as f64 * 3e5,
                parameters: DesignPoint::new()
                    .with("w1", 20e-6 + i as f64 * 2e-6)
                    .with("l1", 1.1e-6)
                    .with("w2", 25e-6)
                    .with("l2", 1.0e-6)
                    .with("w3", 20e-6)
                    .with("l3", 1.0e-6)
                    .with("w4", 14e-6)
                    .with("l4", 1.0e-6),
            })
            .collect();
        CombinedOtaModel::from_pareto_data(points, 3.0).unwrap()
    }

    #[test]
    fn filter_design_meets_template_with_behavioural_ota() {
        let model = synthetic_model();
        let mut ga = GaConfig::small_test();
        ga.population_size = 14;
        ga.generations = 10;
        let result = design_filter(
            &model,
            &OtaSpec::paper_filter_application(),
            &FilterSpec::anti_aliasing_1mhz(),
            ga,
            5e-12,
        )
        .expect("filter design succeeds");
        assert!(result.margin_db > 0.0, "margin {}", result.margin_db);
        assert!(result.meets_spec(&FilterSpec::anti_aliasing_1mhz()));
        assert!(result.capacitors.c1 > 0.0 && result.capacitors.c2 > 0.0);
        assert!(result.evaluations > 0);
        // The selected OTA was retargeted above the raw 50 dB requirement.
        assert!(result.ota_design.retarget.new_gain_db > 50.0);
    }

    #[test]
    fn impossible_ota_spec_is_propagated() {
        let model = synthetic_model();
        let err = design_filter(
            &model,
            &OtaSpec::new(70.0, 85.0),
            &FilterSpec::anti_aliasing_1mhz(),
            GaConfig::small_test(),
            5e-12,
        )
        .unwrap_err();
        assert!(matches!(err, FlowError::Model(_)));
    }
}
