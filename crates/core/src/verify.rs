//! Transistor-level verification of model predictions (paper §4.4, Tables 3–4).
//!
//! Two checks close the loop between the behavioural model and the transistor
//! level, exactly as the paper does:
//!
//! * **Accuracy** — the design parameters interpolated by the model are
//!   simulated at transistor level and the achieved gain / phase margin are
//!   compared with the model's prediction (Table 4, ≈1 % error in the paper).
//! * **Yield** — a Monte Carlo analysis (500 samples in the paper) of the
//!   chosen design verifies that the retargeted performance indeed meets the
//!   original specification over process variation (the 100 % yield claim).

use crate::config::FlowConfig;
use crate::ota_problem::{evaluate_ota, measure_testbench, OtaPerformance};
use ayb_behavioral::{ModelDesign, OtaSpec};
use ayb_circuit::ota::{build_open_loop_testbench, OtaParameters};
use ayb_circuit::DesignPoint;
use ayb_process::{montecarlo, yield_estimate, MonteCarloConfig};
use serde::{Deserialize, Serialize};

/// Comparison between model prediction and transistor-level simulation (Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccuracyReport {
    /// Gain predicted by the behavioural model in dB.
    pub model_gain_db: f64,
    /// Phase margin predicted by the behavioural model in degrees.
    pub model_pm_deg: f64,
    /// Gain measured by transistor-level simulation in dB.
    pub transistor_gain_db: f64,
    /// Phase margin measured by transistor-level simulation in degrees.
    pub transistor_pm_deg: f64,
}

impl AccuracyReport {
    /// Relative gain error in percent (Table 4's "% error" column).
    pub fn gain_error_percent(&self) -> f64 {
        100.0 * (self.transistor_gain_db - self.model_gain_db).abs() / self.transistor_gain_db.abs()
    }

    /// Relative phase-margin error in percent.
    pub fn pm_error_percent(&self) -> f64 {
        100.0 * (self.transistor_pm_deg - self.model_pm_deg).abs() / self.transistor_pm_deg.abs()
    }
}

/// Result of a Monte Carlo yield verification.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct YieldReport {
    /// Fraction of samples meeting the specification (0–1).
    pub yield_fraction: f64,
    /// Number of successfully simulated samples.
    pub samples: usize,
    /// Number of samples whose simulation failed.
    pub failed_samples: usize,
}

impl YieldReport {
    /// Yield in percent.
    pub fn yield_percent(&self) -> f64 {
        self.yield_fraction * 100.0
    }
}

/// Simulates the design parameters chosen by the model at transistor level and
/// compares against the model's own prediction (Table 4).
///
/// Returns `None` if the transistor-level simulation fails.
pub fn verify_accuracy(
    design: &ModelDesign,
    config: &FlowConfig,
) -> Option<(AccuracyReport, OtaPerformance)> {
    let params = OtaParameters::from_design_point(&design.parameters);
    let transistor = evaluate_ota(&params, &config.testbench, &config.sweep)?;
    let report = AccuracyReport {
        model_gain_db: design.retarget.new_gain_db,
        model_pm_deg: design.nominal_pm_deg,
        transistor_gain_db: transistor.gain_db,
        transistor_pm_deg: transistor.phase_margin_deg,
    };
    Some((report, transistor))
}

/// Monte Carlo yield of an OTA design point against a specification
/// (the paper's 500-sample verification).
///
/// Returns `None` if the nominal circuit cannot be constructed or no Monte
/// Carlo sample simulates successfully.
pub fn verify_ota_yield(
    design_point: &DesignPoint,
    spec: &OtaSpec,
    config: &FlowConfig,
    samples: usize,
    seed: u64,
) -> Option<YieldReport> {
    let params = OtaParameters::from_design_point(design_point);
    let circuit = build_open_loop_testbench(&params, &config.testbench).ok()?;
    let mc = MonteCarloConfig::new(samples, seed);
    let sweep = config.sweep.clone();
    let run = montecarlo::run_parallel(
        &circuit,
        &config.variation,
        &mc,
        config.threads,
        move |sample| measure_testbench(sample, &sweep).map(|p| (p.gain_db, p.phase_margin_deg)),
    );
    let yield_fraction = yield_estimate(&run.values, |&(gain, pm)| spec.is_met(gain, pm))?;
    Some(YieldReport {
        yield_fraction,
        samples: run.values.len(),
        failed_samples: run.failed_samples,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_report_percent_errors() {
        let report = AccuracyReport {
            model_gain_db: 50.26,
            model_pm_deg: 75.27,
            transistor_gain_db: 50.73,
            transistor_pm_deg: 76.06,
        };
        // The paper's Table 4 reports 0.93 % and 1.03 % for these values.
        assert!((report.gain_error_percent() - 0.93).abs() < 0.02);
        assert!((report.pm_error_percent() - 1.04).abs() < 0.02);
    }

    #[test]
    fn yield_report_percent() {
        let r = YieldReport {
            yield_fraction: 1.0,
            samples: 500,
            failed_samples: 0,
        };
        assert_eq!(r.yield_percent(), 100.0);
    }

    #[test]
    fn verify_ota_yield_runs_on_reduced_settings() {
        let mut config = crate::config::FlowConfig::reduced();
        config.sweep = ayb_sim::FrequencySweep::logarithmic(10.0, 1e9, 4);
        // A relaxed spec that the nominal OTA easily meets should give high yield.
        let point = OtaParameters::nominal().to_design_point();
        let spec = OtaSpec::new(30.0, 40.0);
        let report = verify_ota_yield(&point, &spec, &config, 8, 3).expect("yield computed");
        assert!(report.samples > 0);
        assert!(
            report.yield_fraction > 0.5,
            "yield {}",
            report.yield_fraction
        );
        // An impossible spec gives zero yield.
        let impossible = OtaSpec::new(90.0, 89.0);
        let zero = verify_ota_yield(&point, &impossible, &config, 8, 3).unwrap();
        assert_eq!(zero.yield_fraction, 0.0);
    }
}
