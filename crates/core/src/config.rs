//! Flow configuration.

use ayb_circuit::ota::OtaTestbenchConfig;
use ayb_moo::GaConfig;
use ayb_process::{MonteCarloConfig, ProcessVariation};
use ayb_sim::{FrequencySweep, SolverKind};
use serde::{Deserialize, Serialize};

/// Configuration of the complete model-generation flow (paper §3).
///
/// `Deserialize` is implemented by hand so that manifests written before the
/// sharding fields existed still load: absent `sharded`/`shard_size` fields
/// default to unsharded evaluation instead of failing the whole store.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FlowConfig {
    /// Genetic-algorithm settings for the OTA sizing optimisation (§3.2).
    pub ga: GaConfig,
    /// Monte Carlo settings applied to every Pareto point (§3.4).
    pub monte_carlo: MonteCarloConfig,
    /// Statistical process model.
    pub variation: ProcessVariation,
    /// Test-bench conditions (supply, common mode, load, servo loop).
    pub testbench: OtaTestbenchConfig,
    /// Frequency sweep used for every AC characterisation.
    pub sweep: FrequencySweep,
    /// k·σ level used to convert Monte Carlo spreads into the ±Δ% columns of
    /// Table 2 (3.0 = conventional process extremes).
    pub sigma_level: f64,
    /// Upper bound on the number of Pareto points taken through Monte Carlo
    /// analysis (the paper analyses all 1022; scaled-down runs cap this).
    pub max_pareto_points: usize,
    /// Number of worker threads for circuit evaluation: used both by the
    /// optimiser's batch candidate evaluation (via
    /// `OtaSizingProblem::with_threads`) and by the per-point Monte Carlo
    /// stage. Thread count never changes results, only wall-clock time.
    pub threads: usize,
    /// When `true` *and* the flow runs against a store, the flow's heavy
    /// stages go through the store's shard data plane: optimiser populations
    /// split into [`FlowConfig::shard_size`]-candidate evaluation shards,
    /// and the Monte Carlo variation stage (stage 4) publishes one task per
    /// analysed Pareto point — either of which any `ayb serve` worker
    /// process sharing the store, on this machine or another host, may claim
    /// and service. Sharding never changes results (shards reassemble in
    /// index order; variation points carry per-point derived seeds), only
    /// where the work is computed; without a store the flag falls back to
    /// local execution.
    pub sharded: bool,
    /// Maximum number of candidates per shard when [`FlowConfig::sharded`]
    /// is set (minimum 1; batches at most one shard long are evaluated
    /// locally).
    pub shard_size: usize,
    /// Where a sharded flow's data plane lives. `None` (the default) keeps
    /// shard epochs on the run store's filesystem, serviced by workers that
    /// mount the same store. `Some("tcp://host:port")` routes them through
    /// an `ayb coordinate` coordinator instead, so workers need network
    /// reachability but **no shared filesystem**. The transport never
    /// changes results — only where shard payloads travel; an unreachable
    /// coordinator degrades (noisily, via
    /// [`FlowObserver::on_transport_degraded`](crate::FlowObserver)) to
    /// local evaluation.
    pub transport: Option<String>,
    /// Linear-solver backend used by every DC operating point and AC sweep
    /// in the flow. [`SolverKind::Dense`] is the historical default;
    /// [`SolverKind::Sparse`] routes solves through the sparse LU. Recorded
    /// in the manifest so resumed runs keep using the backend they started
    /// with. Node voltages agree between backends to solver tolerance
    /// (≪ 1e-9); each backend is individually bit-deterministic.
    pub solver: SolverKind,
    /// Number of Monte Carlo variation points carried per shard task when
    /// the sharded variation stage runs (minimum 1 = one point per task,
    /// the historical shape). Larger batches amortise task claim/commit
    /// overhead; per-point checkpoints are preserved, so batching never
    /// changes results or resumability.
    pub variation_batch: usize,
    /// Quantization step of the in-process evaluation cache
    /// ([`ayb_moo::CachedProblem`]). `None` (the default) disables the
    /// cache; `Some(step)` memoises evaluations keyed by the parameter
    /// vector quantized at `step`, serving a hit only on bit-identical raw
    /// parameters — so the cache skips repeated solves without ever
    /// changing results or the determinism digest. Hits are reported in
    /// [`FlowTimings::eval_cache_hits`](crate::FlowTimings).
    pub eval_cache: Option<f64>,
}

impl FlowConfig {
    /// Full paper-scale settings: 100 × 100 WBGA (10 000 simulations),
    /// 200-sample Monte Carlo on every Pareto point (§4, Table 5).
    pub fn paper_scale() -> Self {
        FlowConfig {
            ga: GaConfig::paper_ota(),
            monte_carlo: MonteCarloConfig::new(200, 2008),
            variation: ProcessVariation::generic_035um(),
            testbench: OtaTestbenchConfig::new(),
            sweep: FrequencySweep::logarithmic(10.0, 1e9, 8),
            sigma_level: 3.0,
            max_pareto_points: usize::MAX,
            threads: 4,
            sharded: false,
            shard_size: 25,
            transport: None,
            solver: SolverKind::Dense,
            variation_batch: 8,
            eval_cache: None,
        }
    }

    /// Reduced settings for unit tests and examples: small population, few
    /// Monte Carlo samples, capped Pareto set. Produces the same artefacts in
    /// seconds instead of hours.
    pub fn reduced() -> Self {
        FlowConfig {
            ga: GaConfig {
                population_size: 14,
                generations: 8,
                crossover_rate: 0.9,
                mutation_rate: 0.12,
                mutation_sigma: 0.12,
                tournament_size: 2,
                elitism: 1,
                seed: 2008,
                early_stop: None,
            },
            monte_carlo: MonteCarloConfig::new(16, 77),
            variation: ProcessVariation::generic_035um(),
            testbench: OtaTestbenchConfig::new(),
            sweep: FrequencySweep::logarithmic(10.0, 1e9, 5),
            sigma_level: 3.0,
            max_pareto_points: 12,
            threads: 2,
            sharded: false,
            shard_size: 4,
            transport: None,
            solver: SolverKind::Dense,
            variation_batch: 3,
            eval_cache: None,
        }
    }

    /// Intermediate settings used by the report binaries when `--full` is not
    /// requested: large enough to show the paper's trends, small enough to run
    /// in a couple of minutes.
    pub fn demo_scale() -> Self {
        FlowConfig {
            ga: GaConfig {
                population_size: 40,
                generations: 25,
                ..GaConfig::paper_ota()
            },
            monte_carlo: MonteCarloConfig::new(50, 0xa5a5),
            max_pareto_points: 60,
            threads: 4,
            shard_size: 10,
            variation_batch: 4,
            ..FlowConfig::reduced()
        }
    }

    /// Returns a copy with a different optimisation seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.ga.seed = seed;
        self
    }
}

impl Default for FlowConfig {
    fn default() -> Self {
        FlowConfig::paper_scale()
    }
}

impl Deserialize for FlowConfig {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        // The sharding knobs postdate the first durable stores; treat their
        // absence as "unsharded" so pre-existing manifests stay resumable.
        let sharded = match value.get("sharded") {
            Some(field) => Deserialize::from_value(field)?,
            None => false,
        };
        let shard_size = match value.get("shard_size") {
            Some(field) => Deserialize::from_value(field)?,
            None => 25,
        };
        // The transport selector postdates the sharding knobs; absent (or
        // explicit null) means the disk data plane, as before.
        let transport = match value.get("transport") {
            Some(field) => Deserialize::from_value(field)?,
            None => None,
        };
        // The solver backend and variation batching postdate the transport
        // selector; absent fields mean the historical dense solver with one
        // variation point per shard task.
        let solver = match value.get("solver") {
            Some(field) => Deserialize::from_value(field)?,
            None => SolverKind::Dense,
        };
        let variation_batch = match value.get("variation_batch") {
            Some(field) => Deserialize::from_value(field)?,
            None => 1,
        };
        // The evaluation cache postdates everything above; absent (or
        // explicit null) means "cache off", the historical behaviour.
        let eval_cache = match value.get("eval_cache") {
            Some(field) => Deserialize::from_value(field)?,
            None => None,
        };
        Ok(FlowConfig {
            ga: Deserialize::from_value(serde::__field(value, "ga")?)?,
            monte_carlo: Deserialize::from_value(serde::__field(value, "monte_carlo")?)?,
            variation: Deserialize::from_value(serde::__field(value, "variation")?)?,
            testbench: Deserialize::from_value(serde::__field(value, "testbench")?)?,
            sweep: Deserialize::from_value(serde::__field(value, "sweep")?)?,
            sigma_level: Deserialize::from_value(serde::__field(value, "sigma_level")?)?,
            max_pareto_points: Deserialize::from_value(serde::__field(
                value,
                "max_pareto_points",
            )?)?,
            threads: Deserialize::from_value(serde::__field(value, "threads")?)?,
            sharded,
            shard_size,
            transport,
            solver,
            variation_batch,
            eval_cache,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_matches_reported_budget() {
        let cfg = FlowConfig::paper_scale();
        assert_eq!(cfg.ga.evaluation_budget(), 10_000);
        assert_eq!(cfg.monte_carlo.samples, 200);
        assert_eq!(cfg.sigma_level, 3.0);
    }

    #[test]
    fn reduced_is_small() {
        let cfg = FlowConfig::reduced();
        assert!(cfg.ga.evaluation_budget() <= 200);
        assert!(cfg.monte_carlo.samples <= 32);
        assert!(cfg.max_pareto_points <= 16);
    }

    #[test]
    fn with_seed_changes_ga_seed_only() {
        let a = FlowConfig::reduced();
        let b = a.clone().with_seed(99);
        assert_ne!(a.ga.seed, b.ga.seed);
        assert_eq!(a.monte_carlo.seed, b.monte_carlo.seed);
    }

    #[test]
    fn deserializes_pre_sharding_manifest_json() {
        // A config serialized before the sharding fields existed (simulated
        // by stripping them from current JSON) must still load, defaulting
        // to unsharded evaluation — old stores stay resumable.
        let mut config = FlowConfig::reduced();
        config.sharded = true;
        config.shard_size = 7;
        config.transport = Some("tcp://127.0.0.1:4710".to_string());
        config.solver = SolverKind::Sparse;
        config.variation_batch = 5;
        config.eval_cache = Some(1e-9);
        let serde::Value::Object(mut pairs) = serde::Serialize::to_value(&config) else {
            panic!("FlowConfig serializes to an object");
        };
        pairs.retain(|(key, _)| {
            key != "sharded"
                && key != "shard_size"
                && key != "transport"
                && key != "solver"
                && key != "variation_batch"
                && key != "eval_cache"
        });
        let legacy = serde::Value::Object(pairs);
        let back: FlowConfig = serde::Deserialize::from_value(&legacy).expect("legacy loads");
        assert!(!back.sharded);
        assert!(back.shard_size >= 1);
        assert_eq!(back.transport, None);
        assert_eq!(back.solver, SolverKind::Dense);
        assert_eq!(back.variation_batch, 1);
        assert_eq!(back.eval_cache, None);
        assert_eq!(back.ga, config.ga);
        assert_eq!(back.threads, config.threads);

        // And the current shape round-trips unchanged.
        let roundtrip: FlowConfig =
            serde::Deserialize::from_value(&serde::Serialize::to_value(&config)).unwrap();
        assert_eq!(roundtrip, config);
    }
}
