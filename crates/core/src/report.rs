//! Text rendering of the paper's tables and figure data.
//!
//! Every table of the evaluation section (and the data series behind every
//! figure) can be rendered as plain text so the report binaries in
//! `ayb-bench` regenerate the same artefacts the paper presents.

use crate::config::FlowConfig;
use crate::flow::{FlowResult, FlowSummary};
use crate::verify::AccuracyReport;
use ayb_behavioral::{ParetoPointData, RetargetedPerformance};
use ayb_circuit::ota::OtaParameters;
use ayb_moo::Evaluation;
use std::fmt::Write as _;

/// Renders Table 1: the designable parameter ranges.
pub fn render_table1() -> String {
    let set = OtaParameters::parameter_set();
    let mut out = String::new();
    let _ = writeln!(out, "Table 1. Design parameters");
    let _ = writeln!(
        out,
        "{:<22} {:>12} {:>12}",
        "Design Parameter", "Min", "Max"
    );
    let devices = [
        ("w1 (M5,M4)", "l1 (M5,M4)"),
        ("w2 (M7,M9)", "l2 (M7,M9)"),
        ("w3 (M10,M8)", "l3 (M10,M8)"),
        ("w4 (M3,M6)", "l4 (M3,M6)"),
    ];
    for (i, (wname, lname)) in devices.iter().enumerate() {
        let w = set.get(2 * i).expect("parameter exists");
        let l = set.get(2 * i + 1).expect("parameter exists");
        let _ = writeln!(
            out,
            "{:<22} {:>10.2}um {:>10.2}um",
            wname,
            w.lower * 1e6,
            w.upper * 1e6
        );
        let _ = writeln!(
            out,
            "{:<22} {:>10.2}um {:>10.2}um",
            lname,
            l.lower * 1e6,
            l.upper * 1e6
        );
    }
    let _ = writeln!(out, "{:<22} {:>12} {:>12}", "Wg1 (Gain weight)", "0", "1");
    let _ = writeln!(out, "{:<22} {:>12} {:>12}", "Wg2 (Phase weight)", "0", "1");
    out
}

/// Renders the data behind Figure 7: every evaluated individual plus the
/// Pareto front, as two CSV blocks (gain dB, phase margin deg).
pub fn render_fig7_data(archive: &[Evaluation], front: &[Evaluation]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# Figure 7: gain/phase-margin of all GA individuals");
    let _ = writeln!(out, "# individuals: {}", archive.len());
    let _ = writeln!(out, "gain_db,phase_margin_deg,on_pareto_front");
    for e in archive {
        let on_front = front.iter().any(|f| f.objectives == e.objectives);
        let _ = writeln!(
            out,
            "{:.4},{:.4},{}",
            e.objectives[0],
            e.objectives[1],
            if on_front { 1 } else { 0 }
        );
    }
    out
}

/// Renders Table 2: performance and variation values of selected Pareto designs.
pub fn render_table2(points: &[ParetoPointData]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 2. Performance and variation values");
    let _ = writeln!(
        out,
        "{:>6} {:>10} {:>10} {:>10} {:>10}",
        "Design", "Gain(dB)", "dGain(%)", "PM(deg)", "dPM(%)"
    );
    for (i, p) in points.iter().enumerate() {
        let _ = writeln!(
            out,
            "{:>6} {:>10.2} {:>10.2} {:>10.1} {:>10.2}",
            i + 1,
            p.gain_db,
            p.gain_delta_percent,
            p.phase_margin_deg,
            p.pm_delta_percent
        );
    }
    out
}

/// Renders Table 3: the interpolation / retargeting example.
pub fn render_table3(retarget: &RetargetedPerformance) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 3. Interpolation example");
    let _ = writeln!(
        out,
        "{:<14} {:>20} {:>12} {:>18}",
        "Performance", "Required Performance", "Variation", "New Performance"
    );
    let _ = writeln!(
        out,
        "{:<14} {:>17} dB {:>10.2}% {:>15.2} dB",
        "Gain",
        format!("> {:.0}", retarget.required_gain_db),
        retarget.gain_variation_percent,
        retarget.new_gain_db
    );
    let _ = writeln!(
        out,
        "{:<14} {:>16} deg {:>10.2}% {:>14.2} deg",
        "Phase Margin",
        format!("> {:.0}", retarget.required_pm_deg),
        retarget.pm_variation_percent,
        retarget.new_pm_deg
    );
    out
}

/// Renders Table 4: transistor-level vs behavioural-model comparison.
pub fn render_table4(report: &AccuracyReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 4. Performance comparison");
    let _ = writeln!(
        out,
        "{:<20} {:>16} {:>16} {:>10}",
        "Performance", "Transistor Model", "Verilog-A Model", "% error"
    );
    let _ = writeln!(
        out,
        "{:<20} {:>16.2} {:>16.2} {:>9.2}%",
        "Gain",
        report.transistor_gain_db,
        report.model_gain_db,
        report.gain_error_percent()
    );
    let _ = writeln!(
        out,
        "{:<20} {:>16.2} {:>16.2} {:>9.2}%",
        "Phase Margin",
        report.transistor_pm_deg,
        report.model_pm_deg,
        report.pm_error_percent()
    );
    out
}

/// Renders Table 5: the model-development parameter summary.
pub fn render_table5(summary: &FlowSummary) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 5. Design parameter summary");
    let _ = writeln!(out, "{:<36} {:>14}", "Parameters:", "Values:");
    let _ = writeln!(out, "{:<36} {:>14}", "No. Generations", summary.generations);
    let _ = writeln!(
        out,
        "{:<36} {:>14}",
        "Evaluation Samples", summary.evaluation_samples
    );
    let _ = writeln!(out, "{:<36} {:>14}", "Pareto Points", summary.pareto_points);
    let _ = writeln!(
        out,
        "{:<36} {:>14}",
        "Pareto Points analysed (MC)", summary.analysed_pareto_points
    );
    let _ = writeln!(
        out,
        "{:<36} {:>14}",
        "MC samples per point", summary.mc_samples_per_point
    );
    let _ = writeln!(
        out,
        "{:<36} {:>13.1}s",
        "CPU Time (this machine)", summary.cpu_time_seconds
    );
    let _ = writeln!(
        out,
        "{:<36} {:>13.1}s",
        "MC analysis work (all hosts)", summary.mc_work_seconds
    );
    out
}

/// Renders the frequency/response series behind Figure 8 or Figure 11 as CSV.
pub fn render_response_csv(
    header: &str,
    frequencies: &[f64],
    series: &[(&str, Vec<f64>)],
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {header}");
    let names: Vec<&str> = series.iter().map(|(n, _)| *n).collect();
    let _ = writeln!(out, "frequency_hz,{}", names.join(","));
    for (i, &f) in frequencies.iter().enumerate() {
        let values: Vec<String> = series.iter().map(|(_, v)| format!("{:.4}", v[i])).collect();
        let _ = writeln!(out, "{:.4e},{}", f, values.join(","));
    }
    out
}

/// Renders a complete run report (used by `table5_summary` and the quickstart
/// example).
pub fn render_flow_report(result: &FlowResult, config: &FlowConfig) -> String {
    let mut out = String::new();
    out.push_str(&render_table1());
    out.push('\n');
    out.push_str(&render_table2(&result.pareto_data));
    out.push('\n');
    out.push_str(&render_table5(&result.summary(config)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ayb_circuit::DesignPoint;

    fn points() -> Vec<ParetoPointData> {
        vec![
            ParetoPointData {
                gain_db: 49.78,
                phase_margin_deg: 76.3,
                gain_delta_percent: 0.52,
                pm_delta_percent: 1.50,
                unity_gain_hz: 9e6,
                parameters: DesignPoint::new().with("w1", 20e-6),
            },
            ParetoPointData {
                gain_db: 51.62,
                phase_margin_deg: 73.2,
                gain_delta_percent: 0.42,
                pm_delta_percent: 1.68,
                unity_gain_hz: 11e6,
                parameters: DesignPoint::new().with("w1", 40e-6),
            },
        ]
    }

    #[test]
    fn table1_lists_all_eight_parameters_and_weights() {
        let text = render_table1();
        for name in ["w1", "l1", "w2", "l2", "w3", "l3", "w4", "l4", "Wg1", "Wg2"] {
            assert!(text.contains(name), "missing {name} in:\n{text}");
        }
        assert!(text.contains("0.35"));
        assert!(text.contains("60.00"));
    }

    #[test]
    fn table2_contains_paper_style_rows() {
        let text = render_table2(&points());
        assert!(text.contains("49.78"));
        assert!(text.contains("0.52"));
        assert!(text.contains("73.2"));
    }

    #[test]
    fn table3_reproduces_retargeting_layout() {
        let text = render_table3(&RetargetedPerformance {
            required_gain_db: 50.0,
            required_pm_deg: 74.0,
            gain_variation_percent: 0.51,
            pm_variation_percent: 1.71,
            new_gain_db: 50.26,
            new_pm_deg: 75.27,
        });
        assert!(text.contains("50.26"));
        assert!(text.contains("75.27"));
        assert!(text.contains("> 50"));
    }

    #[test]
    fn table4_and_5_render() {
        let t4 = render_table4(&AccuracyReport {
            model_gain_db: 50.26,
            model_pm_deg: 75.27,
            transistor_gain_db: 50.73,
            transistor_pm_deg: 76.06,
        });
        assert!(t4.contains("0.93%") || t4.contains("0.92%"));
        let t5 = render_table5(&FlowSummary {
            generations: 100,
            evaluation_samples: 10_000,
            pareto_points: 1022,
            analysed_pareto_points: 1022,
            mc_samples_per_point: 200,
            cpu_time_seconds: 14_400.0,
            mc_work_seconds: 13_200.0,
        });
        assert!(t5.contains("10000"));
        assert!(t5.contains("1022"));
        assert!(t5.contains("13200.0s"), "work column renders: {t5}");
    }

    #[test]
    fn figure_data_renderers_produce_csv() {
        let archive = vec![
            Evaluation::new(vec![0.1], vec![50.0, 75.0]),
            Evaluation::new(vec![0.2], vec![51.0, 74.0]),
        ];
        let front = vec![archive[1].clone()];
        let text = render_fig7_data(&archive, &front);
        assert!(text.lines().count() >= 5);
        assert!(text.contains("51.0000,74.0000,1"));

        let csv = render_response_csv(
            "Figure 8",
            &[1.0, 10.0],
            &[
                ("transistor_db", vec![50.0, 49.9]),
                ("model_db", vec![50.1, 50.0]),
            ],
        );
        assert!(csv.contains("frequency_hz,transistor_db,model_db"));
        assert!(csv.lines().count() == 4);
    }
}
