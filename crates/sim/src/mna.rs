//! Modified nodal analysis (MNA) unknown layout.
//!
//! The MNA unknown vector is `[v_1 … v_N, i_b1 … i_bM]` where `v_k` are the
//! non-ground node voltages (node index `k` maps to row `k − 1`) and `i_bj`
//! are branch currents of devices that need them (voltage sources and VCVS
//! elements).

use ayb_circuit::{Circuit, NodeId};
use std::collections::HashMap;

/// Mapping from circuit nodes / branches to MNA matrix rows.
#[derive(Debug, Clone)]
pub struct MnaLayout {
    node_count: usize,
    branch_rows: HashMap<String, usize>,
    size: usize,
    row_labels: Vec<String>,
}

impl MnaLayout {
    /// Builds the layout for a circuit.
    pub fn new(circuit: &Circuit) -> Self {
        let node_count = circuit.nodes().unknown_count();
        let mut row_labels = vec![String::new(); node_count];
        for node in circuit.nodes().iter() {
            if !node.is_ground() {
                row_labels[node.index() - 1] = format!("node `{}`", circuit.nodes().name(node));
            }
        }
        let mut branch_rows = HashMap::new();
        let mut next = node_count;
        for inst in circuit.instances() {
            if inst.device.needs_branch_current() {
                branch_rows.insert(inst.name.clone(), next);
                row_labels.push(format!("branch current of `{}`", inst.name));
                next += 1;
            }
        }
        MnaLayout {
            node_count,
            branch_rows,
            size: next,
            row_labels,
        }
    }

    /// Total number of unknowns.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Number of non-ground nodes.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Matrix row of a node, or `None` for ground.
    pub fn node_row(&self, node: NodeId) -> Option<usize> {
        if node.is_ground() {
            None
        } else {
            Some(node.index() - 1)
        }
    }

    /// Matrix row of the branch current belonging to a named instance.
    pub fn branch_row(&self, instance: &str) -> Option<usize> {
        self.branch_rows.get(instance).copied()
    }

    /// Node voltage from an MNA solution vector (0.0 for ground).
    pub fn voltage_of(&self, solution: &[f64], node: NodeId) -> f64 {
        match self.node_row(node) {
            Some(row) => solution[row],
            None => 0.0,
        }
    }

    /// Human-readable description of the unknown behind a matrix row, e.g.
    /// ``node `out` `` or ``branch current of `v1` `` — used to name the
    /// offending unknown when elimination finds a singular pivot.
    pub fn row_label(&self, row: usize) -> Option<&str> {
        self.row_labels.get(row).map(String::as_str)
    }

    /// Attaches this layout's row label to a
    /// [`SimError::SingularMatrix`](crate::error::SimError::SingularMatrix),
    /// leaving any other error untouched.
    pub fn describe_singular(&self, error: crate::error::SimError) -> crate::error::SimError {
        match error {
            crate::error::SimError::SingularMatrix {
                pivot,
                unknown: None,
            } => crate::error::SimError::SingularMatrix {
                pivot,
                unknown: self.row_label(pivot).map(str::to_string),
            },
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ayb_circuit::Circuit;

    #[test]
    fn layout_assigns_rows_for_nodes_then_branches() {
        let mut ckt = Circuit::new("t");
        let a = ckt.node("a");
        let b = ckt.node("b");
        let gnd = ckt.gnd();
        ckt.add_vsource("v1", a, gnd, 1.0).unwrap();
        ckt.add_resistor("r1", a, b, 1e3).unwrap();
        ckt.add_resistor("r2", b, gnd, 1e3).unwrap();
        ckt.add_vcvs("e1", b, gnd, a, gnd, 2.0).unwrap();
        let layout = MnaLayout::new(&ckt);
        assert_eq!(layout.node_count(), 2);
        assert_eq!(layout.size(), 4);
        assert_eq!(layout.node_row(a), Some(0));
        assert_eq!(layout.node_row(b), Some(1));
        assert_eq!(layout.node_row(gnd), None);
        assert_eq!(layout.branch_row("v1"), Some(2));
        assert_eq!(layout.branch_row("e1"), Some(3));
        assert_eq!(layout.branch_row("r1"), None);
    }

    #[test]
    fn row_labels_name_nodes_and_branches() {
        let mut ckt = Circuit::new("t");
        let a = ckt.node("a");
        let b = ckt.node("out");
        let gnd = ckt.gnd();
        ckt.add_vsource("v1", a, gnd, 1.0).unwrap();
        ckt.add_resistor("r1", a, b, 1e3).unwrap();
        ckt.add_resistor("r2", b, gnd, 1e3).unwrap();
        let layout = MnaLayout::new(&ckt);
        assert_eq!(layout.row_label(0), Some("node `a`"));
        assert_eq!(layout.row_label(1), Some("node `out`"));
        assert_eq!(layout.row_label(2), Some("branch current of `v1`"));
        assert_eq!(layout.row_label(3), None);
        let err = layout.describe_singular(crate::error::SimError::SingularMatrix {
            pivot: 1,
            unknown: None,
        });
        assert_eq!(
            err,
            crate::error::SimError::SingularMatrix {
                pivot: 1,
                unknown: Some("node `out`".to_string()),
            }
        );
        assert!(err.to_string().contains("node `out`"));
    }

    #[test]
    fn voltage_of_returns_zero_for_ground() {
        let mut ckt = Circuit::new("t");
        let a = ckt.node("a");
        let gnd = ckt.gnd();
        ckt.add_vsource("v1", a, gnd, 1.0).unwrap();
        ckt.add_resistor("r1", a, gnd, 1e3).unwrap();
        let layout = MnaLayout::new(&ckt);
        let x = vec![2.5, 0.0];
        assert_eq!(layout.voltage_of(&x, a), 2.5);
        assert_eq!(layout.voltage_of(&x, gnd), 0.0);
    }
}
