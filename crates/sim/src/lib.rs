//! # ayb-sim — an MNA-based analogue circuit simulator
//!
//! This crate is the simulation substrate of the AYB workspace. It replaces
//! the commercial Spectre™ simulator used in the original paper with a
//! from-scratch implementation providing exactly the analyses the flow needs:
//!
//! * [`dc::dc_operating_point`] — damped Newton–Raphson operating point with
//!   gmin and source stepping,
//! * [`ac::ac_analysis`] — small-signal frequency sweeps over the linearised
//!   circuit, assembled once and re-merged as `G + jωC` per frequency,
//! * [`transient::transient_analysis`] — fixed-step backward-Euler transient,
//! * [`measure`] — open-loop gain, phase margin, unity-gain frequency and
//!   bandwidth extraction,
//! * [`mosfet`] — a Level-1 (square-law) MOSFET model with body effect,
//!   channel-length modulation and bias-dependent capacitances.
//!
//! Matrix assembly is split into a symbolic phase (a per-layout
//! [`linalg::SparsityPattern`]) and a numeric value-fill; linear solves go
//! through the pluggable [`linalg::SolverBackend`] seam ([`SolverKind::Dense`]
//! is the default, [`SolverKind::Sparse`] a left-looking sparse LU). Use
//! [`dc::dc_operating_point_with`] / [`ac::ac_analysis_with`] to pick a
//! backend and share one [`mna::MnaLayout`] across analyses.
//!
//! # Examples
//!
//! Measuring the corner frequency of an RC low-pass filter:
//!
//! ```
//! use ayb_circuit::{AcSpec, Circuit};
//! use ayb_sim::{ac_analysis, dc_operating_point, measure, DcOptions, FrequencySweep};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut ckt = Circuit::new("rc");
//! let vin = ckt.node("in");
//! let out = ckt.node("out");
//! let gnd = ckt.gnd();
//! ckt.add_vsource_ac("v1", vin, gnd, 0.0, AcSpec::unit())?;
//! ckt.add_resistor("r1", vin, out, 1e3)?;
//! ckt.add_capacitor("c1", out, gnd, 159.2e-9)?;
//!
//! let op = dc_operating_point(&ckt, &DcOptions::new())?;
//! let ac = ac_analysis(&ckt, &op, &FrequencySweep::logarithmic(1.0, 1e6, 20))?;
//! let response = ac.response_by_name(&ckt, "out").expect("node exists");
//! let m = measure::measure(ac.frequencies(), &response)?;
//! let bw = m.bandwidth_hz.expect("corner inside sweep");
//! assert!((bw - 1000.0).abs() / 1000.0 < 0.05);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ac;
pub mod dc;
pub mod error;
pub mod linalg;
pub mod measure;
pub mod mna;
pub mod mosfet;
pub mod sweep;
pub mod transient;

pub use ac::{ac_analysis, ac_analysis_with, AcSolution};
pub use dc::{dc_operating_point, dc_operating_point_with, DcOptions, DcSolution};
pub use error::{Result, SimError};
pub use linalg::{Complex, SolverBackend, SolverKind};
pub use measure::AcMeasurements;
pub use mna::MnaLayout;
pub use mosfet::{MosfetEval, Region};
pub use sweep::FrequencySweep;
pub use transient::{transient_analysis, TransientOptions, TransientSolution};
