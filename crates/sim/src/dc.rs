//! DC operating-point analysis.
//!
//! Nonlinear circuits are solved with damped Newton–Raphson iteration. Two
//! classic continuation strategies are applied automatically when a plain
//! Newton run fails to converge: *gmin stepping* (a conductance from every
//! node to ground is swept from a large value down to the target) and *source
//! stepping* (all independent sources are ramped from a small fraction to
//! 100 %).

use crate::error::{Result, SimError};
use crate::linalg::{
    backend_of, CsrMatrix, DenseMatrix, PatternBuilder, SolverBackend, SolverKind, SparsityPattern,
};
use crate::mna::MnaLayout;
use crate::mosfet::{evaluate, MosfetEval};
use ayb_circuit::{Circuit, Device, Mosfet as MosfetInstance, MosfetModelCard, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Options controlling the DC operating-point solver.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DcOptions {
    /// Maximum Newton iterations per continuation rung.
    pub max_iterations: usize,
    /// Absolute voltage convergence tolerance in volts.
    pub voltage_tolerance: f64,
    /// Maximum per-iteration voltage step in volts (Newton damping).
    pub max_step: f64,
    /// Final (target) gmin conductance from every node to ground, in siemens.
    pub gmin: f64,
}

impl DcOptions {
    /// Default solver options suitable for the circuits in this workspace.
    pub fn new() -> Self {
        DcOptions {
            max_iterations: 150,
            voltage_tolerance: 1e-6,
            max_step: 0.5,
            gmin: 1e-12,
        }
    }
}

impl Default for DcOptions {
    fn default() -> Self {
        DcOptions::new()
    }
}

/// Result of a DC operating-point analysis.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DcSolution {
    node_voltages: Vec<f64>,
    branch_currents: BTreeMap<String, f64>,
    mosfet_ops: BTreeMap<String, MosfetEval>,
    /// Total Newton iterations spent (across all continuation rungs).
    pub iterations: usize,
}

impl DcSolution {
    /// Voltage of a node (0.0 for ground).
    pub fn voltage(&self, node: NodeId) -> f64 {
        self.node_voltages[node.index()]
    }

    /// Voltage of a node looked up by name.
    pub fn voltage_by_name(&self, circuit: &Circuit, name: &str) -> Option<f64> {
        circuit.find_node(name).map(|id| self.voltage(id))
    }

    /// Branch current through a named voltage source / VCVS, if present.
    pub fn branch_current(&self, instance: &str) -> Option<f64> {
        self.branch_currents.get(instance).copied()
    }

    /// Small-signal operating point of a named MOSFET.
    pub fn mosfet_op(&self, instance: &str) -> Option<&MosfetEval> {
        self.mosfet_ops.get(instance)
    }

    /// All MOSFET operating points, keyed by instance name.
    pub fn mosfet_ops(&self) -> &BTreeMap<String, MosfetEval> {
        &self.mosfet_ops
    }

    /// All node voltages indexed by node id (entry 0 is ground).
    pub fn node_voltages(&self) -> &[f64] {
        &self.node_voltages
    }
}

/// Computes the DC operating point of a circuit with the default dense
/// solver backend, deriving the MNA layout internally.
///
/// # Errors
///
/// Returns an error if the circuit fails validation, the MNA matrix is
/// singular, or Newton iteration fails to converge even with gmin and source
/// stepping.
pub fn dc_operating_point(circuit: &Circuit, options: &DcOptions) -> Result<DcSolution> {
    let layout = MnaLayout::new(circuit);
    dc_operating_point_with(circuit, &layout, options, SolverKind::Dense)
}

/// Computes the DC operating point over a caller-supplied [`MnaLayout`] and
/// solver backend.
///
/// The sparsity pattern and per-device stamp plan are derived once (the
/// symbolic phase); every Newton iteration — across all continuation rungs —
/// is then a numeric value-fill plus one backend solve over reused
/// workspaces.
///
/// # Errors
///
/// As [`dc_operating_point`]. A structurally singular matrix is reported as
/// [`SimError::SingularMatrix`] naming the offending unknown rather than
/// being ground through the continuation ladder.
pub fn dc_operating_point_with(
    circuit: &Circuit,
    layout: &MnaLayout,
    options: &DcOptions,
    solver: SolverKind,
) -> Result<DcSolution> {
    circuit.validate()?;
    let mut system = DcSystem::new(circuit, layout);
    let mut backend = backend_of::<f64>(solver);
    backend.prepare(system.pattern());
    let backend = backend.as_mut();
    let mut x = vec![0.0; layout.size()];
    let mut total_iterations = 0usize;

    // 1. Plain Newton from a zero initial guess.
    let direct = newton(
        &mut system,
        backend,
        layout,
        &mut x,
        options.gmin,
        1.0,
        options,
        60,
    );
    match direct {
        Ok(iters) => total_iterations += iters,
        Err(_) => {
            // 2. gmin stepping.
            x.iter_mut().for_each(|v| *v = 0.0);
            let mut ladder_ok = true;
            for &gmin in &[1e-2, 1e-3, 1e-4, 1e-6, 1e-8, 1e-10] {
                match newton(
                    &mut system,
                    backend,
                    layout,
                    &mut x,
                    gmin,
                    1.0,
                    options,
                    options.max_iterations,
                ) {
                    Ok(iters) => total_iterations += iters,
                    // A singular pivot with the heavy ladder gmin on the
                    // diagonal is structural — continuation cannot fix it,
                    // so surface the named unknown instead of grinding on.
                    Err(error @ SimError::SingularMatrix { .. }) => return Err(error),
                    Err(_) => {
                        ladder_ok = false;
                        break;
                    }
                }
            }
            if ladder_ok {
                total_iterations += newton(
                    &mut system,
                    backend,
                    layout,
                    &mut x,
                    options.gmin,
                    1.0,
                    options,
                    options.max_iterations,
                )?;
            } else {
                // 3. Source stepping.
                x.iter_mut().for_each(|v| *v = 0.0);
                for step in 1..=20 {
                    let scale = step as f64 / 20.0;
                    total_iterations += newton(
                        &mut system,
                        backend,
                        layout,
                        &mut x,
                        1e-9,
                        scale,
                        options,
                        options.max_iterations,
                    )
                    .map_err(|_| SimError::NoConvergence {
                        analysis: format!("dc operating point (source stepping at {scale:.2})"),
                        iterations: total_iterations,
                        residual: f64::NAN,
                    })?;
                }
                total_iterations += newton(
                    &mut system,
                    backend,
                    layout,
                    &mut x,
                    options.gmin,
                    1.0,
                    options,
                    options.max_iterations,
                )?;
            }
        }
    }

    Ok(assemble_solution(circuit, layout, &x, total_iterations))
}

/// Pre-resolved slots of a two-terminal conductance stamp (the classic
/// `(p,p) (m,m) (p,m) (m,p)` quad; entries involving ground are absent).
#[derive(Debug, Clone, Copy)]
struct CondQuad {
    pp: Option<usize>,
    mm: Option<usize>,
    pm: Option<usize>,
    mp: Option<usize>,
}

impl CondQuad {
    fn mark(builder: &mut PatternBuilder, p: Option<usize>, m: Option<usize>) {
        if let Some(p) = p {
            builder.entry(p, p);
        }
        if let Some(m) = m {
            builder.entry(m, m);
        }
        if let (Some(p), Some(m)) = (p, m) {
            builder.entry(p, m);
            builder.entry(m, p);
        }
    }

    fn resolve(pattern: &SparsityPattern, p: Option<usize>, m: Option<usize>) -> CondQuad {
        let pos = |r: Option<usize>, c: Option<usize>| match (r, c) {
            (Some(r), Some(c)) => pattern.position(r, c),
            _ => None,
        };
        CondQuad {
            pp: pos(p, p),
            mm: pos(m, m),
            pm: pos(p, m),
            mp: pos(m, p),
        }
    }

    /// Adds `g` with the same per-cell ordering the dense stamp used.
    #[inline]
    fn add(&self, matrix: &mut CsrMatrix<f64>, g: f64) {
        if let Some(pp) = self.pp {
            matrix.add_slot(pp, g);
        }
        if let Some(mm) = self.mm {
            matrix.add_slot(mm, g);
        }
        if let Some(pm) = self.pm {
            matrix.add_slot(pm, -g);
        }
        if let Some(mp) = self.mp {
            matrix.add_slot(mp, -g);
        }
    }
}

/// One device's pre-planned numeric stamp: every matrix slot and right-hand
/// side row is resolved at symbolic time, so the per-iteration fill touches
/// no names, hashes or allocations.
#[derive(Debug)]
enum DcOp {
    /// Resistor (value pre-inverted to a conductance).
    Conductance { quad: CondQuad, conductance: f64 },
    /// Independent voltage source: `(node→branch, branch→node)` slot pairs.
    VoltageSource {
        plus: Option<(usize, usize)>,
        minus: Option<(usize, usize)>,
        branch: usize,
        dc: f64,
    },
    /// Independent current source (right-hand side only).
    CurrentSource {
        plus: Option<usize>,
        minus: Option<usize>,
        dc: f64,
    },
    /// Voltage-controlled current source.
    Vccs {
        op_cp: Option<usize>,
        op_cm: Option<usize>,
        om_cp: Option<usize>,
        om_cm: Option<usize>,
        gm: f64,
    },
    /// Voltage-controlled voltage source.
    Vcvs {
        plus: Option<(usize, usize)>,
        minus: Option<(usize, usize)>,
        ctrl_plus: Option<usize>,
        ctrl_minus: Option<usize>,
        gain: f64,
    },
    /// Nonlinear MOSFET: re-evaluated at `x` every fill.
    Mosfet(Box<MosfetOp>),
    /// Behavioural OTA.
    Ota {
        out_plus: Option<usize>,
        out_minus: Option<usize>,
        load: CondQuad,
        gm: f64,
        gout: f64,
    },
}

/// Pre-planned MOSFET stamp: cloned model card + instance for evaluation,
/// node rows for voltage reads, and resolved Jacobian / leak slots.
#[derive(Debug)]
struct MosfetOp {
    card: MosfetModelCard,
    device: MosfetInstance,
    /// Node rows of (drain, gate, source, bulk); `None` for ground.
    rows: [Option<usize>; 4],
    /// Drain-row Jacobian slots versus (drain, gate, source, bulk).
    drain_slots: [Option<usize>; 4],
    /// Source-row Jacobian slots versus (drain, gate, source, bulk).
    source_slots: [Option<usize>; 4],
    /// Weak drain–source leakage quad.
    leak: CondQuad,
}

/// The DC MNA system after the symbolic phase: sparsity pattern, per-device
/// stamp plan, and the reusable value matrix / right-hand side.
pub(crate) struct DcSystem {
    diag_slots: Vec<usize>,
    ops: Vec<DcOp>,
    matrix: CsrMatrix<f64>,
    rhs: Vec<f64>,
}

impl DcSystem {
    /// Runs the symbolic phase: derive the sparsity pattern and resolve
    /// every device stamp to value slots.
    pub(crate) fn new(circuit: &Circuit, layout: &MnaLayout) -> Self {
        let n = layout.size();
        let node_row = |node: NodeId| layout.node_row(node);
        let mut builder = PatternBuilder::new(n);
        for row in 0..layout.node_count() {
            builder.entry(row, row);
        }
        for inst in circuit.instances() {
            match &inst.device {
                Device::Resistor(r) => {
                    CondQuad::mark(&mut builder, node_row(r.plus), node_row(r.minus));
                }
                Device::Capacitor(_) => {}
                Device::VoltageSource(v) => {
                    let br = layout
                        .branch_row(&inst.name)
                        .expect("voltage source has a branch row");
                    for node in [v.plus, v.minus] {
                        if let Some(p) = node_row(node) {
                            builder.entry(p, br);
                            builder.entry(br, p);
                        }
                    }
                }
                Device::CurrentSource(_) => {}
                Device::Vccs(g) => {
                    for out in [node_row(g.out_plus), node_row(g.out_minus)] {
                        for ctrl in [node_row(g.ctrl_plus), node_row(g.ctrl_minus)] {
                            if let (Some(out), Some(ctrl)) = (out, ctrl) {
                                builder.entry(out, ctrl);
                            }
                        }
                    }
                }
                Device::Vcvs(e) => {
                    let br = layout
                        .branch_row(&inst.name)
                        .expect("vcvs has a branch row");
                    for node in [e.out_plus, e.out_minus] {
                        if let Some(p) = node_row(node) {
                            builder.entry(p, br);
                            builder.entry(br, p);
                        }
                    }
                    for node in [e.ctrl_plus, e.ctrl_minus] {
                        if let Some(c) = node_row(node) {
                            builder.entry(br, c);
                        }
                    }
                }
                Device::Mosfet(m) => {
                    let terminals = [m.drain, m.gate, m.source, m.bulk];
                    for row in [node_row(m.drain), node_row(m.source)]
                        .into_iter()
                        .flatten()
                    {
                        for node in terminals {
                            if let Some(col) = node_row(node) {
                                builder.entry(row, col);
                            }
                        }
                    }
                    CondQuad::mark(&mut builder, node_row(m.drain), node_row(m.source));
                }
                Device::BehavioralOta(o) => {
                    if let Some(out) = node_row(o.out) {
                        for node in [o.in_plus, o.in_minus] {
                            if let Some(c) = node_row(node) {
                                builder.entry(out, c);
                            }
                        }
                    }
                    CondQuad::mark(&mut builder, node_row(o.out), None);
                }
            }
        }
        let pattern = builder.build();

        let diag_slots = (0..layout.node_count())
            .map(|row| pattern.position(row, row).expect("diagonal is in pattern"))
            .collect();
        let pos = |r: Option<usize>, c: Option<usize>| match (r, c) {
            (Some(r), Some(c)) => pattern.position(r, c),
            _ => None,
        };
        let pair = |a: Option<usize>, b: usize| {
            a.map(|a| {
                (
                    pattern.position(a, b).expect("marked in pattern"),
                    pattern.position(b, a).expect("marked in pattern"),
                )
            })
        };

        let mut ops = Vec::with_capacity(circuit.instances().len());
        for inst in circuit.instances() {
            match &inst.device {
                Device::Resistor(r) => ops.push(DcOp::Conductance {
                    quad: CondQuad::resolve(&pattern, node_row(r.plus), node_row(r.minus)),
                    conductance: 1.0 / r.resistance,
                }),
                Device::Capacitor(_) => {}
                Device::VoltageSource(v) => {
                    let br = layout
                        .branch_row(&inst.name)
                        .expect("voltage source has a branch row");
                    ops.push(DcOp::VoltageSource {
                        plus: pair(node_row(v.plus), br),
                        minus: pair(node_row(v.minus), br),
                        branch: br,
                        dc: v.dc,
                    });
                }
                Device::CurrentSource(i) => ops.push(DcOp::CurrentSource {
                    plus: node_row(i.plus),
                    minus: node_row(i.minus),
                    dc: i.dc,
                }),
                Device::Vccs(g) => {
                    let (op_, om) = (node_row(g.out_plus), node_row(g.out_minus));
                    let (cp, cm) = (node_row(g.ctrl_plus), node_row(g.ctrl_minus));
                    ops.push(DcOp::Vccs {
                        op_cp: pos(op_, cp),
                        op_cm: pos(op_, cm),
                        om_cp: pos(om, cp),
                        om_cm: pos(om, cm),
                        gm: g.gm,
                    });
                }
                Device::Vcvs(e) => {
                    let br = layout
                        .branch_row(&inst.name)
                        .expect("vcvs has a branch row");
                    ops.push(DcOp::Vcvs {
                        plus: pair(node_row(e.out_plus), br),
                        minus: pair(node_row(e.out_minus), br),
                        ctrl_plus: pos(Some(br), node_row(e.ctrl_plus)),
                        ctrl_minus: pos(Some(br), node_row(e.ctrl_minus)),
                        gain: e.gain,
                    });
                }
                Device::Mosfet(m) => {
                    let rows = [
                        node_row(m.drain),
                        node_row(m.gate),
                        node_row(m.source),
                        node_row(m.bulk),
                    ];
                    let slots_for = |row: Option<usize>| {
                        [
                            pos(row, rows[0]),
                            pos(row, rows[1]),
                            pos(row, rows[2]),
                            pos(row, rows[3]),
                        ]
                    };
                    ops.push(DcOp::Mosfet(Box::new(MosfetOp {
                        card: circuit.models()[&m.model].clone(),
                        device: m.clone(),
                        rows,
                        drain_slots: slots_for(rows[0]),
                        source_slots: slots_for(rows[2]),
                        leak: CondQuad::resolve(&pattern, rows[0], rows[2]),
                    })));
                }
                Device::BehavioralOta(o) => ops.push(DcOp::Ota {
                    out_plus: pos(node_row(o.out), node_row(o.in_plus)),
                    out_minus: pos(node_row(o.out), node_row(o.in_minus)),
                    load: CondQuad::resolve(&pattern, node_row(o.out), None),
                    gm: o.gm,
                    gout: 1.0 / o.rout,
                }),
            }
        }

        let matrix = CsrMatrix::new(Arc::clone(&pattern));
        DcSystem {
            diag_slots,
            ops,
            matrix,
            rhs: vec![0.0; n],
        }
    }

    pub(crate) fn pattern(&self) -> &Arc<SparsityPattern> {
        self.matrix.pattern()
    }

    /// Numeric phase: value-fill of the linearised system `A·x = b` at the
    /// operating point `x`, preserving the dense stamp's per-cell
    /// accumulation order bit-for-bit.
    pub(crate) fn fill(&mut self, x: &[f64], gmin: f64, source_scale: f64) {
        self.matrix.clear();
        self.rhs.iter_mut().for_each(|v| *v = 0.0);
        // gmin from every node to ground keeps the matrix non-singular while
        // devices are cut off.
        for &slot in &self.diag_slots {
            self.matrix.add_slot(slot, gmin);
        }
        let matrix = &mut self.matrix;
        let rhs = &mut self.rhs;
        for op in &self.ops {
            match op {
                DcOp::Conductance { quad, conductance } => quad.add(matrix, *conductance),
                DcOp::VoltageSource {
                    plus,
                    minus,
                    branch,
                    dc,
                } => {
                    if let Some((pb, bp)) = plus {
                        matrix.add_slot(*pb, 1.0);
                        matrix.add_slot(*bp, 1.0);
                    }
                    if let Some((mb, bm)) = minus {
                        matrix.add_slot(*mb, -1.0);
                        matrix.add_slot(*bm, -1.0);
                    }
                    rhs[*branch] += dc * source_scale;
                }
                DcOp::CurrentSource { plus, minus, dc } => {
                    let value = dc * source_scale;
                    if let Some(p) = plus {
                        rhs[*p] -= value;
                    }
                    if let Some(m) = minus {
                        rhs[*m] += value;
                    }
                }
                DcOp::Vccs {
                    op_cp,
                    op_cm,
                    om_cp,
                    om_cm,
                    gm,
                } => {
                    if let Some(slot) = op_cp {
                        matrix.add_slot(*slot, *gm);
                    }
                    if let Some(slot) = op_cm {
                        matrix.add_slot(*slot, -gm);
                    }
                    if let Some(slot) = om_cp {
                        matrix.add_slot(*slot, -gm);
                    }
                    if let Some(slot) = om_cm {
                        matrix.add_slot(*slot, *gm);
                    }
                }
                DcOp::Vcvs {
                    plus,
                    minus,
                    ctrl_plus,
                    ctrl_minus,
                    gain,
                } => {
                    if let Some((pb, bp)) = plus {
                        matrix.add_slot(*pb, 1.0);
                        matrix.add_slot(*bp, 1.0);
                    }
                    if let Some((mb, bm)) = minus {
                        matrix.add_slot(*mb, -1.0);
                        matrix.add_slot(*bm, -1.0);
                    }
                    if let Some(slot) = ctrl_plus {
                        matrix.add_slot(*slot, -gain);
                    }
                    if let Some(slot) = ctrl_minus {
                        matrix.add_slot(*slot, *gain);
                    }
                }
                DcOp::Mosfet(m) => {
                    let read = |row: Option<usize>| row.map_or(0.0, |r| x[r]);
                    let (vd, vg, vs, vb) = (
                        read(m.rows[0]),
                        read(m.rows[1]),
                        read(m.rows[2]),
                        read(m.rows[3]),
                    );
                    let eval = evaluate(&m.card, &m.device, vd, vg, vs, vb);
                    let derivs = [eval.did_dvd, eval.did_dvg, eval.did_dvs, eval.did_dvb];
                    let ieq = eval.id
                        - (eval.did_dvd * vd
                            + eval.did_dvg * vg
                            + eval.did_dvs * vs
                            + eval.did_dvb * vb);
                    if let Some(d) = m.rows[0] {
                        for (slot, g) in m.drain_slots.iter().zip(derivs) {
                            if let Some(slot) = slot {
                                matrix.add_slot(*slot, g);
                            }
                        }
                        rhs[d] -= ieq;
                    }
                    if let Some(s) = m.rows[2] {
                        for (slot, g) in m.source_slots.iter().zip(derivs) {
                            if let Some(slot) = slot {
                                matrix.add_slot(*slot, -g);
                            }
                        }
                        rhs[s] += ieq;
                    }
                    // Weak drain-source leakage aids convergence deep in cutoff.
                    m.leak.add(matrix, gmin);
                }
                DcOp::Ota {
                    out_plus,
                    out_minus,
                    load,
                    gm,
                    gout,
                } => {
                    // Current *into* the output node is gm·(v+ − v−); in the
                    // "currents leaving the node" formulation this contributes
                    // −gm·(v+ − v−) to the output row.
                    if let Some(slot) = out_plus {
                        matrix.add_slot(*slot, -gm);
                    }
                    if let Some(slot) = out_minus {
                        matrix.add_slot(*slot, *gm);
                    }
                    load.add(matrix, *gout);
                }
            }
        }
    }
}

fn assemble_solution(
    circuit: &Circuit,
    layout: &MnaLayout,
    x: &[f64],
    iterations: usize,
) -> DcSolution {
    let mut node_voltages = vec![0.0; circuit.nodes().len()];
    for node in circuit.nodes().iter() {
        node_voltages[node.index()] = layout.voltage_of(x, node);
    }
    let mut branch_currents = BTreeMap::new();
    let mut mosfet_ops = BTreeMap::new();
    for inst in circuit.instances() {
        if let Some(row) = layout.branch_row(&inst.name) {
            branch_currents.insert(inst.name.clone(), x[row]);
        }
        if let Device::Mosfet(m) = &inst.device {
            let card = &circuit.models()[&m.model];
            let eval = evaluate(
                card,
                m,
                layout.voltage_of(x, m.drain),
                layout.voltage_of(x, m.gate),
                layout.voltage_of(x, m.source),
                layout.voltage_of(x, m.bulk),
            );
            mosfet_ops.insert(inst.name.clone(), eval);
        }
    }
    DcSolution {
        node_voltages,
        branch_currents,
        mosfet_ops,
        iterations,
    }
}

/// Runs damped Newton iteration at fixed `gmin` and source scaling,
/// updating `x` in place. Returns the number of iterations used.
///
/// Every iteration is a numeric value-fill over the pre-derived pattern
/// followed by one backend solve; the solution workspace is the only
/// per-iteration vector and lives in `system`.
#[allow(clippy::too_many_arguments)]
fn newton(
    system: &mut DcSystem,
    backend: &mut dyn SolverBackend<f64>,
    layout: &MnaLayout,
    x: &mut [f64],
    gmin: f64,
    source_scale: f64,
    options: &DcOptions,
    max_iterations: usize,
) -> Result<usize> {
    let n = layout.size();
    let mut solution = vec![0.0; n];
    let mut last_delta = f64::INFINITY;

    for iteration in 1..=max_iterations {
        system.fill(x, gmin, source_scale);
        solution.copy_from_slice(&system.rhs);
        backend
            .solve(&system.matrix, &mut solution)
            .map_err(|e| layout.describe_singular(e))?;
        if solution.iter().any(|v| !v.is_finite()) {
            return Err(SimError::NoConvergence {
                analysis: "dc operating point (non-finite update)".into(),
                iterations: iteration,
                residual: f64::NAN,
            });
        }

        let mut max_delta = 0.0f64;
        for i in 0..n {
            let delta = solution[i] - x[i];
            max_delta = max_delta.max(delta.abs());
            let limited = if i < layout.node_count() {
                delta.clamp(-options.max_step, options.max_step)
            } else {
                delta
            };
            x[i] += limited;
        }
        last_delta = max_delta;
        if max_delta < options.voltage_tolerance {
            return Ok(iteration);
        }
    }
    Err(SimError::NoConvergence {
        analysis: "dc operating point".into(),
        iterations: max_iterations,
        residual: last_delta,
    })
}

/// Stamps the linearised DC system `A·x = b` at the operating point `x`.
pub(crate) fn stamp_dc(
    circuit: &Circuit,
    layout: &MnaLayout,
    x: &[f64],
    gmin: f64,
    source_scale: f64,
    matrix: &mut DenseMatrix<f64>,
    rhs: &mut [f64],
) {
    matrix.clear();
    rhs.iter_mut().for_each(|v| *v = 0.0);

    // gmin from every node to ground keeps the matrix non-singular while
    // devices are cut off.
    for row in 0..layout.node_count() {
        matrix.add(row, row, gmin);
    }

    let node_row = |node: NodeId| layout.node_row(node);
    for inst in circuit.instances() {
        match &inst.device {
            Device::Resistor(r) => {
                stamp_conductance(matrix, layout, r.plus, r.minus, 1.0 / r.resistance);
            }
            Device::Capacitor(_) => {
                // Open circuit at DC.
            }
            Device::VoltageSource(v) => {
                let br = layout
                    .branch_row(&inst.name)
                    .expect("voltage source has a branch row");
                if let Some(p) = node_row(v.plus) {
                    matrix.add(p, br, 1.0);
                    matrix.add(br, p, 1.0);
                }
                if let Some(m) = node_row(v.minus) {
                    matrix.add(m, br, -1.0);
                    matrix.add(br, m, -1.0);
                }
                rhs[br] += v.dc * source_scale;
            }
            Device::CurrentSource(i) => {
                let value = i.dc * source_scale;
                if let Some(p) = node_row(i.plus) {
                    rhs[p] -= value;
                }
                if let Some(m) = node_row(i.minus) {
                    rhs[m] += value;
                }
            }
            Device::Vccs(g) => {
                stamp_vccs(
                    matrix,
                    layout,
                    g.out_plus,
                    g.out_minus,
                    g.ctrl_plus,
                    g.ctrl_minus,
                    g.gm,
                );
            }
            Device::Vcvs(e) => {
                let br = layout
                    .branch_row(&inst.name)
                    .expect("vcvs has a branch row");
                if let Some(p) = node_row(e.out_plus) {
                    matrix.add(p, br, 1.0);
                    matrix.add(br, p, 1.0);
                }
                if let Some(m) = node_row(e.out_minus) {
                    matrix.add(m, br, -1.0);
                    matrix.add(br, m, -1.0);
                }
                if let Some(cp) = node_row(e.ctrl_plus) {
                    matrix.add(br, cp, -e.gain);
                }
                if let Some(cm) = node_row(e.ctrl_minus) {
                    matrix.add(br, cm, e.gain);
                }
            }
            Device::Mosfet(m) => {
                let card = &circuit.models()[&m.model];
                let vd = layout.voltage_of(x, m.drain);
                let vg = layout.voltage_of(x, m.gate);
                let vs = layout.voltage_of(x, m.source);
                let vb = layout.voltage_of(x, m.bulk);
                let eval = evaluate(card, m, vd, vg, vs, vb);
                let derivs = [
                    (m.drain, eval.did_dvd),
                    (m.gate, eval.did_dvg),
                    (m.source, eval.did_dvs),
                    (m.bulk, eval.did_dvb),
                ];
                let ieq = eval.id
                    - (eval.did_dvd * vd
                        + eval.did_dvg * vg
                        + eval.did_dvs * vs
                        + eval.did_dvb * vb);
                if let Some(d) = node_row(m.drain) {
                    for (node, g) in derivs {
                        if let Some(col) = node_row(node) {
                            matrix.add(d, col, g);
                        }
                    }
                    rhs[d] -= ieq;
                }
                if let Some(s) = node_row(m.source) {
                    for (node, g) in derivs {
                        if let Some(col) = node_row(node) {
                            matrix.add(s, col, -g);
                        }
                    }
                    rhs[s] += ieq;
                }
                // Weak drain-source leakage aids convergence deep in cutoff.
                stamp_conductance(matrix, layout, m.drain, m.source, gmin);
            }
            Device::BehavioralOta(o) => {
                // Current *into* the output node is gm·(v+ − v−); in the
                // "currents leaving the node" formulation this contributes
                // −gm·(v+ − v−) to the output row.
                if let Some(out) = node_row(o.out) {
                    if let Some(p) = node_row(o.in_plus) {
                        matrix.add(out, p, -o.gm);
                    }
                    if let Some(m) = node_row(o.in_minus) {
                        matrix.add(out, m, o.gm);
                    }
                }
                stamp_conductance(matrix, layout, o.out, NodeId::GROUND, 1.0 / o.rout);
            }
        }
    }
}

/// Stamps a two-terminal conductance between `plus` and `minus`.
pub(crate) fn stamp_conductance(
    matrix: &mut DenseMatrix<f64>,
    layout: &MnaLayout,
    plus: NodeId,
    minus: NodeId,
    conductance: f64,
) {
    let p = layout.node_row(plus);
    let m = layout.node_row(minus);
    if let Some(p) = p {
        matrix.add(p, p, conductance);
    }
    if let Some(m) = m {
        matrix.add(m, m, conductance);
    }
    if let (Some(p), Some(m)) = (p, m) {
        matrix.add(p, m, -conductance);
        matrix.add(m, p, -conductance);
    }
}

/// Stamps a voltage-controlled current source (`i(out+ → out−) = gm·v(cp, cm)`).
pub(crate) fn stamp_vccs(
    matrix: &mut DenseMatrix<f64>,
    layout: &MnaLayout,
    out_plus: NodeId,
    out_minus: NodeId,
    ctrl_plus: NodeId,
    ctrl_minus: NodeId,
    gm: f64,
) {
    let op = layout.node_row(out_plus);
    let om = layout.node_row(out_minus);
    let cp = layout.node_row(ctrl_plus);
    let cm = layout.node_row(ctrl_minus);
    if let Some(op) = op {
        if let Some(cp) = cp {
            matrix.add(op, cp, gm);
        }
        if let Some(cm) = cm {
            matrix.add(op, cm, -gm);
        }
    }
    if let Some(om) = om {
        if let Some(cp) = cp {
            matrix.add(om, cp, -gm);
        }
        if let Some(cm) = cm {
            matrix.add(om, cm, gm);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ayb_circuit::{Circuit, Mosfet};

    #[test]
    fn resistive_divider_hits_half_supply() {
        let mut ckt = Circuit::new("divider");
        let vin = ckt.node("in");
        let out = ckt.node("out");
        let gnd = ckt.gnd();
        ckt.add_vsource("v1", vin, gnd, 2.0).unwrap();
        ckt.add_resistor("r1", vin, out, 1e3).unwrap();
        ckt.add_resistor("r2", out, gnd, 1e3).unwrap();
        let sol = dc_operating_point(&ckt, &DcOptions::new()).unwrap();
        assert!((sol.voltage_by_name(&ckt, "out").unwrap() - 1.0).abs() < 1e-6);
        assert!((sol.voltage_by_name(&ckt, "in").unwrap() - 2.0).abs() < 1e-9);
        // Branch current through the source: 2 V across 2 kΩ = 1 mA (sign per MNA convention).
        let i = sol.branch_current("v1").unwrap();
        assert!((i.abs() - 1e-3).abs() < 1e-9);
    }

    #[test]
    fn current_source_into_resistor() {
        let mut ckt = Circuit::new("ir");
        let a = ckt.node("a");
        let gnd = ckt.gnd();
        // 1 mA pushed into node a through the source (plus = gnd, minus = a).
        ckt.add_isource("i1", gnd, a, 1e-3).unwrap();
        ckt.add_resistor("r1", a, gnd, 2e3).unwrap();
        let sol = dc_operating_point(&ckt, &DcOptions::new()).unwrap();
        assert!((sol.voltage_by_name(&ckt, "a").unwrap() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn vcvs_amplifies_dc() {
        let mut ckt = Circuit::new("vcvs");
        let inp = ckt.node("in");
        let out = ckt.node("out");
        let gnd = ckt.gnd();
        ckt.add_vsource("v1", inp, gnd, 0.1).unwrap();
        ckt.add_vcvs("e1", out, gnd, inp, gnd, 10.0).unwrap();
        ckt.add_resistor("rl", out, gnd, 1e3).unwrap();
        let sol = dc_operating_point(&ckt, &DcOptions::new()).unwrap();
        assert!((sol.voltage_by_name(&ckt, "out").unwrap() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn diode_connected_nmos_settles_above_threshold() {
        let mut ckt = Circuit::new("diode");
        ckt.add_default_models();
        let d = ckt.node("d");
        let vdd = ckt.node("vdd");
        let gnd = ckt.gnd();
        ckt.add_vsource("vdd", vdd, gnd, 3.3).unwrap();
        ckt.add_resistor("r1", vdd, d, 100e3).unwrap();
        ckt.add_mosfet("m1", Mosfet::new(d, d, gnd, gnd, "nmos", 10e-6, 1e-6))
            .unwrap();
        let sol = dc_operating_point(&ckt, &DcOptions::new()).unwrap();
        let vgs = sol.voltage_by_name(&ckt, "d").unwrap();
        // The gate-source voltage must sit above threshold but well below VDD.
        assert!(vgs > 0.5 && vgs < 1.5, "vgs = {vgs}");
        let op = sol.mosfet_op("m1").unwrap();
        assert_eq!(op.region, crate::mosfet::Region::Saturation);
        // KCL: drain current equals resistor current.
        let ir = (3.3 - vgs) / 100e3;
        assert!((op.id - ir).abs() / ir < 1e-3);
    }

    #[test]
    fn nmos_common_source_amplifier_bias() {
        let mut ckt = Circuit::new("cs");
        ckt.add_default_models();
        let vdd = ckt.node("vdd");
        let g = ckt.node("g");
        let d = ckt.node("d");
        let gnd = ckt.gnd();
        ckt.add_vsource("vdd", vdd, gnd, 3.3).unwrap();
        ckt.add_vsource("vg", g, gnd, 0.9).unwrap();
        ckt.add_resistor("rd", vdd, d, 10e3).unwrap();
        ckt.add_mosfet("m1", Mosfet::new(d, g, gnd, gnd, "nmos", 20e-6, 1e-6))
            .unwrap();
        let sol = dc_operating_point(&ckt, &DcOptions::new()).unwrap();
        let vd = sol.voltage_by_name(&ckt, "d").unwrap();
        // Device should be conducting, dropping some voltage across RD.
        assert!(vd < 3.3 && vd > 0.0, "vd = {vd}");
        let op = sol.mosfet_op("m1").unwrap();
        assert!(op.id > 0.0);
    }

    #[test]
    fn behavioral_ota_unity_follower() {
        // OTA with feedback from output to inverting input approximates a follower.
        let mut ckt = Circuit::new("follower");
        let inp = ckt.node("in");
        let out = ckt.node("out");
        let gnd = ckt.gnd();
        ckt.add_vsource("vin", inp, gnd, 0.5).unwrap();
        ckt.add_behavioral_ota(
            "ota1",
            ayb_circuit::BehavioralOta::from_gm_rout(inp, out, out, 1e-3, 1e7, 1e-12),
        )
        .unwrap();
        ckt.add_resistor("rl", out, gnd, 1e6).unwrap();
        let sol = dc_operating_point(&ckt, &DcOptions::new()).unwrap();
        let vout = sol.voltage_by_name(&ckt, "out").unwrap();
        // Gain of 1e4 -> follower error ~ 1e-4 relative.
        assert!((vout - 0.5).abs() < 1e-3, "vout = {vout}");
    }

    #[test]
    fn unconnected_circuit_is_rejected() {
        let ckt = Circuit::new("empty");
        assert!(dc_operating_point(&ckt, &DcOptions::new()).is_err());
    }

    #[test]
    fn sparse_backend_matches_dense_operating_point() {
        let mut ckt = Circuit::new("cs");
        ckt.add_default_models();
        let vdd = ckt.node("vdd");
        let g = ckt.node("g");
        let d = ckt.node("d");
        let gnd = ckt.gnd();
        ckt.add_vsource("vdd", vdd, gnd, 3.3).unwrap();
        ckt.add_vsource("vg", g, gnd, 0.9).unwrap();
        ckt.add_resistor("rd", vdd, d, 10e3).unwrap();
        ckt.add_mosfet("m1", Mosfet::new(d, g, gnd, gnd, "nmos", 20e-6, 1e-6))
            .unwrap();
        let layout = MnaLayout::new(&ckt);
        let dense =
            dc_operating_point_with(&ckt, &layout, &DcOptions::new(), SolverKind::Dense).unwrap();
        let sparse =
            dc_operating_point_with(&ckt, &layout, &DcOptions::new(), SolverKind::Sparse).unwrap();
        for (a, b) in dense
            .node_voltages()
            .iter()
            .zip(sparse.node_voltages().iter())
        {
            assert!((a - b).abs() < 1e-9, "dense {a} vs sparse {b}");
        }
        for (name, i) in &dense.branch_currents {
            let j = sparse.branch_current(name).unwrap();
            assert!((i - j).abs() < 1e-9, "{name}: dense {i} vs sparse {j}");
        }
    }

    #[test]
    fn dense_wrapper_matches_dense_backend_exactly() {
        // The default entry point must be bit-identical to the explicit
        // dense-backend path (same layout, same stamp order, same LU).
        let mut ckt = Circuit::new("divider");
        let vin = ckt.node("in");
        let out = ckt.node("out");
        let gnd = ckt.gnd();
        ckt.add_vsource("v1", vin, gnd, 2.0).unwrap();
        ckt.add_resistor("r1", vin, out, 1e3).unwrap();
        ckt.add_resistor("r2", out, gnd, 1e3).unwrap();
        let layout = MnaLayout::new(&ckt);
        let a = dc_operating_point(&ckt, &DcOptions::new()).unwrap();
        let b =
            dc_operating_point_with(&ckt, &layout, &DcOptions::new(), SolverKind::Dense).unwrap();
        assert_eq!(a.node_voltages(), b.node_voltages());
    }

    #[test]
    fn singular_system_names_the_offending_unknown() {
        // Two ideal voltage sources in parallel with conflicting values give
        // a structurally singular MNA system.
        let mut ckt = Circuit::new("conflict");
        let a = ckt.node("a");
        let gnd = ckt.gnd();
        ckt.add_vsource("v1", a, gnd, 1.0).unwrap();
        ckt.add_vsource("v2", a, gnd, 2.0).unwrap();
        ckt.add_resistor("r1", a, gnd, 1e3).unwrap();
        let err = dc_operating_point(&ckt, &DcOptions::new()).unwrap_err();
        match err {
            SimError::SingularMatrix { unknown, .. } => {
                let unknown = unknown.expect("singular error is annotated with the unknown");
                assert!(
                    unknown.contains("branch current"),
                    "expected a branch-current label, got {unknown}"
                );
            }
            other => panic!("expected SingularMatrix, got {other}"),
        }
    }
}
