//! Frequency sweep specifications.

use serde::{Deserialize, Serialize};

/// A frequency sweep for AC analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FrequencySweep {
    /// Logarithmically spaced points between `start` and `stop` (inclusive)
    /// with `points_per_decade` samples per decade.
    Logarithmic {
        /// Start frequency in hertz (must be positive).
        start: f64,
        /// Stop frequency in hertz (must exceed `start`).
        stop: f64,
        /// Points per decade (at least 1).
        points_per_decade: usize,
    },
    /// Linearly spaced points between `start` and `stop` (inclusive).
    Linear {
        /// Start frequency in hertz.
        start: f64,
        /// Stop frequency in hertz.
        stop: f64,
        /// Total number of points (at least 2).
        points: usize,
    },
    /// An explicit list of frequencies in hertz.
    List(Vec<f64>),
}

impl FrequencySweep {
    /// Convenience constructor for a logarithmic (decade) sweep.
    pub fn logarithmic(start: f64, stop: f64, points_per_decade: usize) -> Self {
        FrequencySweep::Logarithmic {
            start,
            stop,
            points_per_decade,
        }
    }

    /// Convenience constructor for a linear sweep.
    pub fn linear(start: f64, stop: f64, points: usize) -> Self {
        FrequencySweep::Linear {
            start,
            stop,
            points,
        }
    }

    /// A single-frequency "sweep".
    pub fn single(frequency: f64) -> Self {
        FrequencySweep::List(vec![frequency])
    }

    /// An explicit list of frequencies.
    pub fn list(frequencies: Vec<f64>) -> Self {
        FrequencySweep::List(frequencies)
    }

    /// The default sweep used for OTA open-loop characterisation:
    /// 1 Hz – 1 GHz at 10 points per decade.
    pub fn ota_default() -> Self {
        FrequencySweep::logarithmic(1.0, 1e9, 10)
    }

    /// Materialises the sweep into a list of frequencies in hertz.
    ///
    /// Invalid specifications (non-positive bounds for logarithmic sweeps,
    /// reversed bounds, zero point counts) produce an empty list, which the
    /// analysis code rejects with a descriptive error.
    pub fn frequencies(&self) -> Vec<f64> {
        match self {
            FrequencySweep::Logarithmic {
                start,
                stop,
                points_per_decade,
            } => {
                if *start <= 0.0 || *stop <= *start || *points_per_decade == 0 {
                    return Vec::new();
                }
                let decades = (stop / start).log10();
                let total = (decades * *points_per_decade as f64).ceil() as usize + 1;
                (0..total)
                    .map(|i| {
                        let frac = i as f64 / (total - 1).max(1) as f64;
                        start * 10f64.powf(frac * decades)
                    })
                    .collect()
            }
            FrequencySweep::Linear {
                start,
                stop,
                points,
            } => {
                if *points < 2 || stop <= start {
                    return Vec::new();
                }
                (0..*points)
                    .map(|i| start + (stop - start) * i as f64 / (*points - 1) as f64)
                    .collect()
            }
            FrequencySweep::List(list) => list.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logarithmic_sweep_covers_range_inclusively() {
        let freqs = FrequencySweep::logarithmic(1.0, 1e3, 10).frequencies();
        assert!((freqs[0] - 1.0).abs() < 1e-12);
        assert!((freqs.last().unwrap() - 1e3).abs() / 1e3 < 1e-9);
        assert_eq!(freqs.len(), 31);
        assert!(freqs.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn linear_sweep_is_evenly_spaced() {
        let freqs = FrequencySweep::linear(0.0, 10.0, 11).frequencies();
        assert_eq!(freqs.len(), 11);
        assert!((freqs[5] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_specifications_yield_empty_lists() {
        assert!(FrequencySweep::logarithmic(-1.0, 10.0, 5)
            .frequencies()
            .is_empty());
        assert!(FrequencySweep::logarithmic(10.0, 1.0, 5)
            .frequencies()
            .is_empty());
        assert!(FrequencySweep::linear(5.0, 1.0, 10)
            .frequencies()
            .is_empty());
        assert!(FrequencySweep::linear(0.0, 1.0, 1).frequencies().is_empty());
    }

    #[test]
    fn single_and_list_sweeps() {
        assert_eq!(FrequencySweep::single(42.0).frequencies(), vec![42.0]);
        let list = FrequencySweep::list(vec![1.0, 10.0]);
        assert_eq!(list.frequencies().len(), 2);
    }

    #[test]
    fn ota_default_spans_one_hertz_to_one_gigahertz() {
        let freqs = FrequencySweep::ota_default().frequencies();
        assert!((freqs[0] - 1.0).abs() < 1e-12);
        assert!((freqs.last().unwrap() - 1e9).abs() / 1e9 < 1e-9);
    }
}
