//! Sparse (CSR) matrix storage and the symbolic sparsity pattern.
//!
//! MNA assembly is split into a *symbolic* phase — walk the circuit once and
//! record which `(row, col)` cells can ever be non-zero — and a *numeric*
//! phase that only writes values into the pre-computed slots. The pattern is
//! shared (via [`Arc`]) between the value matrix and whichever
//! [`SolverBackend`](super::SolverBackend) factors it, so repeated solves
//! (Newton iterations, AC frequency points) never re-derive structure or
//! re-allocate.

use super::{DenseMatrix, Scalar};
use std::sync::Arc;

/// The symbolic structure of a sparse matrix in compressed-sparse-row form.
///
/// A pattern is immutable once built; numeric matrices ([`CsrMatrix`]) and
/// solver backends share it by reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparsityPattern {
    n: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
}

impl SparsityPattern {
    /// Matrix dimension (the pattern is always square).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of structurally non-zero entries.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Value-array range of `row`'s entries.
    pub fn row_range(&self, row: usize) -> std::ops::Range<usize> {
        self.row_ptr[row]..self.row_ptr[row + 1]
    }

    /// Column indices of `row`'s entries (ascending).
    pub fn row_cols(&self, row: usize) -> &[usize] {
        &self.col_idx[self.row_range(row)]
    }

    /// Value-array slot of cell `(row, col)`, or `None` if the cell is
    /// structurally zero.
    pub fn position(&self, row: usize, col: usize) -> Option<usize> {
        let range = self.row_range(row);
        self.col_idx[range.clone()]
            .binary_search(&col)
            .ok()
            .map(|offset| range.start + offset)
    }
}

/// Accumulates `(row, col)` cells during the symbolic phase and freezes them
/// into a [`SparsityPattern`].
#[derive(Debug)]
pub struct PatternBuilder {
    rows: Vec<Vec<usize>>,
}

impl PatternBuilder {
    /// Starts a builder for an `n × n` pattern.
    pub fn new(n: usize) -> Self {
        PatternBuilder {
            rows: vec![Vec::new(); n],
        }
    }

    /// Marks cell `(row, col)` as structurally non-zero (duplicates are fine).
    pub fn entry(&mut self, row: usize, col: usize) {
        self.rows[row].push(col);
    }

    /// Sorts, deduplicates and freezes the pattern.
    pub fn build(mut self) -> Arc<SparsityPattern> {
        let n = self.rows.len();
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::new();
        row_ptr.push(0);
        for row in &mut self.rows {
            row.sort_unstable();
            row.dedup();
            col_idx.extend_from_slice(row);
            row_ptr.push(col_idx.len());
        }
        Arc::new(SparsityPattern {
            n,
            row_ptr,
            col_idx,
        })
    }
}

/// Numeric values over a shared [`SparsityPattern`].
///
/// The MNA "stamp" operation becomes [`CsrMatrix::add_slot`] on a
/// pre-resolved slot index — no hashing, no searching, no allocation on the
/// per-iteration path.
#[derive(Debug, Clone)]
pub struct CsrMatrix<T> {
    pattern: Arc<SparsityPattern>,
    values: Vec<T>,
}

impl<T: Scalar> CsrMatrix<T> {
    /// Creates a zero-valued matrix over `pattern`.
    pub fn new(pattern: Arc<SparsityPattern>) -> Self {
        let nnz = pattern.nnz();
        CsrMatrix {
            pattern,
            values: vec![T::zero(); nnz],
        }
    }

    /// The shared symbolic pattern.
    pub fn pattern(&self) -> &Arc<SparsityPattern> {
        &self.pattern
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.pattern.n()
    }

    /// Resets every value to zero without touching the structure.
    pub fn clear(&mut self) {
        for value in &mut self.values {
            *value = T::zero();
        }
    }

    /// Adds `value` at a pre-resolved slot (from [`SparsityPattern::position`]).
    #[inline]
    pub fn add_slot(&mut self, slot: usize, value: T) {
        self.values[slot] = self.values[slot] + value;
    }

    /// Adds `value` at cell `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the cell is structurally zero — the symbolic phase must have
    /// recorded every cell the numeric phase writes.
    pub fn add(&mut self, row: usize, col: usize, value: T) {
        let slot = self
            .pattern
            .position(row, col)
            .expect("cell is outside the sparsity pattern");
        self.add_slot(slot, value);
    }

    /// The value array, indexed by slot.
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Mutable value array, indexed by slot.
    pub fn values_mut(&mut self) -> &mut [T] {
        &mut self.values
    }

    /// Scatters the values into a dense matrix (clearing it first).
    pub fn scatter_into(&self, dense: &mut DenseMatrix<T>) {
        dense.clear();
        for row in 0..self.pattern.n() {
            let range = self.pattern.row_range(row);
            for (offset, &col) in self.pattern.row_cols(row).iter().enumerate() {
                dense[(row, col)] = self.values[range.start + offset];
            }
        }
    }

    /// Matrix–vector product `A·x` (used by tests and residual checks).
    pub fn mul_vec(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.pattern.n(), "dimension mismatch in mul_vec");
        (0..self.pattern.n())
            .map(|row| {
                let range = self.pattern.row_range(row);
                let mut acc = T::zero();
                for (offset, &col) in self.pattern.row_cols(row).iter().enumerate() {
                    acc = acc + self.values[range.start + offset] * x[col];
                }
                acc
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_pattern() -> Arc<SparsityPattern> {
        let mut builder = PatternBuilder::new(3);
        builder.entry(0, 0);
        builder.entry(0, 2);
        builder.entry(1, 1);
        builder.entry(2, 0);
        builder.entry(2, 2);
        builder.entry(0, 0); // duplicate collapses
        builder.build()
    }

    #[test]
    fn builder_sorts_and_dedups() {
        let pattern = small_pattern();
        assert_eq!(pattern.n(), 3);
        assert_eq!(pattern.nnz(), 5);
        assert_eq!(pattern.row_cols(0), &[0, 2]);
        assert_eq!(pattern.row_cols(1), &[1]);
        assert!(pattern.position(0, 2).is_some());
        assert!(pattern.position(0, 1).is_none());
    }

    #[test]
    fn add_accumulates_and_scatter_matches_dense() {
        let pattern = small_pattern();
        let mut m: CsrMatrix<f64> = CsrMatrix::new(Arc::clone(&pattern));
        m.add(0, 0, 2.0);
        m.add(0, 0, 1.0);
        m.add(0, 2, -1.0);
        m.add(1, 1, 4.0);
        m.add(2, 0, 5.0);
        m.add(2, 2, 6.0);
        let mut dense: DenseMatrix<f64> = DenseMatrix::zeros(3, 3);
        m.scatter_into(&mut dense);
        assert_eq!(dense[(0, 0)], 3.0);
        assert_eq!(dense[(0, 2)], -1.0);
        assert_eq!(dense[(1, 1)], 4.0);
        assert_eq!(dense[(0, 1)], 0.0);
        assert_eq!(m.mul_vec(&[1.0, 1.0, 1.0]), dense.mul_vec(&[1.0, 1.0, 1.0]));
        m.clear();
        assert!(m.values().iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "outside the sparsity pattern")]
    fn writing_outside_the_pattern_panics() {
        let pattern = small_pattern();
        let mut m: CsrMatrix<f64> = CsrMatrix::new(pattern);
        m.add(1, 0, 1.0);
    }
}
