//! Dense linear algebra used by the MNA solver.
//!
//! Circuits in this workspace are small (tens of nodes), so a dense LU
//! factorisation with partial pivoting is both simpler and faster than a
//! sparse solver would be at this scale.

pub mod complex;
pub mod lu;
pub mod matrix;

pub use complex::Complex;
pub use lu::solve_in_place;
pub use matrix::DenseMatrix;

/// Scalar field abstraction letting the same LU routine factor real (DC) and
/// complex (AC) MNA systems.
pub trait Scalar:
    Copy
    + PartialEq
    + std::ops::Add<Output = Self>
    + std::ops::Sub<Output = Self>
    + std::ops::Mul<Output = Self>
    + std::ops::Div<Output = Self>
    + std::ops::Neg<Output = Self>
    + std::fmt::Debug
{
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Magnitude used for pivot selection and convergence checks.
    fn norm(self) -> f64;
}

impl Scalar for f64 {
    fn zero() -> Self {
        0.0
    }
    fn one() -> Self {
        1.0
    }
    fn norm(self) -> f64 {
        self.abs()
    }
}

impl Scalar for Complex {
    fn zero() -> Self {
        Complex::ZERO
    }
    fn one() -> Self {
        Complex::ONE
    }
    fn norm(self) -> f64 {
        self.abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_impls_agree_with_arithmetic() {
        assert_eq!(<f64 as Scalar>::zero(), 0.0);
        assert_eq!(<f64 as Scalar>::one(), 1.0);
        assert_eq!((-3.0f64).norm(), 3.0);
        assert_eq!(Complex::zero(), Complex::ZERO);
        assert!((Complex::new(3.0, 4.0).norm() - 5.0).abs() < 1e-12);
    }
}
