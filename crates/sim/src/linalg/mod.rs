//! Linear algebra used by the MNA solver.
//!
//! Assembly is split into a symbolic phase ([`sparse::SparsityPattern`],
//! derived once per MNA layout) and a numeric value-fill over the shared CSR
//! structure ([`sparse::CsrMatrix`]). Solving goes through the pluggable
//! [`SolverBackend`] seam: [`backend::DenseLuBackend`] scatters into a dense
//! matrix and runs the classic partial-pivot LU (the default — bit-identical
//! to the historical dense path), while [`backend::SparseLuBackend`] is a
//! left-looking sparse LU that skips the dense scatter entirely.

pub mod backend;
pub mod complex;
pub mod lu;
pub mod matrix;
pub mod sparse;

pub use backend::{backend_of, DenseLuBackend, SolverBackend, SolverKind, SparseLuBackend};
pub use complex::Complex;
pub use lu::solve_in_place;
pub use matrix::DenseMatrix;
pub use sparse::{CsrMatrix, PatternBuilder, SparsityPattern};

/// Scalar field abstraction letting the same LU routine factor real (DC) and
/// complex (AC) MNA systems.
pub trait Scalar:
    Copy
    + PartialEq
    + std::ops::Add<Output = Self>
    + std::ops::Sub<Output = Self>
    + std::ops::Mul<Output = Self>
    + std::ops::Div<Output = Self>
    + std::ops::Neg<Output = Self>
    + std::fmt::Debug
{
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Magnitude used for pivot selection and convergence checks.
    fn norm(self) -> f64;
}

impl Scalar for f64 {
    fn zero() -> Self {
        0.0
    }
    fn one() -> Self {
        1.0
    }
    fn norm(self) -> f64 {
        self.abs()
    }
}

impl Scalar for Complex {
    fn zero() -> Self {
        Complex::ZERO
    }
    fn one() -> Self {
        Complex::ONE
    }
    fn norm(self) -> f64 {
        self.abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_impls_agree_with_arithmetic() {
        assert_eq!(<f64 as Scalar>::zero(), 0.0);
        assert_eq!(<f64 as Scalar>::one(), 1.0);
        assert_eq!((-3.0f64).norm(), 3.0);
        assert_eq!(Complex::zero(), Complex::ZERO);
        assert!((Complex::new(3.0, 4.0).norm() - 5.0).abs() < 1e-12);
    }
}
