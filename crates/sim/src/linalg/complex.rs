//! A minimal complex number type for AC analysis.
//!
//! Only the operations needed by the MNA solver and measurement code are
//! implemented; this keeps the workspace free of extra numeric dependencies.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A double-precision complex number.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    pub fn from_real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates (magnitude, phase in radians).
    pub fn from_polar(magnitude: f64, phase: f64) -> Self {
        Complex {
            re: magnitude * phase.cos(),
            im: magnitude * phase.sin(),
        }
    }

    /// Magnitude (modulus).
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Phase angle in radians in `(-π, π]`.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Phase angle in degrees.
    pub fn arg_deg(self) -> f64 {
        self.arg().to_degrees()
    }

    /// Magnitude in decibels (`20·log10(|z|)`).
    pub fn abs_db(self) -> f64 {
        20.0 * self.abs().log10()
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Multiplicative inverse.
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Complex {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// Returns `true` if either component is NaN.
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::from_real(re)
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex {
    fn sub_assign(&mut self, rhs: Complex) {
        *self = *self - rhs;
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex {
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    fn mul(self, rhs: f64) -> Complex {
        Complex::new(self.re * rhs, self.im * rhs)
    }
}

impl Div for Complex {
    type Output = Complex;
    // Division via the reciprocal is the standard numerically-stable form.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.recip()
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}j", self.re, self.im)
        } else {
            write!(f, "{}{}j", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(-3.0, 0.5);
        assert_eq!(a + b, Complex::new(-2.0, 2.5));
        assert_eq!(a - b, Complex::new(4.0, 1.5));
        let prod = a * b;
        assert!((prod.re - (1.0 * -3.0 - 2.0 * 0.5)).abs() < 1e-12);
        assert!((prod.im - (1.0 * 0.5 + 2.0 * -3.0)).abs() < 1e-12);
        let div = prod / b;
        assert!((div.re - a.re).abs() < 1e-12 && (div.im - a.im).abs() < 1e-12);
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex::from_polar(2.0, std::f64::consts::FRAC_PI_4);
        assert!((z.abs() - 2.0).abs() < 1e-12);
        assert!((z.arg() - std::f64::consts::FRAC_PI_4).abs() < 1e-12);
        assert!((z.arg_deg() - 45.0).abs() < 1e-9);
    }

    #[test]
    fn db_conversion() {
        let z = Complex::from_real(100.0);
        assert!((z.abs_db() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn recip_and_conj() {
        let z = Complex::new(3.0, -4.0);
        assert!((z.abs() - 5.0).abs() < 1e-12);
        let inv = z.recip();
        let one = z * inv;
        assert!((one.re - 1.0).abs() < 1e-12 && one.im.abs() < 1e-12);
        assert_eq!(z.conj(), Complex::new(3.0, 4.0));
        assert!(!z.is_nan());
        assert!(Complex::new(f64::NAN, 0.0).is_nan());
    }
}
