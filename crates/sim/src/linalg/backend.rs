//! Pluggable linear-solver backends behind the [`SolverBackend`] trait.
//!
//! Both DC (real) and AC (complex) analyses hand the backend the same CSR
//! value matrix; the backend owns whatever scratch space its factorisation
//! needs and reuses it across solves. [`DenseLuBackend`] reproduces the
//! historical dense path bit-for-bit (scatter + partial-pivot LU);
//! [`SparseLuBackend`] is a left-looking (Gilbert–Peierls style) sparse LU
//! with partial pivoting that never forms the dense matrix.

use super::sparse::{CsrMatrix, SparsityPattern};
use super::{solve_in_place, DenseMatrix, Scalar};
use crate::error::{Result, SimError};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Which linear-solver backend a flow uses for its MNA systems.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum SolverKind {
    /// Scatter into a dense matrix and LU-factor it (the historical path).
    #[default]
    Dense,
    /// Sparse left-looking LU with partial pivoting over the CSR pattern.
    Sparse,
}

impl SolverKind {
    /// Stable lowercase name (used by the CLI and manifests).
    pub fn as_str(self) -> &'static str {
        match self {
            SolverKind::Dense => "dense",
            SolverKind::Sparse => "sparse",
        }
    }
}

impl std::fmt::Display for SolverKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for SolverKind {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "dense" => Ok(SolverKind::Dense),
            "sparse" => Ok(SolverKind::Sparse),
            other => Err(format!("unknown solver `{other}` (expected dense|sparse)")),
        }
    }
}

/// A linear solver over the shared CSR representation.
///
/// [`prepare`](SolverBackend::prepare) runs once per sparsity pattern (the
/// symbolic phase); [`solve`](SolverBackend::solve) may then be called any
/// number of times with different values over the same pattern, reusing the
/// backend's internal workspaces.
pub trait SolverBackend<T: Scalar> {
    /// Stable backend name for diagnostics.
    fn name(&self) -> &'static str;

    /// Performs the symbolic phase: size workspaces to `pattern`.
    fn prepare(&mut self, pattern: &Arc<SparsityPattern>);

    /// Solves `A·x = b` in place (`rhs` becomes the solution).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::SingularMatrix`] when elimination hits a pivot
    /// smaller than `1e-300` in magnitude (or a non-finite one).
    fn solve(&mut self, matrix: &CsrMatrix<T>, rhs: &mut [T]) -> Result<()>;
}

/// Builds the backend for `kind` over scalar field `T`.
pub fn backend_of<T: Scalar + 'static>(kind: SolverKind) -> Box<dyn SolverBackend<T>> {
    match kind {
        SolverKind::Dense => Box::new(DenseLuBackend::new()),
        SolverKind::Sparse => Box::new(SparseLuBackend::new()),
    }
}

/// The historical dense path: scatter the CSR values into a dense matrix and
/// run the in-place partial-pivot LU. Numerically bit-identical to the
/// pre-backend code (same scatter order, same factorisation).
#[derive(Debug)]
pub struct DenseLuBackend<T> {
    dense: DenseMatrix<T>,
}

impl<T: Scalar> DenseLuBackend<T> {
    /// Creates an unprepared backend.
    pub fn new() -> Self {
        DenseLuBackend {
            dense: DenseMatrix::zeros(0, 0),
        }
    }
}

impl<T: Scalar> Default for DenseLuBackend<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Scalar> SolverBackend<T> for DenseLuBackend<T> {
    fn name(&self) -> &'static str {
        "dense"
    }

    fn prepare(&mut self, pattern: &Arc<SparsityPattern>) {
        self.dense = DenseMatrix::zeros(pattern.n(), pattern.n());
    }

    fn solve(&mut self, matrix: &CsrMatrix<T>, rhs: &mut [T]) -> Result<()> {
        matrix.scatter_into(&mut self.dense);
        solve_in_place(&mut self.dense, rhs)
    }
}

const PIVOT_FLOOR: f64 = 1e-300;
const UNPIVOTED: usize = usize::MAX;

/// Left-looking sparse LU with partial pivoting.
///
/// Columns are eliminated against the already-factored columns through a
/// dense accumulator with generation marks, so work per column is
/// proportional to the fill actually touched. L and U columns keep their
/// allocations across solves; only the values are rebuilt.
#[derive(Debug)]
pub struct SparseLuBackend<T> {
    n: usize,
    // Column-compressed view of the (row-compressed) pattern: for column j,
    // the rows that hold it and the CSR slot of each value.
    csc_ptr: Vec<usize>,
    csc_row: Vec<usize>,
    csc_slot: Vec<usize>,
    // Factors: L is unit-lower (pivot rows excluded), U strictly-upper by
    // pivot order plus a separate diagonal.
    l_cols: Vec<Vec<(usize, T)>>,
    u_cols: Vec<Vec<(usize, T)>>,
    u_diag: Vec<T>,
    // p[k] = original row pivotal at elimination step k; pinv is its inverse.
    p: Vec<usize>,
    pinv: Vec<usize>,
    // Dense accumulator with generation marks and the touched-row list.
    x: Vec<T>,
    stamp: Vec<u64>,
    pass: u64,
    touched: Vec<usize>,
    y: Vec<T>,
}

impl<T: Scalar> SparseLuBackend<T> {
    /// Creates an unprepared backend.
    pub fn new() -> Self {
        SparseLuBackend {
            n: 0,
            csc_ptr: Vec::new(),
            csc_row: Vec::new(),
            csc_slot: Vec::new(),
            l_cols: Vec::new(),
            u_cols: Vec::new(),
            u_diag: Vec::new(),
            p: Vec::new(),
            pinv: Vec::new(),
            x: Vec::new(),
            stamp: Vec::new(),
            pass: 0,
            touched: Vec::new(),
            y: Vec::new(),
        }
    }

    fn factor(&mut self, matrix: &CsrMatrix<T>) -> Result<()> {
        let n = self.n;
        let values = matrix.values();
        self.pinv.iter_mut().for_each(|v| *v = UNPIVOTED);
        for j in 0..n {
            self.pass += 1;
            let pass = self.pass;
            self.touched.clear();
            // Scatter A(:,j) into the accumulator.
            for t in self.csc_ptr[j]..self.csc_ptr[j + 1] {
                let row = self.csc_row[t];
                self.x[row] = values[self.csc_slot[t]];
                self.stamp[row] = pass;
                self.touched.push(row);
            }
            // Eliminate against the already-pivoted columns, in pivot order.
            let u_col = &mut self.u_cols[j];
            u_col.clear();
            for k in 0..j {
                let pivot_row = self.p[k];
                if self.stamp[pivot_row] != pass {
                    continue;
                }
                let ukj = self.x[pivot_row];
                if ukj.norm() == 0.0 {
                    continue;
                }
                u_col.push((k, ukj));
                for &(row, lval) in &self.l_cols[k] {
                    if self.stamp[row] == pass {
                        self.x[row] = self.x[row] - lval * ukj;
                    } else {
                        self.x[row] = T::zero() - lval * ukj;
                        self.stamp[row] = pass;
                        self.touched.push(row);
                    }
                }
            }
            // Partial pivot: largest magnitude among not-yet-pivotal rows.
            let mut pivot_row = UNPIVOTED;
            let mut pivot_norm = 0.0f64;
            for &row in &self.touched {
                if self.pinv[row] != UNPIVOTED {
                    continue;
                }
                let norm = self.x[row].norm();
                if pivot_row == UNPIVOTED || norm > pivot_norm {
                    pivot_row = row;
                    pivot_norm = norm;
                }
            }
            if pivot_row == UNPIVOTED || pivot_norm < PIVOT_FLOOR || !pivot_norm.is_finite() {
                return Err(SimError::SingularMatrix {
                    pivot: j,
                    unknown: None,
                });
            }
            let pivot = self.x[pivot_row];
            self.p[j] = pivot_row;
            self.pinv[pivot_row] = j;
            self.u_diag[j] = pivot;
            let l_col = &mut self.l_cols[j];
            l_col.clear();
            for &row in &self.touched {
                if self.pinv[row] != UNPIVOTED {
                    continue;
                }
                let value = self.x[row];
                if value.norm() != 0.0 {
                    l_col.push((row, value / pivot));
                }
            }
        }
        Ok(())
    }
}

impl<T: Scalar> Default for SparseLuBackend<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Scalar> SolverBackend<T> for SparseLuBackend<T> {
    fn name(&self) -> &'static str {
        "sparse"
    }

    fn prepare(&mut self, pattern: &Arc<SparsityPattern>) {
        let n = pattern.n();
        self.n = n;
        // Transpose the CSR structure into CSC once; rows come out ascending
        // per column because the scan is row-major.
        let mut cols: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
        for row in 0..n {
            let range = pattern.row_range(row);
            for (offset, &col) in pattern.row_cols(row).iter().enumerate() {
                cols[col].push((row, range.start + offset));
            }
        }
        self.csc_ptr.clear();
        self.csc_row.clear();
        self.csc_slot.clear();
        self.csc_ptr.push(0);
        for col in &cols {
            for &(row, slot) in col {
                self.csc_row.push(row);
                self.csc_slot.push(slot);
            }
            self.csc_ptr.push(self.csc_row.len());
        }
        self.l_cols = vec![Vec::new(); n];
        self.u_cols = vec![Vec::new(); n];
        self.u_diag = vec![T::zero(); n];
        self.p = vec![UNPIVOTED; n];
        self.pinv = vec![UNPIVOTED; n];
        self.x = vec![T::zero(); n];
        self.stamp = vec![0; n];
        self.pass = 0;
        self.touched = Vec::with_capacity(n);
        self.y = vec![T::zero(); n];
    }

    fn solve(&mut self, matrix: &CsrMatrix<T>, rhs: &mut [T]) -> Result<()> {
        assert_eq!(matrix.n(), self.n, "backend prepared for a different size");
        assert_eq!(rhs.len(), self.n, "rhs length must match matrix size");
        self.factor(matrix)?;
        let n = self.n;
        // Forward substitution in pivot order: L·y = P·b.
        for (row, &b) in rhs.iter().enumerate() {
            self.y[self.pinv[row]] = b;
        }
        for k in 0..n {
            let yk = self.y[k];
            if yk.norm() == 0.0 {
                continue;
            }
            for &(row, lval) in &self.l_cols[k] {
                let target = self.pinv[row];
                self.y[target] = self.y[target] - lval * yk;
            }
        }
        // Backward substitution: U·x = y. No column pivoting, so x is in
        // natural order.
        for j in (0..n).rev() {
            let xj = self.y[j] / self.u_diag[j];
            rhs[j] = xj;
            if xj.norm() == 0.0 {
                continue;
            }
            for &(k, uval) in &self.u_cols[j] {
                self.y[k] = self.y[k] - uval * xj;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::sparse::PatternBuilder;
    use crate::linalg::Complex;

    /// Builds a banded, diagonally dominant sparse system with a
    /// deterministic pseudo-random fill and returns (pattern, matrix).
    fn random_system(n: usize, seed: u64) -> CsrMatrix<f64> {
        let mut builder = PatternBuilder::new(n);
        for i in 0..n {
            builder.entry(i, i);
            if i + 1 < n {
                builder.entry(i, i + 1);
                builder.entry(i + 1, i);
            }
            if i + 4 < n {
                builder.entry(i, i + 4);
                builder.entry(i + 4, i);
            }
        }
        let pattern = builder.build();
        let mut m = CsrMatrix::new(pattern);
        let mut state = seed
            .wrapping_mul(2862933555777941757)
            .wrapping_add(3037000493);
        let mut next = move || {
            state = state
                .wrapping_mul(2862933555777941757)
                .wrapping_add(3037000493);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for row in 0..n {
            for &col in &m.pattern().row_cols(row).to_vec() {
                let v = if row == col {
                    next() + n as f64
                } else {
                    next()
                };
                m.add(row, col, v);
            }
        }
        m
    }

    #[test]
    fn sparse_matches_dense_on_random_systems() {
        for seed in 0..20u64 {
            let n = 3 + (seed as usize % 40);
            let m = random_system(n, seed + 1);
            let x_true: Vec<f64> = (0..n).map(|i| (i as f64) - 2.5).collect();
            let b = m.mul_vec(&x_true);

            let mut dense = DenseLuBackend::new();
            dense.prepare(m.pattern());
            let mut xd = b.clone();
            dense.solve(&m, &mut xd).unwrap();

            let mut sparse = SparseLuBackend::new();
            sparse.prepare(m.pattern());
            let mut xs = b.clone();
            sparse.solve(&m, &mut xs).unwrap();

            for ((d, s), want) in xd.iter().zip(xs.iter()).zip(x_true.iter()) {
                assert!((d - want).abs() < 1e-8, "dense: {d} vs {want}");
                assert!((s - want).abs() < 1e-8, "sparse: {s} vs {want}");
                assert!((d - s).abs() < 1e-9, "backends disagree: {d} vs {s}");
            }
        }
    }

    #[test]
    fn sparse_backend_is_reusable_across_solves() {
        let m1 = random_system(24, 7);
        let m2 = random_system(24, 8);
        let mut sparse = SparseLuBackend::new();
        sparse.prepare(m1.pattern());
        for m in [&m1, &m2, &m1] {
            let x_true: Vec<f64> = (0..24).map(|i| (i as f64).sin() + 2.0).collect();
            let mut x = m.mul_vec(&x_true);
            sparse.solve(m, &mut x).unwrap();
            for (got, want) in x.iter().zip(x_true.iter()) {
                assert!((got - want).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn sparse_handles_systems_that_require_pivoting() {
        // Zero diagonal head forces row exchanges.
        let mut builder = PatternBuilder::new(3);
        for i in 0..3 {
            for j in 0..3 {
                builder.entry(i, j);
            }
        }
        let pattern = builder.build();
        let mut m: CsrMatrix<f64> = CsrMatrix::new(pattern);
        let entries = [
            (0, 0, 0.0),
            (0, 1, 2.0),
            (0, 2, 1.0),
            (1, 0, 1.0),
            (1, 1, 1.0),
            (1, 2, 1.0),
            (2, 0, 2.0),
            (2, 1, 0.0),
            (2, 2, -1.0),
        ];
        for (r, c, v) in entries {
            m.add(r, c, v);
        }
        let x_true = [1.0, -2.0, 3.0];
        let mut b = m.mul_vec(&x_true);
        let mut sparse = SparseLuBackend::new();
        sparse.prepare(m.pattern());
        sparse.solve(&m, &mut b).unwrap();
        for (got, want) in b.iter().zip(x_true.iter()) {
            assert!((got - want).abs() < 1e-10, "got {got}, want {want}");
        }
    }

    #[test]
    fn sparse_detects_singular_matrices() {
        let mut builder = PatternBuilder::new(2);
        builder.entry(0, 0);
        builder.entry(0, 1);
        builder.entry(1, 0);
        builder.entry(1, 1);
        let pattern = builder.build();
        let mut m: CsrMatrix<f64> = CsrMatrix::new(pattern);
        m.add(0, 0, 1.0);
        m.add(0, 1, 2.0);
        m.add(1, 0, 2.0);
        m.add(1, 1, 4.0);
        let mut sparse = SparseLuBackend::new();
        sparse.prepare(m.pattern());
        let mut b = vec![1.0, 2.0];
        let err = sparse.solve(&m, &mut b).unwrap_err();
        assert!(matches!(err, SimError::SingularMatrix { .. }));
    }

    #[test]
    fn sparse_solves_complex_systems() {
        let mut builder = PatternBuilder::new(2);
        builder.entry(0, 0);
        builder.entry(0, 1);
        builder.entry(1, 0);
        builder.entry(1, 1);
        let pattern = builder.build();
        let mut m: CsrMatrix<Complex> = CsrMatrix::new(pattern);
        m.add(0, 0, Complex::new(1.0, 1.0));
        m.add(0, 1, Complex::new(0.5, 0.0));
        m.add(1, 0, Complex::new(0.0, -0.5));
        m.add(1, 1, Complex::new(2.0, -1.0));
        let x_true = [Complex::new(1.0, -1.0), Complex::new(2.0, 0.5)];
        let mut b = m.mul_vec(&x_true);
        let mut sparse = SparseLuBackend::new();
        sparse.prepare(m.pattern());
        sparse.solve(&m, &mut b).unwrap();
        for (got, want) in b.iter().zip(x_true.iter()) {
            assert!((*got - *want).abs() < 1e-10);
        }
    }

    #[test]
    fn backend_of_builds_both_kinds() {
        let dense: Box<dyn SolverBackend<f64>> = backend_of(SolverKind::Dense);
        let sparse: Box<dyn SolverBackend<f64>> = backend_of(SolverKind::Sparse);
        assert_eq!(dense.name(), "dense");
        assert_eq!(sparse.name(), "sparse");
    }

    #[test]
    fn solver_kind_parses_and_displays() {
        assert_eq!("dense".parse::<SolverKind>().unwrap(), SolverKind::Dense);
        assert_eq!("SPARSE".parse::<SolverKind>().unwrap(), SolverKind::Sparse);
        assert!("cholesky".parse::<SolverKind>().is_err());
        assert_eq!(SolverKind::Sparse.to_string(), "sparse");
        assert_eq!(SolverKind::default(), SolverKind::Dense);
    }
}
