//! LU factorisation with partial pivoting and in-place solve.

use super::{DenseMatrix, Scalar};
use crate::error::{Result, SimError};

/// Solves `A·x = b` in place: `a` is overwritten with its LU factors and `b`
/// with the solution vector.
///
/// # Errors
///
/// Returns [`SimError::SingularMatrix`] if a pivot smaller than `1e-300` in
/// magnitude is encountered.
///
/// # Panics
///
/// Panics if `a` is not square or `b.len() != a.rows()`.
pub fn solve_in_place<T: Scalar>(a: &mut DenseMatrix<T>, b: &mut [T]) -> Result<()> {
    let n = a.rows();
    assert_eq!(a.cols(), n, "matrix must be square");
    assert_eq!(b.len(), n, "rhs length must match matrix size");

    for k in 0..n {
        // Partial pivoting: find the row with the largest magnitude in column k.
        let mut pivot_row = k;
        let mut pivot_norm = a[(k, k)].norm();
        for i in (k + 1)..n {
            let norm = a[(i, k)].norm();
            if norm > pivot_norm {
                pivot_norm = norm;
                pivot_row = i;
            }
        }
        if pivot_norm < 1e-300 || !pivot_norm.is_finite() {
            return Err(SimError::SingularMatrix {
                pivot: k,
                unknown: None,
            });
        }
        if pivot_row != k {
            a.swap_rows(k, pivot_row);
            b.swap(k, pivot_row);
        }
        let pivot = a[(k, k)];
        for i in (k + 1)..n {
            let factor = a[(i, k)] / pivot;
            if factor.norm() == 0.0 {
                continue;
            }
            a[(i, k)] = factor;
            for j in (k + 1)..n {
                let akj = a[(k, j)];
                a[(i, j)] = a[(i, j)] - factor * akj;
            }
            b[i] = b[i] - factor * b[k];
        }
    }
    // Back substitution.
    for i in (0..n).rev() {
        let mut acc = b[i];
        for j in (i + 1)..n {
            acc = acc - a[(i, j)] * b[j];
        }
        b[i] = acc / a[(i, i)];
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::Complex;

    #[test]
    fn solves_small_real_system() {
        // 2x + y = 5 ; x + 3y = 10  ->  x = 1, y = 3
        let mut a = DenseMatrix::from_rows(vec![vec![2.0, 1.0], vec![1.0, 3.0]]);
        let mut b = vec![5.0, 10.0];
        solve_in_place(&mut a, &mut b).unwrap();
        assert!((b[0] - 1.0).abs() < 1e-12);
        assert!((b[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solves_system_requiring_pivoting() {
        // Zero on the first diagonal entry forces a row swap.
        let mut a = DenseMatrix::from_rows(vec![
            vec![0.0, 2.0, 1.0],
            vec![1.0, 1.0, 1.0],
            vec![2.0, 0.0, -1.0],
        ]);
        let original = a.clone();
        let x_expected = [1.0, -2.0, 3.0];
        let mut b = original.mul_vec(&x_expected);
        solve_in_place(&mut a, &mut b).unwrap();
        for (got, want) in b.iter().zip(x_expected.iter()) {
            assert!((got - want).abs() < 1e-10, "got {got}, want {want}");
        }
    }

    #[test]
    fn detects_singular_matrix() {
        let mut a = DenseMatrix::from_rows(vec![vec![1.0, 2.0], vec![2.0, 4.0]]);
        let mut b = vec![1.0, 2.0];
        let err = solve_in_place(&mut a, &mut b).unwrap_err();
        assert!(matches!(err, SimError::SingularMatrix { .. }));
    }

    #[test]
    fn solves_complex_system() {
        // (1+j)·x = 2j  ->  x = 1 + j
        let mut a: DenseMatrix<Complex> = DenseMatrix::zeros(1, 1);
        a[(0, 0)] = Complex::new(1.0, 1.0);
        let mut b = vec![Complex::new(0.0, 2.0)];
        solve_in_place(&mut a, &mut b).unwrap();
        assert!((b[0].re - 1.0).abs() < 1e-12);
        assert!((b[0].im - 1.0).abs() < 1e-12);
    }

    #[test]
    fn random_system_residual_is_small() {
        // Deterministic pseudo-random fill (no RNG dependency needed here).
        let n = 12;
        let mut a: DenseMatrix<f64> = DenseMatrix::zeros(n, n);
        let mut seed = 1u64;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = next();
            }
            a[(i, i)] += 4.0; // diagonally dominant -> well conditioned
        }
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64) - 3.5).collect();
        let b = a.mul_vec(&x_true);
        let mut lu = a.clone();
        let mut x = b.clone();
        solve_in_place(&mut lu, &mut x).unwrap();
        for (got, want) in x.iter().zip(x_true.iter()) {
            assert!((got - want).abs() < 1e-9);
        }
    }
}
