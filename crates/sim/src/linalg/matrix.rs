//! Dense, row-major matrix storage.

use super::Scalar;

/// A dense, row-major `n × n` (or `rows × cols`) matrix over a [`Scalar`] field.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Scalar> DenseMatrix<T> {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![T::zero(); rows * cols],
        }
    }

    /// Creates an identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = T::one();
        }
        m
    }

    /// Creates a matrix from a nested vector (each inner vector is a row).
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: Vec<Vec<T>>) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, Vec::len);
        assert!(
            rows.iter().all(|r| r.len() == ncols),
            "all rows must have the same length"
        );
        DenseMatrix {
            rows: nrows,
            cols: ncols,
            data: rows.into_iter().flatten().collect(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Resets every entry to zero without reallocating.
    pub fn clear(&mut self) {
        for entry in &mut self.data {
            *entry = T::zero();
        }
    }

    /// Adds `value` to entry `(row, col)` — the fundamental MNA "stamp" operation.
    pub fn add(&mut self, row: usize, col: usize, value: T) {
        let idx = self.index(row, col);
        self.data[idx] = self.data[idx] + value;
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.cols, "dimension mismatch in mul_vec");
        (0..self.rows)
            .map(|i| {
                let mut acc = T::zero();
                for j in 0..self.cols {
                    acc = acc + self[(i, j)] * x[j];
                }
                acc
            })
            .collect()
    }

    /// Swaps two rows in place.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for j in 0..self.cols {
            let ia = self.index(a, j);
            let ib = self.index(b, j);
            self.data.swap(ia, ib);
        }
    }

    /// Maximum absolute value of any entry (infinity norm of the flattened matrix).
    pub fn max_norm(&self) -> f64 {
        self.data.iter().map(|v| v.norm()).fold(0.0, f64::max)
    }

    #[inline]
    fn index(&self, row: usize, col: usize) -> usize {
        debug_assert!(row < self.rows && col < self.cols, "index out of bounds");
        row * self.cols + col
    }
}

impl<T: Scalar> std::ops::Index<(usize, usize)> for DenseMatrix<T> {
    type Output = T;
    fn index(&self, (row, col): (usize, usize)) -> &T {
        &self.data[row * self.cols + col]
    }
}

impl<T: Scalar> std::ops::IndexMut<(usize, usize)> for DenseMatrix<T> {
    fn index_mut(&mut self, (row, col): (usize, usize)) -> &mut T {
        &mut self.data[row * self.cols + col]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::Complex;

    #[test]
    fn zeros_identity_and_indexing() {
        let mut m: DenseMatrix<f64> = DenseMatrix::zeros(3, 3);
        assert_eq!(m[(1, 2)], 0.0);
        m[(1, 2)] = 5.0;
        m.add(1, 2, 2.5);
        assert_eq!(m[(1, 2)], 7.5);
        let id: DenseMatrix<f64> = DenseMatrix::identity(2);
        assert_eq!(id[(0, 0)], 1.0);
        assert_eq!(id[(0, 1)], 0.0);
    }

    #[test]
    fn mul_vec_matches_hand_computation() {
        let m = DenseMatrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        let y = m.mul_vec(&[1.0, 1.0]);
        assert_eq!(y, vec![3.0, 7.0]);
    }

    #[test]
    fn swap_rows_and_clear() {
        let mut m = DenseMatrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        m.swap_rows(0, 1);
        assert_eq!(m[(0, 0)], 3.0);
        assert_eq!(m[(1, 1)], 2.0);
        m.clear();
        assert_eq!(m.max_norm(), 0.0);
    }

    #[test]
    fn complex_matrices_work() {
        let mut m: DenseMatrix<Complex> = DenseMatrix::zeros(2, 2);
        m[(0, 0)] = Complex::new(1.0, 1.0);
        m[(1, 1)] = Complex::new(0.0, -2.0);
        let y = m.mul_vec(&[Complex::ONE, Complex::ONE]);
        assert_eq!(y[0], Complex::new(1.0, 1.0));
        assert_eq!(y[1], Complex::new(0.0, -2.0));
        assert!((m.max_norm() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn from_rows_rejects_ragged_input() {
        let _ = DenseMatrix::from_rows(vec![vec![1.0], vec![1.0, 2.0]]);
    }
}
