//! Simulator error types.

use std::fmt;

/// Errors produced by the analogue simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The circuit failed structural validation before simulation.
    Circuit(String),
    /// The linear solver found a (numerically) singular matrix.
    SingularMatrix {
        /// Row/column at which elimination failed.
        pivot: usize,
        /// Description of the MNA unknown behind the pivot row (e.g.
        /// ``node `out` `` or ``branch current of `v1` ``), when the caller
        /// had a layout to name it with.
        unknown: Option<String>,
    },
    /// The Newton-Raphson iteration failed to converge.
    NoConvergence {
        /// Analysis that failed (e.g. `"dc operating point"`).
        analysis: String,
        /// Number of iterations attempted.
        iterations: usize,
        /// Final residual norm.
        residual: f64,
    },
    /// An analysis was requested with invalid configuration.
    InvalidAnalysis(String),
    /// A measurement could not be extracted from simulation results.
    Measurement(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Circuit(reason) => write!(f, "circuit error: {reason}"),
            SimError::SingularMatrix { pivot, unknown } => {
                write!(f, "singular MNA matrix at pivot {pivot}")?;
                if let Some(unknown) = unknown {
                    write!(f, " ({unknown})")?;
                }
                Ok(())
            }
            SimError::NoConvergence {
                analysis,
                iterations,
                residual,
            } => write!(
                f,
                "{analysis} failed to converge after {iterations} iterations (residual {residual:.3e})"
            ),
            SimError::InvalidAnalysis(reason) => write!(f, "invalid analysis: {reason}"),
            SimError::Measurement(reason) => write!(f, "measurement error: {reason}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<ayb_circuit::CircuitError> for SimError {
    fn from(err: ayb_circuit::CircuitError) -> Self {
        SimError::Circuit(err.to_string())
    }
}

/// Convenience result alias for simulator operations.
pub type Result<T> = std::result::Result<T, SimError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_key_information() {
        let err = SimError::NoConvergence {
            analysis: "dc operating point".into(),
            iterations: 150,
            residual: 1.5e-3,
        };
        let msg = err.to_string();
        assert!(msg.contains("150") && msg.contains("dc operating point"));
    }

    #[test]
    fn singular_matrix_names_the_unknown_when_known() {
        let bare = SimError::SingularMatrix {
            pivot: 3,
            unknown: None,
        };
        assert_eq!(bare.to_string(), "singular MNA matrix at pivot 3");
        let named = SimError::SingularMatrix {
            pivot: 3,
            unknown: Some("node `out`".to_string()),
        };
        assert_eq!(
            named.to_string(),
            "singular MNA matrix at pivot 3 (node `out`)"
        );
    }

    #[test]
    fn circuit_errors_convert() {
        let cerr = ayb_circuit::CircuitError::Validation("no devices".into());
        let serr: SimError = cerr.into();
        assert!(matches!(serr, SimError::Circuit(_)));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<SimError>();
    }
}
