//! Measurement extraction from AC responses.
//!
//! These routines turn a swept complex transfer function into the figures of
//! merit the paper's flow optimises: low-frequency (open-loop) gain, phase
//! margin, unity-gain frequency and −3 dB bandwidth.

use crate::error::{Result, SimError};
use crate::linalg::Complex;
use serde::{Deserialize, Serialize};

/// Summary of an AC transfer-function measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AcMeasurements {
    /// Low-frequency gain in dB.
    pub dc_gain_db: f64,
    /// Unity-gain (0 dB crossing) frequency in hertz, if the gain crosses 0 dB
    /// inside the sweep.
    pub unity_gain_hz: Option<f64>,
    /// Phase margin in degrees at the unity-gain frequency, if defined.
    pub phase_margin_deg: Option<f64>,
    /// −3 dB bandwidth in hertz, if the gain falls 3 dB below its
    /// low-frequency value inside the sweep.
    pub bandwidth_hz: Option<f64>,
}

/// Computes the magnitude of the response in dB at every sweep point.
pub fn magnitude_db(response: &[Complex]) -> Vec<f64> {
    response.iter().map(|z| z.abs_db()).collect()
}

/// Computes the unwrapped phase of the response in degrees at every sweep point.
///
/// Phase unwrapping removes the ±360° jumps that `atan2` introduces so that
/// phase-margin interpolation is well behaved.
pub fn unwrapped_phase_deg(response: &[Complex]) -> Vec<f64> {
    let mut phases = Vec::with_capacity(response.len());
    let mut offset = 0.0;
    let mut previous: Option<f64> = None;
    for z in response {
        let raw = z.arg_deg();
        if let Some(prev) = previous {
            let mut adjusted = raw + offset;
            while adjusted - prev > 180.0 {
                offset -= 360.0;
                adjusted -= 360.0;
            }
            while adjusted - prev < -180.0 {
                offset += 360.0;
                adjusted += 360.0;
            }
            phases.push(adjusted);
            previous = Some(adjusted);
        } else {
            phases.push(raw);
            previous = Some(raw);
        }
    }
    phases
}

/// Linear interpolation of `x` at the point where `y` crosses `target`
/// between samples `i` and `i + 1` (log-x interpolation for frequencies).
fn interpolate_crossing(x: &[f64], y: &[f64], i: usize, target: f64) -> f64 {
    let (x0, x1) = (x[i], x[i + 1]);
    let (y0, y1) = (y[i], y[i + 1]);
    if (y1 - y0).abs() < 1e-30 {
        return x0;
    }
    let t = (target - y0) / (y1 - y0);
    // Interpolate in log-frequency when both points are positive (decade sweeps).
    if x0 > 0.0 && x1 > 0.0 {
        10f64.powf(x0.log10() + t * (x1.log10() - x0.log10()))
    } else {
        x0 + t * (x1 - x0)
    }
}

/// Interpolates `y` (linear) at frequency `f` given swept `x`/`y` samples.
fn interpolate_value_at(x: &[f64], y: &[f64], f: f64) -> f64 {
    if f <= x[0] {
        return y[0];
    }
    if f >= *x.last().unwrap() {
        return *y.last().unwrap();
    }
    for i in 0..x.len() - 1 {
        if x[i] <= f && f <= x[i + 1] {
            let t = if x[i] > 0.0 && x[i + 1] > 0.0 {
                (f.log10() - x[i].log10()) / (x[i + 1].log10() - x[i].log10())
            } else {
                (f - x[i]) / (x[i + 1] - x[i])
            };
            return y[i] + t * (y[i + 1] - y[i]);
        }
    }
    *y.last().unwrap()
}

/// Frequency at which the gain crosses 0 dB (unity gain), if any.
pub fn unity_gain_frequency(frequencies: &[f64], response: &[Complex]) -> Option<f64> {
    let mags = magnitude_db(response);
    for i in 0..mags.len().saturating_sub(1) {
        if mags[i] >= 0.0 && mags[i + 1] < 0.0 {
            return Some(interpolate_crossing(frequencies, &mags, i, 0.0));
        }
    }
    None
}

/// Phase margin in degrees: `180° + ∠H(f_unity)`.
pub fn phase_margin(frequencies: &[f64], response: &[Complex]) -> Option<f64> {
    let f_unity = unity_gain_frequency(frequencies, response)?;
    let phases = unwrapped_phase_deg(response);
    let phase_at_unity = interpolate_value_at(frequencies, &phases, f_unity);
    Some(180.0 + phase_at_unity)
}

/// −3 dB bandwidth relative to the low-frequency gain.
pub fn bandwidth_3db(frequencies: &[f64], response: &[Complex]) -> Option<f64> {
    let mags = magnitude_db(response);
    let reference = mags[0];
    let target = reference - 3.0;
    for i in 0..mags.len().saturating_sub(1) {
        if mags[i] >= target && mags[i + 1] < target {
            return Some(interpolate_crossing(frequencies, &mags, i, target));
        }
    }
    None
}

/// Gain in dB at the lowest swept frequency (the open-loop / DC gain for the
/// OTA test bench).
pub fn dc_gain_db(response: &[Complex]) -> f64 {
    response
        .first()
        .map(|z| z.abs_db())
        .unwrap_or(f64::NEG_INFINITY)
}

/// Magnitude of the response (in dB) interpolated at an arbitrary frequency.
pub fn gain_db_at(frequencies: &[f64], response: &[Complex], frequency: f64) -> f64 {
    let mags = magnitude_db(response);
    interpolate_value_at(frequencies, &mags, frequency)
}

/// Extracts the full measurement summary from a swept response.
///
/// # Errors
///
/// Returns an error if the sweep and response lengths differ or are empty.
pub fn measure(frequencies: &[f64], response: &[Complex]) -> Result<AcMeasurements> {
    if frequencies.is_empty() || frequencies.len() != response.len() {
        return Err(SimError::Measurement(format!(
            "sweep ({}) and response ({}) lengths must match and be non-empty",
            frequencies.len(),
            response.len()
        )));
    }
    Ok(AcMeasurements {
        dc_gain_db: dc_gain_db(response),
        unity_gain_hz: unity_gain_frequency(frequencies, response),
        phase_margin_deg: phase_margin(frequencies, response),
        bandwidth_hz: bandwidth_3db(frequencies, response),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Single-pole system: H(s) = A / (1 + s/ω_p).
    fn single_pole(a: f64, f_pole: f64, freqs: &[f64]) -> Vec<Complex> {
        freqs
            .iter()
            .map(|&f| {
                let jw = Complex::new(0.0, f / f_pole);
                Complex::from_real(a) / (Complex::ONE + jw)
            })
            .collect()
    }

    /// Two-pole system: H(s) = A / ((1 + s/ω1)(1 + s/ω2)).
    fn two_pole(a: f64, f1: f64, f2: f64, freqs: &[f64]) -> Vec<Complex> {
        freqs
            .iter()
            .map(|&f| {
                let d1 = Complex::ONE + Complex::new(0.0, f / f1);
                let d2 = Complex::ONE + Complex::new(0.0, f / f2);
                Complex::from_real(a) / (d1 * d2)
            })
            .collect()
    }

    fn log_freqs(start: f64, stop: f64, per_decade: usize) -> Vec<f64> {
        crate::sweep::FrequencySweep::logarithmic(start, stop, per_decade).frequencies()
    }

    #[test]
    fn single_pole_measurements_match_theory() {
        let freqs = log_freqs(1.0, 1e9, 40);
        let a = 1000.0; // 60 dB
        let f_pole = 1e3;
        let resp = single_pole(a, f_pole, &freqs);
        let m = measure(&freqs, &resp).unwrap();
        assert!((m.dc_gain_db - 60.0).abs() < 0.01);
        // Unity-gain frequency of a single-pole system is A·f_pole.
        let fu = m.unity_gain_hz.unwrap();
        assert!((fu - a * f_pole).abs() / (a * f_pole) < 0.01);
        // Phase margin approaches 90 degrees.
        let pm = m.phase_margin_deg.unwrap();
        assert!((pm - 90.0).abs() < 1.0, "pm = {pm}");
        // Bandwidth equals the pole frequency.
        let bw = m.bandwidth_hz.unwrap();
        assert!((bw - f_pole).abs() / f_pole < 0.02);
    }

    #[test]
    fn two_pole_system_has_reduced_phase_margin() {
        let freqs = log_freqs(1.0, 1e9, 40);
        // 60 dB with the second pole at the extrapolated unity-gain frequency.
        // Solving |H(jω)| = 1 exactly puts the crossover at 0.786·f2 where the
        // phase is −128.1°, i.e. a phase margin of 51.9°.
        let a = 1000.0;
        let f1 = 1e3;
        let f2 = 1e6;
        let resp = two_pole(a, f1, f2, &freqs);
        let pm = phase_margin(&freqs, &resp).unwrap();
        assert!((pm - 51.9).abs() < 2.0, "pm = {pm}");
    }

    #[test]
    fn gain_below_unity_reports_no_crossing() {
        let freqs = log_freqs(1.0, 1e6, 10);
        let resp = single_pole(0.5, 1e3, &freqs);
        assert!(unity_gain_frequency(&freqs, &resp).is_none());
        assert!(phase_margin(&freqs, &resp).is_none());
    }

    #[test]
    fn unwrapping_removes_jumps() {
        // Construct a response whose raw phase wraps around −180°.
        let freqs = log_freqs(1.0, 1e6, 20);
        let resp = two_pole(1000.0, 10.0, 100.0, &freqs);
        let phases = unwrapped_phase_deg(&resp);
        for w in phases.windows(2) {
            assert!(
                (w[1] - w[0]).abs() < 90.0,
                "phase jump detected: {} -> {}",
                w[0],
                w[1]
            );
        }
        // Final phase approaches −180° for a two-pole system.
        assert!((phases.last().unwrap() + 180.0).abs() < 5.0);
    }

    #[test]
    fn mismatched_lengths_are_rejected() {
        let freqs = vec![1.0, 2.0];
        let resp = vec![Complex::ONE];
        assert!(measure(&freqs, &resp).is_err());
        assert!(measure(&[], &[]).is_err());
    }

    #[test]
    fn gain_at_arbitrary_frequency_interpolates() {
        let freqs = log_freqs(1.0, 1e6, 10);
        let resp = single_pole(100.0, 1e3, &freqs);
        let g = gain_db_at(&freqs, &resp, 1e3);
        assert!((g - (40.0 - 3.01)).abs() < 0.2);
    }
}
