//! Transient analysis (fixed-step backward-Euler integration).
//!
//! Transient simulation is not required by the paper's flow but is provided
//! for completeness (step responses of the behavioural filter, settling
//! checks). Capacitors are replaced by their backward-Euler companion model
//! `i = C/h·(v − v_prev)` each time step and the resulting (possibly
//! nonlinear) system is solved by the same Newton machinery as the DC
//! operating point.

use crate::dc::{dc_operating_point, stamp_dc, DcOptions, DcSolution};
use crate::error::{Result, SimError};
use crate::linalg::{solve_in_place, DenseMatrix};
use crate::mna::MnaLayout;
use ayb_circuit::{Circuit, Device, NodeId};
use serde::{Deserialize, Serialize};

/// Options for transient analysis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransientOptions {
    /// Simulation stop time in seconds.
    pub stop_time: f64,
    /// Fixed integration step in seconds.
    pub time_step: f64,
    /// Newton options used at each time point.
    pub dc: DcOptions,
}

impl TransientOptions {
    /// Creates options for the given stop time and step.
    pub fn new(stop_time: f64, time_step: f64) -> Self {
        TransientOptions {
            stop_time,
            time_step,
            dc: DcOptions::new(),
        }
    }
}

/// Time-domain waveform set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TransientSolution {
    times: Vec<f64>,
    /// `voltages[t][node_index]`.
    voltages: Vec<Vec<f64>>,
}

impl TransientSolution {
    /// Sampled time points in seconds.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Waveform of a node by id.
    pub fn node_waveform(&self, node: NodeId) -> Vec<f64> {
        self.voltages.iter().map(|row| row[node.index()]).collect()
    }

    /// Waveform of a named node.
    pub fn waveform_by_name(&self, circuit: &Circuit, name: &str) -> Option<Vec<f64>> {
        circuit.find_node(name).map(|id| self.node_waveform(id))
    }

    /// Final value of a named node.
    pub fn final_value(&self, circuit: &Circuit, name: &str) -> Option<f64> {
        self.waveform_by_name(circuit, name)
            .and_then(|w| w.last().copied())
    }
}

/// Runs a fixed-step transient analysis starting from the DC operating point.
///
/// # Errors
///
/// Returns an error for invalid options, DC convergence failure, or Newton
/// failure at any time point.
pub fn transient_analysis(
    circuit: &Circuit,
    options: &TransientOptions,
) -> Result<TransientSolution> {
    if options.time_step <= 0.0 || options.stop_time <= options.time_step {
        return Err(SimError::InvalidAnalysis(
            "transient requires 0 < time_step < stop_time".into(),
        ));
    }
    let initial: DcSolution = dc_operating_point(circuit, &options.dc)?;
    let layout = MnaLayout::new(circuit);
    let n = layout.size();

    // State vector: node voltages followed by branch currents.
    let mut x = vec![0.0; n];
    for node in circuit.nodes().iter() {
        if let Some(row) = layout.node_row(node) {
            x[row] = initial.voltage(node);
        }
    }

    let steps = (options.stop_time / options.time_step).ceil() as usize;
    let mut times = Vec::with_capacity(steps + 1);
    let mut voltages = Vec::with_capacity(steps + 1);
    let record = |x: &[f64], out: &mut Vec<Vec<f64>>| {
        let mut row = vec![0.0; circuit.nodes().len()];
        for node in circuit.nodes().iter() {
            if let Some(r) = layout.node_row(node) {
                row[node.index()] = x[r];
            }
        }
        out.push(row);
    };
    times.push(0.0);
    record(&x, &mut voltages);

    let h = options.time_step;
    let mut matrix = DenseMatrix::zeros(n, n);
    let mut rhs = vec![0.0; n];

    for step in 1..=steps {
        let prev = x.clone();
        // Newton at this time point.
        let mut converged = false;
        for _ in 0..options.dc.max_iterations {
            stamp_dc(
                circuit,
                &layout,
                &x,
                options.dc.gmin,
                1.0,
                &mut matrix,
                &mut rhs,
            );
            // Replace every capacitor's open circuit with its BE companion model.
            for inst in circuit.instances() {
                if let Device::Capacitor(c) = &inst.device {
                    let g = c.capacitance / h;
                    let v_prev =
                        layout.voltage_of(&prev, c.plus) - layout.voltage_of(&prev, c.minus);
                    let ieq = g * v_prev;
                    let p = layout.node_row(c.plus);
                    let m = layout.node_row(c.minus);
                    if let Some(p) = p {
                        matrix.add(p, p, g);
                        rhs[p] += ieq;
                    }
                    if let Some(m) = m {
                        matrix.add(m, m, g);
                        rhs[m] -= ieq;
                    }
                    if let (Some(p), Some(m)) = (p, m) {
                        matrix.add(p, m, -g);
                        matrix.add(m, p, -g);
                    }
                }
            }
            let mut solution = rhs.clone();
            solve_in_place(&mut matrix, &mut solution)?;
            let max_delta = solution
                .iter()
                .zip(x.iter())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            x.copy_from_slice(&solution);
            if max_delta < options.dc.voltage_tolerance {
                converged = true;
                break;
            }
        }
        if !converged {
            return Err(SimError::NoConvergence {
                analysis: format!("transient time point {}", step as f64 * h),
                iterations: options.dc.max_iterations,
                residual: f64::NAN,
            });
        }
        times.push(step as f64 * h);
        record(&x, &mut voltages);
    }
    Ok(TransientSolution { times, voltages })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ayb_circuit::Circuit;

    #[test]
    fn rc_charge_approaches_supply() {
        let mut ckt = Circuit::new("rc_step");
        let vin = ckt.node("in");
        let out = ckt.node("out");
        let gnd = ckt.gnd();
        ckt.add_vsource("v1", vin, gnd, 1.0).unwrap();
        ckt.add_resistor("r1", vin, out, 1e3).unwrap();
        ckt.add_capacitor("c1", out, gnd, 1e-6).unwrap();
        // τ = 1 ms; simulate 5 τ. The DC operating point already has the
        // capacitor charged, so instead verify the steady value is held.
        let opts = TransientOptions::new(5e-3, 50e-6);
        let tran = transient_analysis(&ckt, &opts).unwrap();
        let v_end = tran.final_value(&ckt, "out").unwrap();
        assert!((v_end - 1.0).abs() < 1e-3, "v_end = {v_end}");
        assert_eq!(tran.times().len(), tran.node_waveform(out).len());
    }

    #[test]
    fn invalid_step_is_rejected() {
        let mut ckt = Circuit::new("x");
        let a = ckt.node("a");
        let gnd = ckt.gnd();
        ckt.add_vsource("v1", a, gnd, 1.0).unwrap();
        ckt.add_resistor("r1", a, gnd, 1.0).unwrap();
        assert!(transient_analysis(&ckt, &TransientOptions::new(1.0, 2.0)).is_err());
        assert!(transient_analysis(&ckt, &TransientOptions::new(1.0, 0.0)).is_err());
    }

    #[test]
    fn rc_discharge_through_behavioral_states() {
        // Current source charging a capacitor through a resistor: the waveform
        // should rise monotonically towards I·R.
        let mut ckt = Circuit::new("ir_c");
        let a = ckt.node("a");
        let gnd = ckt.gnd();
        ckt.add_isource("i1", gnd, a, 1e-3).unwrap();
        ckt.add_resistor("r1", a, gnd, 1e3).unwrap();
        ckt.add_capacitor("c1", a, gnd, 1e-6).unwrap();
        let tran = transient_analysis(&ckt, &TransientOptions::new(5e-3, 25e-6)).unwrap();
        let w = tran.waveform_by_name(&ckt, "a").unwrap();
        assert!((w.last().unwrap() - 1.0).abs() < 1e-3);
        // Monotone non-decreasing within numerical noise.
        assert!(w.windows(2).all(|p| p[1] >= p[0] - 1e-9));
    }
}
