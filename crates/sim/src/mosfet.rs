//! Level-1 (square-law) MOSFET evaluation.
//!
//! The evaluator maps both polarities and both channel orientations onto a
//! single NMOS-like "primed" space, computes the drain current and its
//! partial derivatives there, then maps the results back to the physical
//! terminals. The returned derivatives are with respect to the *actual*
//! terminal voltages, so the MNA stamping code never needs to know about
//! polarity or drain/source swapping.

use ayb_circuit::{Mosfet, MosfetModelCard};
use serde::{Deserialize, Serialize};

/// Operating region of a MOSFET.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Region {
    /// `V_GS` below threshold: no channel.
    Cutoff,
    /// Linear / ohmic operation (`V_DS < V_GS - V_TH`).
    Triode,
    /// Saturation (`V_DS ≥ V_GS - V_TH`).
    Saturation,
}

impl std::fmt::Display for Region {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Region::Cutoff => write!(f, "cutoff"),
            Region::Triode => write!(f, "triode"),
            Region::Saturation => write!(f, "saturation"),
        }
    }
}

/// Full large- and small-signal evaluation of a MOSFET at a bias point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MosfetEval {
    /// Current flowing into the drain terminal in amps (negative for PMOS in
    /// normal operation).
    pub id: f64,
    /// Partial derivative of the drain current w.r.t. the drain voltage.
    pub did_dvd: f64,
    /// Partial derivative w.r.t. the gate voltage.
    pub did_dvg: f64,
    /// Partial derivative w.r.t. the source voltage.
    pub did_dvs: f64,
    /// Partial derivative w.r.t. the bulk voltage.
    pub did_dvb: f64,
    /// Transconductance magnitude `gm` in the device's own (primed) space.
    pub gm: f64,
    /// Output conductance magnitude `gds`.
    pub gds: f64,
    /// Bulk transconductance magnitude `gmbs`.
    pub gmbs: f64,
    /// Threshold voltage magnitude including body effect and mismatch.
    pub vth: f64,
    /// Effective gate overdrive `V_GS - V_TH` in the primed space.
    pub vov: f64,
    /// Operating region.
    pub region: Region,
    /// Gate-source capacitance in farads.
    pub cgs: f64,
    /// Gate-drain capacitance in farads.
    pub cgd: f64,
    /// Gate-bulk capacitance in farads.
    pub cgb: f64,
    /// Drain-bulk junction capacitance in farads.
    pub cdb: f64,
    /// Source-bulk junction capacitance in farads.
    pub csb: f64,
}

/// Effective drain/source junction extension used for junction-capacitance
/// area estimates (metres). A fixed 0.85 µm diffusion strip is assumed.
const JUNCTION_EXTENSION: f64 = 0.85e-6;

/// Evaluates a MOSFET given the actual terminal voltages (volts).
///
/// `delta_vto` and `beta_mult` on the instance model local mismatch: the
/// threshold magnitude is shifted by `delta_vto` and the current factor is
/// multiplied by `beta_mult`.
pub fn evaluate(
    card: &MosfetModelCard,
    device: &Mosfet,
    vd: f64,
    vg: f64,
    vs: f64,
    vb: f64,
) -> MosfetEval {
    let sgn = card.polarity.sign();

    // Map to the NMOS-like primed space.
    let vds_raw = sgn * (vd - vs);
    let reversed = vds_raw < 0.0;
    // Primed source is the terminal at the lower (primed) potential.
    let (vref, vother) = if reversed { (vd, vs) } else { (vs, vd) };
    let vgs = sgn * (vg - vref);
    let vds = sgn * (vother - vref);
    let vbs = sgn * (vb - vref);

    // Body effect (primed space): V_SB >= 0 increases the threshold.
    let vsb = (-vbs).max(0.0);
    let sqrt_phi = card.phi.max(1e-6).sqrt();
    let sqrt_term = (card.phi + vsb).max(1e-6).sqrt();
    let vth = card.vto.abs() + card.gamma * (sqrt_term - sqrt_phi) + device.delta_vto;

    let beta = card.kp * device.beta_mult * device.m * device.w / device.l.max(1e-9);
    // Channel-length modulation referenced to a 1 µm channel.
    let lambda = card.lambda * 1e-6 / device.l.max(1e-9);
    let vov = vgs - vth;

    let (id_p, gm, gds, region) = if vov <= 0.0 {
        (0.0, 0.0, 0.0, Region::Cutoff)
    } else if vds < vov {
        let fac = 1.0 + lambda * vds;
        let core = vov * vds - 0.5 * vds * vds;
        (
            beta * core * fac,
            beta * vds * fac,
            beta * (vov - vds) * fac + beta * core * lambda,
            Region::Triode,
        )
    } else {
        let fac = 1.0 + lambda * vds;
        let core = 0.5 * vov * vov;
        (
            beta * core * fac,
            beta * vov * fac,
            beta * core * lambda,
            Region::Saturation,
        )
    };
    let gmbs = gm * card.gamma / (2.0 * sqrt_term);

    // Map the current and derivatives back to actual terminals.
    //
    // In the primed space the channel current id_p flows from the primed drain
    // to the primed source. The current into the *actual* drain terminal is
    // `sgn·id_p` when not reversed and `-sgn·id_p` when reversed.
    let id = if reversed { -sgn * id_p } else { sgn * id_p };

    // Derivatives of id_p w.r.t. actual node voltages:
    //   vgs' = sgn (vg − v_ref), vds' = sgn (v_other − v_ref), vbs' = sgn (vb − v_ref)
    // so did_p/dvg = sgn·gm, did_p/dv_other = sgn·gds, did_p/dvb = sgn·gmbs,
    // did_p/dv_ref = −sgn·(gm + gds + gmbs).
    let sum = gm + gds + gmbs;
    let (did_dvd, did_dvg, did_dvs, did_dvb) = if !reversed {
        // id = sgn·id_p, v_other = vd, v_ref = vs.
        (gds, gm, -sum, gmbs)
    } else {
        // id = −sgn·id_p, v_other = vs, v_ref = vd.
        (sum, -gm, -gds, -gmbs)
    };

    // Capacitances.
    let w = device.w * device.m;
    let cox_total = card.cox * w * device.l;
    let c_ov_gd = card.cgdo * w;
    let c_ov_gs = card.cgso * w;
    let (mut cgs, mut cgd, cgb) = match region {
        Region::Cutoff => (c_ov_gs, c_ov_gd, cox_total),
        Region::Triode => (0.5 * cox_total + c_ov_gs, 0.5 * cox_total + c_ov_gd, 0.0),
        Region::Saturation => ((2.0 / 3.0) * cox_total + c_ov_gs, c_ov_gd, 0.0),
    };
    if reversed {
        std::mem::swap(&mut cgs, &mut cgd);
    }
    let cj_area = card.cj * w * JUNCTION_EXTENSION;

    MosfetEval {
        id,
        did_dvd,
        did_dvg,
        did_dvs,
        did_dvb,
        gm,
        gds,
        gmbs,
        vth,
        vov,
        region,
        cgs,
        cgd,
        cgb,
        cdb: cj_area,
        csb: cj_area,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ayb_circuit::{Mosfet, MosfetModelCard, NodeId};

    fn nmos_instance(w: f64, l: f64) -> Mosfet {
        Mosfet::new(
            NodeId::GROUND,
            NodeId::GROUND,
            NodeId::GROUND,
            NodeId::GROUND,
            "nmos",
            w,
            l,
        )
    }

    #[test]
    fn nmos_saturation_current_matches_square_law() {
        let card = MosfetModelCard::nmos_035um();
        let dev = nmos_instance(10e-6, 1e-6);
        // vgs = 1.0, vds = 2.0 (saturation), vbs = 0.
        let eval = evaluate(&card, &dev, 2.0, 1.0, 0.0, 0.0);
        assert_eq!(eval.region, Region::Saturation);
        let beta = card.kp * 10.0;
        let lambda = card.lambda * 1e-6 / 1e-6;
        let vov: f64 = 1.0 - card.vto;
        let expected = 0.5 * beta * vov.powi(2) * (1.0 + lambda * 2.0);
        assert!((eval.id - expected).abs() / expected < 1e-12);
        assert!(eval.gm > 0.0 && eval.gds > 0.0);
    }

    #[test]
    fn cutoff_has_zero_current() {
        let card = MosfetModelCard::nmos_035um();
        let dev = nmos_instance(10e-6, 1e-6);
        let eval = evaluate(&card, &dev, 1.0, 0.2, 0.0, 0.0);
        assert_eq!(eval.region, Region::Cutoff);
        assert_eq!(eval.id, 0.0);
        assert_eq!(eval.gm, 0.0);
    }

    #[test]
    fn triode_region_detected_and_continuous_with_saturation() {
        let card = MosfetModelCard::nmos_035um();
        let dev = nmos_instance(10e-6, 1e-6);
        let vov = 1.0 - card.vto;
        let just_below = evaluate(&card, &dev, vov - 1e-6, 1.0, 0.0, 0.0);
        let just_above = evaluate(&card, &dev, vov + 1e-6, 1.0, 0.0, 0.0);
        assert_eq!(just_below.region, Region::Triode);
        assert_eq!(just_above.region, Region::Saturation);
        assert!((just_below.id - just_above.id).abs() / just_above.id < 1e-3);
    }

    #[test]
    fn pmos_conducts_with_negative_voltages() {
        let card = MosfetModelCard::pmos_035um();
        let mut dev = nmos_instance(20e-6, 1e-6);
        dev.model = "pmos".to_string();
        // Source at 3.3 V (VDD), gate at 2.0 V, drain at 1.0 V: |VGS| = 1.3 > |VTO|.
        let eval = evaluate(&card, &dev, 1.0, 2.0, 3.3, 3.3);
        assert_eq!(eval.region, Region::Saturation);
        // Current flows out of the drain terminal (into the node), so id < 0.
        assert!(eval.id < 0.0);
        assert!(eval.gm > 0.0);
    }

    #[test]
    fn drain_source_swap_gives_antisymmetric_current() {
        let card = MosfetModelCard::nmos_035um();
        let dev = nmos_instance(10e-6, 1e-6);
        // Gate high enough that both orientations conduct in triode.
        let fwd = evaluate(&card, &dev, 0.2, 2.0, 0.0, 0.0);
        let rev = evaluate(&card, &dev, 0.0, 2.0, 0.2, 0.0);
        assert!(
            (fwd.id + rev.id).abs() < 1e-12,
            "fwd {} rev {}",
            fwd.id,
            rev.id
        );
    }

    #[test]
    fn body_effect_raises_threshold() {
        let card = MosfetModelCard::nmos_035um();
        let dev = nmos_instance(10e-6, 1e-6);
        let no_body = evaluate(&card, &dev, 2.0, 1.0, 0.0, 0.0);
        let with_body = evaluate(&card, &dev, 3.0, 2.0, 1.0, 0.0);
        assert!(with_body.vth > no_body.vth);
        assert!(with_body.gmbs > 0.0);
    }

    #[test]
    fn mismatch_fields_shift_current() {
        let card = MosfetModelCard::nmos_035um();
        let mut dev = nmos_instance(10e-6, 1e-6);
        let nominal = evaluate(&card, &dev, 2.0, 1.0, 0.0, 0.0);
        dev.delta_vto = 0.05;
        let slow = evaluate(&card, &dev, 2.0, 1.0, 0.0, 0.0);
        assert!(slow.id < nominal.id);
        dev.delta_vto = 0.0;
        dev.beta_mult = 1.1;
        let fast = evaluate(&card, &dev, 2.0, 1.0, 0.0, 0.0);
        assert!(fast.id > nominal.id);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let card = MosfetModelCard::nmos_035um();
        let dev = nmos_instance(25e-6, 0.7e-6);
        let (vd, vg, vs, vb) = (1.3, 1.1, 0.2, 0.0);
        let base = evaluate(&card, &dev, vd, vg, vs, vb);
        let h = 1e-7;
        let num_dvd = (evaluate(&card, &dev, vd + h, vg, vs, vb).id - base.id) / h;
        let num_dvg = (evaluate(&card, &dev, vd, vg + h, vs, vb).id - base.id) / h;
        let num_dvs = (evaluate(&card, &dev, vd, vg, vs + h, vb).id - base.id) / h;
        let num_dvb = (evaluate(&card, &dev, vd, vg, vs, vb + h).id - base.id) / h;
        let check = |analytic: f64, numeric: f64| {
            let scale = analytic.abs().max(numeric.abs()).max(1e-12);
            assert!(
                (analytic - numeric).abs() / scale < 1e-3,
                "analytic {analytic} vs numeric {numeric}"
            );
        };
        check(base.did_dvd, num_dvd);
        check(base.did_dvg, num_dvg);
        check(base.did_dvs, num_dvs);
        check(base.did_dvb, num_dvb);
    }

    #[test]
    fn saturation_capacitances_follow_two_thirds_rule() {
        let card = MosfetModelCard::nmos_035um();
        let dev = nmos_instance(10e-6, 1e-6);
        let eval = evaluate(&card, &dev, 2.0, 1.0, 0.0, 0.0);
        let cox_total = card.cox * 10e-6 * 1e-6;
        assert!((eval.cgs - (2.0 / 3.0) * cox_total - card.cgso * 10e-6).abs() < 1e-18);
        assert!((eval.cgd - card.cgdo * 10e-6).abs() < 1e-20);
        assert!(eval.cdb > 0.0 && eval.csb > 0.0);
    }
}
