//! Small-signal AC analysis.
//!
//! The circuit is linearised around a previously computed DC operating point
//! ([`DcSolution`]); the complex MNA system `(G + jωC)·x = b` is then solved
//! at every frequency of a sweep.
//!
//! Assembly is split into a symbolic phase and a numeric one: the real
//! conductance matrix `G`, the capacitance matrix `C` and the right-hand side
//! are each stamped **once** over a shared sparsity pattern, and every
//! frequency point is then an `O(nnz)` value merge `G + jωC` followed by one
//! backend solve over reused workspaces — no per-frequency re-stamping or
//! allocation.

use crate::dc::DcSolution;
use crate::error::{Result, SimError};
use crate::linalg::{backend_of, Complex, CsrMatrix, PatternBuilder, SolverKind, SparsityPattern};
use crate::mna::MnaLayout;
use crate::sweep::FrequencySweep;
use ayb_circuit::{Circuit, Device, NodeId};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Result of an AC sweep: node phasors at every analysed frequency.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AcSolution {
    frequencies: Vec<f64>,
    /// `phasors[f][node_index]` — node phasors per frequency, ground included as index 0.
    phasors: Vec<Vec<Complex>>,
}

impl AcSolution {
    /// Frequencies of the sweep in hertz.
    pub fn frequencies(&self) -> &[f64] {
        &self.frequencies
    }

    /// Number of frequency points.
    pub fn len(&self) -> usize {
        self.frequencies.len()
    }

    /// Returns `true` if the sweep contains no points.
    pub fn is_empty(&self) -> bool {
        self.frequencies.is_empty()
    }

    /// Phasor of `node` across the sweep.
    pub fn node_response(&self, node: NodeId) -> Vec<Complex> {
        self.phasors.iter().map(|row| row[node.index()]).collect()
    }

    /// Phasor of a named node across the sweep.
    pub fn response_by_name(&self, circuit: &Circuit, name: &str) -> Option<Vec<Complex>> {
        circuit.find_node(name).map(|id| self.node_response(id))
    }

    /// Phasor of `node` at sweep index `idx`.
    pub fn phasor_at(&self, idx: usize, node: NodeId) -> Complex {
        self.phasors[idx][node.index()]
    }
}

/// Runs an AC analysis over the given frequency sweep with the default dense
/// solver backend, deriving the MNA layout internally.
///
/// # Errors
///
/// Returns an error for an empty sweep, a singular linearised matrix, or an
/// inconsistent operating point.
pub fn ac_analysis(
    circuit: &Circuit,
    operating_point: &DcSolution,
    sweep: &FrequencySweep,
) -> Result<AcSolution> {
    let layout = MnaLayout::new(circuit);
    ac_analysis_with(circuit, &layout, operating_point, sweep, SolverKind::Dense)
}

/// Runs an AC analysis over a caller-supplied [`MnaLayout`] and solver
/// backend.
///
/// Passing the layout lets callers reuse the one already built for the DC
/// operating point instead of re-deriving it per analysis.
///
/// # Errors
///
/// As [`ac_analysis`]. A singular matrix is reported naming the offending
/// MNA unknown.
pub fn ac_analysis_with(
    circuit: &Circuit,
    layout: &MnaLayout,
    operating_point: &DcSolution,
    sweep: &FrequencySweep,
    solver: SolverKind,
) -> Result<AcSolution> {
    let frequencies = sweep.frequencies();
    if frequencies.is_empty() {
        return Err(SimError::InvalidAnalysis(
            "AC sweep contains no frequency points".into(),
        ));
    }
    let mut system = AcSystem::new(circuit, layout, operating_point)?;
    let mut backend = backend_of::<Complex>(solver);
    backend.prepare(system.pattern());
    let n = layout.size();
    let mut solution = vec![Complex::ZERO; n];
    let mut phasors = Vec::with_capacity(frequencies.len());

    for &freq in &frequencies {
        let omega = 2.0 * std::f64::consts::PI * freq;
        system.merge(omega);
        solution.copy_from_slice(&system.rhs);
        backend
            .solve(&system.matrix, &mut solution)
            .map_err(|e| layout.describe_singular(e))?;
        let mut row = vec![Complex::ZERO; circuit.nodes().len()];
        for node in circuit.nodes().iter() {
            if let Some(idx) = layout.node_row(node) {
                row[node.index()] = solution[idx];
            }
        }
        phasors.push(row);
    }
    Ok(AcSolution {
        frequencies,
        phasors,
    })
}

/// The AC MNA system after the symbolic phase: one sparsity pattern shared by
/// the conductance part `g`, the capacitance part `c`, the merged complex
/// value matrix and the (frequency-independent) right-hand side.
struct AcSystem {
    matrix: CsrMatrix<Complex>,
    /// Real part per slot: conductances plus source/branch incidence.
    g: Vec<f64>,
    /// Capacitance per slot: the merged imaginary part is `ω·c`.
    c: Vec<f64>,
    rhs: Vec<Complex>,
}

/// Marks a two-terminal admittance quad in the pattern.
fn mark_quad(builder: &mut PatternBuilder, p: Option<usize>, m: Option<usize>) {
    if let Some(p) = p {
        builder.entry(p, p);
    }
    if let Some(m) = m {
        builder.entry(m, m);
    }
    if let (Some(p), Some(m)) = (p, m) {
        builder.entry(p, m);
        builder.entry(m, p);
    }
}

/// Adds a two-terminal admittance contribution (`g` or `ω`-free `c`) into a
/// per-slot value array.
fn add_quad(
    pattern: &SparsityPattern,
    values: &mut [f64],
    p: Option<usize>,
    m: Option<usize>,
    y: f64,
) {
    let slot = |r: usize, c: usize| pattern.position(r, c).expect("marked in pattern");
    if let Some(p) = p {
        values[slot(p, p)] += y;
    }
    if let Some(m) = m {
        values[slot(m, m)] += y;
    }
    if let (Some(p), Some(m)) = (p, m) {
        values[slot(p, m)] -= y;
        values[slot(m, p)] -= y;
    }
}

impl AcSystem {
    /// Symbolic + one-time numeric phase: derive the union pattern of `G`
    /// and `C`, then stamp both value arrays and the right-hand side once.
    fn new(circuit: &Circuit, layout: &MnaLayout, op: &DcSolution) -> Result<AcSystem> {
        let n = layout.size();
        let node_row = |node: NodeId| layout.node_row(node);
        let mut builder = PatternBuilder::new(n);
        // Small conductance to ground keeps purely capacitive nodes well
        // conditioned.
        for row in 0..layout.node_count() {
            builder.entry(row, row);
        }
        for inst in circuit.instances() {
            match &inst.device {
                Device::Resistor(r) => mark_quad(&mut builder, node_row(r.plus), node_row(r.minus)),
                Device::Capacitor(c) => {
                    mark_quad(&mut builder, node_row(c.plus), node_row(c.minus))
                }
                Device::VoltageSource(v) => {
                    let br = layout
                        .branch_row(&inst.name)
                        .expect("voltage source has a branch row");
                    for node in [v.plus, v.minus] {
                        if let Some(p) = node_row(node) {
                            builder.entry(p, br);
                            builder.entry(br, p);
                        }
                    }
                }
                Device::CurrentSource(_) => {}
                Device::Vccs(g) => {
                    for out in [node_row(g.out_plus), node_row(g.out_minus)] {
                        for ctrl in [node_row(g.ctrl_plus), node_row(g.ctrl_minus)] {
                            if let (Some(out), Some(ctrl)) = (out, ctrl) {
                                builder.entry(out, ctrl);
                            }
                        }
                    }
                }
                Device::Vcvs(e) => {
                    let br = layout
                        .branch_row(&inst.name)
                        .expect("vcvs has a branch row");
                    for node in [e.out_plus, e.out_minus] {
                        if let Some(p) = node_row(node) {
                            builder.entry(p, br);
                            builder.entry(br, p);
                        }
                    }
                    for node in [e.ctrl_plus, e.ctrl_minus] {
                        if let Some(c) = node_row(node) {
                            builder.entry(br, c);
                        }
                    }
                }
                Device::Mosfet(m) => {
                    let terminals = [m.drain, m.gate, m.source, m.bulk];
                    for row in [node_row(m.drain), node_row(m.source)]
                        .into_iter()
                        .flatten()
                    {
                        for node in terminals {
                            if let Some(col) = node_row(node) {
                                builder.entry(row, col);
                            }
                        }
                    }
                    for (a, b) in [
                        (m.gate, m.source),
                        (m.gate, m.drain),
                        (m.gate, m.bulk),
                        (m.drain, m.bulk),
                        (m.source, m.bulk),
                    ] {
                        mark_quad(&mut builder, node_row(a), node_row(b));
                    }
                }
                Device::BehavioralOta(o) => {
                    if let Some(out) = node_row(o.out) {
                        for node in [o.in_plus, o.in_minus] {
                            if let Some(c) = node_row(node) {
                                builder.entry(out, c);
                            }
                        }
                    }
                    mark_quad(&mut builder, node_row(o.out), None);
                }
            }
        }
        let pattern = builder.build();

        let mut g = vec![0.0; pattern.nnz()];
        let mut c = vec![0.0; pattern.nnz()];
        let mut rhs = vec![Complex::ZERO; n];
        let slot = |r: usize, col: usize| pattern.position(r, col).expect("marked in pattern");
        for row in 0..layout.node_count() {
            g[slot(row, row)] += 1e-12;
        }
        for inst in circuit.instances() {
            match &inst.device {
                Device::Resistor(r) => add_quad(
                    &pattern,
                    &mut g,
                    node_row(r.plus),
                    node_row(r.minus),
                    1.0 / r.resistance,
                ),
                Device::Capacitor(cap) => add_quad(
                    &pattern,
                    &mut c,
                    node_row(cap.plus),
                    node_row(cap.minus),
                    cap.capacitance,
                ),
                Device::VoltageSource(v) => {
                    let br = layout
                        .branch_row(&inst.name)
                        .expect("voltage source has a branch row");
                    if let Some(p) = node_row(v.plus) {
                        g[slot(p, br)] += 1.0;
                        g[slot(br, p)] += 1.0;
                    }
                    if let Some(m) = node_row(v.minus) {
                        g[slot(m, br)] -= 1.0;
                        g[slot(br, m)] -= 1.0;
                    }
                    rhs[br] += Complex::from_polar(v.ac.magnitude, v.ac.phase_deg.to_radians());
                }
                Device::CurrentSource(i) => {
                    let value = Complex::from_polar(i.ac.magnitude, i.ac.phase_deg.to_radians());
                    if let Some(p) = node_row(i.plus) {
                        rhs[p] -= value;
                    }
                    if let Some(m) = node_row(i.minus) {
                        rhs[m] += value;
                    }
                }
                Device::Vccs(gsrc) => {
                    let (op_, om) = (node_row(gsrc.out_plus), node_row(gsrc.out_minus));
                    let (cp, cm) = (node_row(gsrc.ctrl_plus), node_row(gsrc.ctrl_minus));
                    if let Some(op_) = op_ {
                        if let Some(cp) = cp {
                            g[slot(op_, cp)] += gsrc.gm;
                        }
                        if let Some(cm) = cm {
                            g[slot(op_, cm)] -= gsrc.gm;
                        }
                    }
                    if let Some(om) = om {
                        if let Some(cp) = cp {
                            g[slot(om, cp)] -= gsrc.gm;
                        }
                        if let Some(cm) = cm {
                            g[slot(om, cm)] += gsrc.gm;
                        }
                    }
                }
                Device::Vcvs(e) => {
                    let br = layout
                        .branch_row(&inst.name)
                        .expect("vcvs has a branch row");
                    if let Some(p) = node_row(e.out_plus) {
                        g[slot(p, br)] += 1.0;
                        g[slot(br, p)] += 1.0;
                    }
                    if let Some(m) = node_row(e.out_minus) {
                        g[slot(m, br)] -= 1.0;
                        g[slot(br, m)] -= 1.0;
                    }
                    if let Some(cp) = node_row(e.ctrl_plus) {
                        g[slot(br, cp)] -= e.gain;
                    }
                    if let Some(cm) = node_row(e.ctrl_minus) {
                        g[slot(br, cm)] += e.gain;
                    }
                }
                Device::Mosfet(m) => {
                    let eval = op.mosfet_op(&inst.name).ok_or_else(|| {
                        SimError::InvalidAnalysis(format!(
                            "operating point is missing MOSFET `{}` (was it computed on the same circuit?)",
                            inst.name
                        ))
                    })?;
                    // Conductive small-signal model: stamp the exact Jacobian
                    // of the drain current (same values the final DC
                    // iteration used).
                    let derivs = [
                        (m.drain, eval.did_dvd),
                        (m.gate, eval.did_dvg),
                        (m.source, eval.did_dvs),
                        (m.bulk, eval.did_dvb),
                    ];
                    if let Some(d) = node_row(m.drain) {
                        for (node, gd) in derivs {
                            if let Some(col) = node_row(node) {
                                g[slot(d, col)] += gd;
                            }
                        }
                    }
                    if let Some(s) = node_row(m.source) {
                        for (node, gd) in derivs {
                            if let Some(col) = node_row(node) {
                                g[slot(s, col)] -= gd;
                            }
                        }
                    }
                    // Capacitive elements.
                    for ((a, b), cap) in [
                        ((m.gate, m.source), eval.cgs),
                        ((m.gate, m.drain), eval.cgd),
                        ((m.gate, m.bulk), eval.cgb),
                        ((m.drain, m.bulk), eval.cdb),
                        ((m.source, m.bulk), eval.csb),
                    ] {
                        add_quad(&pattern, &mut c, node_row(a), node_row(b), cap);
                    }
                }
                Device::BehavioralOta(o) => {
                    if let Some(out) = node_row(o.out) {
                        if let Some(p) = node_row(o.in_plus) {
                            g[slot(out, p)] -= o.gm;
                        }
                        if let Some(m) = node_row(o.in_minus) {
                            g[slot(out, m)] += o.gm;
                        }
                    }
                    add_quad(&pattern, &mut g, node_row(o.out), None, 1.0 / o.rout);
                    add_quad(&pattern, &mut c, node_row(o.out), None, o.cout);
                }
            }
        }

        Ok(AcSystem {
            matrix: CsrMatrix::new(Arc::clone(&pattern)),
            g,
            c,
            rhs,
        })
    }

    fn pattern(&self) -> &Arc<SparsityPattern> {
        self.matrix.pattern()
    }

    /// Numeric phase per frequency: `O(nnz)` value merge `G + jωC`.
    fn merge(&mut self, omega: f64) {
        for ((value, &g), &c) in self
            .matrix
            .values_mut()
            .iter_mut()
            .zip(&self.g)
            .zip(&self.c)
        {
            *value = Complex::new(g, omega * c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dc::{dc_operating_point, DcOptions};
    use crate::sweep::FrequencySweep;
    use ayb_circuit::{AcSpec, Circuit, Mosfet};

    fn rc_lowpass(r: f64, c: f64) -> Circuit {
        let mut ckt = Circuit::new("rc");
        let vin = ckt.node("in");
        let out = ckt.node("out");
        let gnd = ckt.gnd();
        ckt.add_vsource_ac("v1", vin, gnd, 0.0, AcSpec::unit())
            .unwrap();
        ckt.add_resistor("r1", vin, out, r).unwrap();
        ckt.add_capacitor("c1", out, gnd, c).unwrap();
        ckt
    }

    #[test]
    fn rc_lowpass_has_minus_three_db_at_corner() {
        let r = 1e3;
        let c = 1e-9;
        let f_corner = 1.0 / (2.0 * std::f64::consts::PI * r * c);
        let ckt = rc_lowpass(r, c);
        let op = dc_operating_point(&ckt, &DcOptions::new()).unwrap();
        let sweep = FrequencySweep::single(f_corner);
        let ac = ac_analysis(&ckt, &op, &sweep).unwrap();
        let out = ac.response_by_name(&ckt, "out").unwrap();
        assert!((out[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-3);
        assert!((out[0].arg_deg() + 45.0).abs() < 0.5);
    }

    #[test]
    fn rc_lowpass_passes_dc_and_attenuates_high_frequencies() {
        let ckt = rc_lowpass(1e3, 1e-9);
        let op = dc_operating_point(&ckt, &DcOptions::new()).unwrap();
        let sweep = FrequencySweep::logarithmic(1.0, 1e9, 10);
        let ac = ac_analysis(&ckt, &op, &sweep).unwrap();
        let out = ac.response_by_name(&ckt, "out").unwrap();
        assert!((out.first().unwrap().abs() - 1.0).abs() < 1e-6);
        assert!(out.last().unwrap().abs() < 1e-2);
        assert_eq!(ac.len(), ac.frequencies().len());
    }

    #[test]
    fn vccs_with_load_resistor_gives_expected_gain() {
        let mut ckt = Circuit::new("gmr");
        let vin = ckt.node("in");
        let out = ckt.node("out");
        let gnd = ckt.gnd();
        ckt.add_vsource_ac("v1", vin, gnd, 0.0, AcSpec::unit())
            .unwrap();
        // i(out -> gnd) = gm * v(in); with the SPICE convention the output
        // current is pulled out of `out`, so the small-signal gain is −gm·R.
        ckt.add_vccs("g1", out, gnd, vin, gnd, 1e-3).unwrap();
        ckt.add_resistor("rl", out, gnd, 10e3).unwrap();
        let op = dc_operating_point(&ckt, &DcOptions::new()).unwrap();
        let ac = ac_analysis(&ckt, &op, &FrequencySweep::single(1e3)).unwrap();
        let out_ph = ac.response_by_name(&ckt, "out").unwrap()[0];
        assert!((out_ph.abs() - 10.0).abs() < 1e-6);
        assert!((out_ph.arg_deg().abs() - 180.0).abs() < 1e-6);
    }

    #[test]
    fn empty_sweep_is_rejected() {
        let ckt = rc_lowpass(1e3, 1e-9);
        let op = dc_operating_point(&ckt, &DcOptions::new()).unwrap();
        let sweep = FrequencySweep::list(Vec::new());
        assert!(ac_analysis(&ckt, &op, &sweep).is_err());
    }

    #[test]
    fn sparse_backend_matches_dense_across_a_mosfet_sweep() {
        let mut ckt = Circuit::new("cs-ac");
        ckt.add_default_models();
        let vdd = ckt.node("vdd");
        let g = ckt.node("g");
        let d = ckt.node("d");
        let gnd = ckt.gnd();
        ckt.add_vsource("vdd", vdd, gnd, 3.3).unwrap();
        ckt.add_vsource_ac("vg", g, gnd, 0.9, AcSpec::unit())
            .unwrap();
        ckt.add_resistor("rd", vdd, d, 10e3).unwrap();
        ckt.add_capacitor("cl", d, gnd, 1e-12).unwrap();
        ckt.add_mosfet("m1", Mosfet::new(d, g, gnd, gnd, "nmos", 20e-6, 1e-6))
            .unwrap();
        let layout = MnaLayout::new(&ckt);
        let op = dc_operating_point(&ckt, &DcOptions::new()).unwrap();
        let sweep = FrequencySweep::logarithmic(10.0, 1e9, 5);
        let dense = ac_analysis_with(&ckt, &layout, &op, &sweep, SolverKind::Dense).unwrap();
        let sparse = ac_analysis_with(&ckt, &layout, &op, &sweep, SolverKind::Sparse).unwrap();
        let out = ckt.find_node("d").unwrap();
        for idx in 0..dense.len() {
            let a = dense.phasor_at(idx, out);
            let b = sparse.phasor_at(idx, out);
            assert!(
                (a - b).abs() < 1e-9,
                "point {idx}: dense {a:?} vs sparse {b:?}"
            );
        }
    }
}
