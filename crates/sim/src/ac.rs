//! Small-signal AC analysis.
//!
//! The circuit is linearised around a previously computed DC operating point
//! ([`DcSolution`]); the complex MNA system `(G + jωC)·x = b` is then solved
//! at every frequency of a sweep.

use crate::dc::DcSolution;
use crate::error::{Result, SimError};
use crate::linalg::{solve_in_place, Complex, DenseMatrix};
use crate::mna::MnaLayout;
use crate::sweep::FrequencySweep;
use ayb_circuit::{Circuit, Device, NodeId};
use serde::{Deserialize, Serialize};

/// Result of an AC sweep: node phasors at every analysed frequency.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AcSolution {
    frequencies: Vec<f64>,
    /// `phasors[f][node_index]` — node phasors per frequency, ground included as index 0.
    phasors: Vec<Vec<Complex>>,
}

impl AcSolution {
    /// Frequencies of the sweep in hertz.
    pub fn frequencies(&self) -> &[f64] {
        &self.frequencies
    }

    /// Number of frequency points.
    pub fn len(&self) -> usize {
        self.frequencies.len()
    }

    /// Returns `true` if the sweep contains no points.
    pub fn is_empty(&self) -> bool {
        self.frequencies.is_empty()
    }

    /// Phasor of `node` across the sweep.
    pub fn node_response(&self, node: NodeId) -> Vec<Complex> {
        self.phasors.iter().map(|row| row[node.index()]).collect()
    }

    /// Phasor of a named node across the sweep.
    pub fn response_by_name(&self, circuit: &Circuit, name: &str) -> Option<Vec<Complex>> {
        circuit.find_node(name).map(|id| self.node_response(id))
    }

    /// Phasor of `node` at sweep index `idx`.
    pub fn phasor_at(&self, idx: usize, node: NodeId) -> Complex {
        self.phasors[idx][node.index()]
    }
}

/// Runs an AC analysis over the given frequency sweep.
///
/// # Errors
///
/// Returns an error for an empty sweep, a singular linearised matrix, or an
/// inconsistent operating point.
pub fn ac_analysis(
    circuit: &Circuit,
    operating_point: &DcSolution,
    sweep: &FrequencySweep,
) -> Result<AcSolution> {
    let frequencies = sweep.frequencies();
    if frequencies.is_empty() {
        return Err(SimError::InvalidAnalysis(
            "AC sweep contains no frequency points".into(),
        ));
    }
    let layout = MnaLayout::new(circuit);
    let n = layout.size();
    let mut phasors = Vec::with_capacity(frequencies.len());
    let mut matrix: DenseMatrix<Complex> = DenseMatrix::zeros(n, n);
    let mut rhs = vec![Complex::ZERO; n];

    for &freq in &frequencies {
        let omega = 2.0 * std::f64::consts::PI * freq;
        stamp_ac(
            circuit,
            &layout,
            operating_point,
            omega,
            &mut matrix,
            &mut rhs,
        )?;
        let mut solution = rhs.clone();
        solve_in_place(&mut matrix, &mut solution)?;
        let mut row = vec![Complex::ZERO; circuit.nodes().len()];
        for node in circuit.nodes().iter() {
            if let Some(idx) = layout.node_row(node) {
                row[node.index()] = solution[idx];
            }
        }
        phasors.push(row);
    }
    Ok(AcSolution {
        frequencies,
        phasors,
    })
}

fn add_admittance(
    matrix: &mut DenseMatrix<Complex>,
    layout: &MnaLayout,
    plus: NodeId,
    minus: NodeId,
    admittance: Complex,
) {
    let p = layout.node_row(plus);
    let m = layout.node_row(minus);
    if let Some(p) = p {
        matrix.add(p, p, admittance);
    }
    if let Some(m) = m {
        matrix.add(m, m, admittance);
    }
    if let (Some(p), Some(m)) = (p, m) {
        matrix.add(p, m, -admittance);
        matrix.add(m, p, -admittance);
    }
}

fn add_transconductance(
    matrix: &mut DenseMatrix<Complex>,
    out_plus: Option<usize>,
    out_minus: Option<usize>,
    ctrl_plus: Option<usize>,
    ctrl_minus: Option<usize>,
    gm: f64,
) {
    let gm = Complex::from_real(gm);
    if let Some(op) = out_plus {
        if let Some(cp) = ctrl_plus {
            matrix.add(op, cp, gm);
        }
        if let Some(cm) = ctrl_minus {
            matrix.add(op, cm, -gm);
        }
    }
    if let Some(om) = out_minus {
        if let Some(cp) = ctrl_plus {
            matrix.add(om, cp, -gm);
        }
        if let Some(cm) = ctrl_minus {
            matrix.add(om, cm, gm);
        }
    }
}

fn stamp_ac(
    circuit: &Circuit,
    layout: &MnaLayout,
    op: &DcSolution,
    omega: f64,
    matrix: &mut DenseMatrix<Complex>,
    rhs: &mut [Complex],
) -> Result<()> {
    matrix.clear();
    rhs.iter_mut().for_each(|v| *v = Complex::ZERO);
    // Small conductance to ground keeps purely capacitive nodes well conditioned.
    for row in 0..layout.node_count() {
        matrix.add(row, row, Complex::from_real(1e-12));
    }
    let node_row = |node: NodeId| layout.node_row(node);

    for inst in circuit.instances() {
        match &inst.device {
            Device::Resistor(r) => {
                add_admittance(
                    matrix,
                    layout,
                    r.plus,
                    r.minus,
                    Complex::from_real(1.0 / r.resistance),
                );
            }
            Device::Capacitor(c) => {
                add_admittance(
                    matrix,
                    layout,
                    c.plus,
                    c.minus,
                    Complex::new(0.0, omega * c.capacitance),
                );
            }
            Device::VoltageSource(v) => {
                let br = layout
                    .branch_row(&inst.name)
                    .expect("voltage source has a branch row");
                if let Some(p) = node_row(v.plus) {
                    matrix.add(p, br, Complex::ONE);
                    matrix.add(br, p, Complex::ONE);
                }
                if let Some(m) = node_row(v.minus) {
                    matrix.add(m, br, -Complex::ONE);
                    matrix.add(br, m, -Complex::ONE);
                }
                rhs[br] += Complex::from_polar(v.ac.magnitude, v.ac.phase_deg.to_radians());
            }
            Device::CurrentSource(i) => {
                let value = Complex::from_polar(i.ac.magnitude, i.ac.phase_deg.to_radians());
                if let Some(p) = node_row(i.plus) {
                    rhs[p] -= value;
                }
                if let Some(m) = node_row(i.minus) {
                    rhs[m] += value;
                }
            }
            Device::Vccs(g) => {
                add_transconductance(
                    matrix,
                    node_row(g.out_plus),
                    node_row(g.out_minus),
                    node_row(g.ctrl_plus),
                    node_row(g.ctrl_minus),
                    g.gm,
                );
            }
            Device::Vcvs(e) => {
                let br = layout
                    .branch_row(&inst.name)
                    .expect("vcvs has a branch row");
                if let Some(p) = node_row(e.out_plus) {
                    matrix.add(p, br, Complex::ONE);
                    matrix.add(br, p, Complex::ONE);
                }
                if let Some(m) = node_row(e.out_minus) {
                    matrix.add(m, br, -Complex::ONE);
                    matrix.add(br, m, -Complex::ONE);
                }
                if let Some(cp) = node_row(e.ctrl_plus) {
                    matrix.add(br, cp, Complex::from_real(-e.gain));
                }
                if let Some(cm) = node_row(e.ctrl_minus) {
                    matrix.add(br, cm, Complex::from_real(e.gain));
                }
            }
            Device::Mosfet(m) => {
                let eval = op.mosfet_op(&inst.name).ok_or_else(|| {
                    SimError::InvalidAnalysis(format!(
                        "operating point is missing MOSFET `{}` (was it computed on the same circuit?)",
                        inst.name
                    ))
                })?;
                // Conductive small-signal model: stamp the exact Jacobian of the
                // drain current (same values the final DC iteration used).
                let derivs = [
                    (m.drain, eval.did_dvd),
                    (m.gate, eval.did_dvg),
                    (m.source, eval.did_dvs),
                    (m.bulk, eval.did_dvb),
                ];
                if let Some(d) = node_row(m.drain) {
                    for (node, g) in derivs {
                        if let Some(col) = node_row(node) {
                            matrix.add(d, col, Complex::from_real(g));
                        }
                    }
                }
                if let Some(s) = node_row(m.source) {
                    for (node, g) in derivs {
                        if let Some(col) = node_row(node) {
                            matrix.add(s, col, Complex::from_real(-g));
                        }
                    }
                }
                // Capacitive elements.
                let jw = |c: f64| Complex::new(0.0, omega * c);
                add_admittance(matrix, layout, m.gate, m.source, jw(eval.cgs));
                add_admittance(matrix, layout, m.gate, m.drain, jw(eval.cgd));
                add_admittance(matrix, layout, m.gate, m.bulk, jw(eval.cgb));
                add_admittance(matrix, layout, m.drain, m.bulk, jw(eval.cdb));
                add_admittance(matrix, layout, m.source, m.bulk, jw(eval.csb));
            }
            Device::BehavioralOta(o) => {
                if let Some(out) = node_row(o.out) {
                    if let Some(p) = node_row(o.in_plus) {
                        matrix.add(out, p, Complex::from_real(-o.gm));
                    }
                    if let Some(m) = node_row(o.in_minus) {
                        matrix.add(out, m, Complex::from_real(o.gm));
                    }
                }
                add_admittance(
                    matrix,
                    layout,
                    o.out,
                    NodeId::GROUND,
                    Complex::new(1.0 / o.rout, omega * o.cout),
                );
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dc::{dc_operating_point, DcOptions};
    use crate::sweep::FrequencySweep;
    use ayb_circuit::{AcSpec, Circuit};

    fn rc_lowpass(r: f64, c: f64) -> Circuit {
        let mut ckt = Circuit::new("rc");
        let vin = ckt.node("in");
        let out = ckt.node("out");
        let gnd = ckt.gnd();
        ckt.add_vsource_ac("v1", vin, gnd, 0.0, AcSpec::unit())
            .unwrap();
        ckt.add_resistor("r1", vin, out, r).unwrap();
        ckt.add_capacitor("c1", out, gnd, c).unwrap();
        ckt
    }

    #[test]
    fn rc_lowpass_has_minus_three_db_at_corner() {
        let r = 1e3;
        let c = 1e-9;
        let f_corner = 1.0 / (2.0 * std::f64::consts::PI * r * c);
        let ckt = rc_lowpass(r, c);
        let op = dc_operating_point(&ckt, &DcOptions::new()).unwrap();
        let sweep = FrequencySweep::single(f_corner);
        let ac = ac_analysis(&ckt, &op, &sweep).unwrap();
        let out = ac.response_by_name(&ckt, "out").unwrap();
        assert!((out[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-3);
        assert!((out[0].arg_deg() + 45.0).abs() < 0.5);
    }

    #[test]
    fn rc_lowpass_passes_dc_and_attenuates_high_frequencies() {
        let ckt = rc_lowpass(1e3, 1e-9);
        let op = dc_operating_point(&ckt, &DcOptions::new()).unwrap();
        let sweep = FrequencySweep::logarithmic(1.0, 1e9, 10);
        let ac = ac_analysis(&ckt, &op, &sweep).unwrap();
        let out = ac.response_by_name(&ckt, "out").unwrap();
        assert!((out.first().unwrap().abs() - 1.0).abs() < 1e-6);
        assert!(out.last().unwrap().abs() < 1e-2);
        assert_eq!(ac.len(), ac.frequencies().len());
    }

    #[test]
    fn vccs_with_load_resistor_gives_expected_gain() {
        let mut ckt = Circuit::new("gmr");
        let vin = ckt.node("in");
        let out = ckt.node("out");
        let gnd = ckt.gnd();
        ckt.add_vsource_ac("v1", vin, gnd, 0.0, AcSpec::unit())
            .unwrap();
        // i(out -> gnd) = gm * v(in); with the SPICE convention the output
        // current is pulled out of `out`, so the small-signal gain is −gm·R.
        ckt.add_vccs("g1", out, gnd, vin, gnd, 1e-3).unwrap();
        ckt.add_resistor("rl", out, gnd, 10e3).unwrap();
        let op = dc_operating_point(&ckt, &DcOptions::new()).unwrap();
        let ac = ac_analysis(&ckt, &op, &FrequencySweep::single(1e3)).unwrap();
        let out_ph = ac.response_by_name(&ckt, "out").unwrap()[0];
        assert!((out_ph.abs() - 10.0).abs() < 1e-6);
        assert!((out_ph.arg_deg().abs() - 180.0).abs() < 1e-6);
    }

    #[test]
    fn empty_sweep_is_rejected() {
        let ckt = rc_lowpass(1e3, 1e-9);
        let op = dc_operating_point(&ckt, &DcOptions::new()).unwrap();
        let sweep = FrequencySweep::list(Vec::new());
        assert!(ac_analysis(&ckt, &op, &sweep).is_err());
    }
}
