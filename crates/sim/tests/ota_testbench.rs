//! Integration test: the paper's symmetrical OTA test bench simulates end to
//! end (DC operating point + AC sweep) and produces performance numbers in the
//! range the paper reports (gain around 50 dB, phase margin around 70–80°).

use ayb_circuit::ota::{build_open_loop_testbench, OtaParameters, OtaTestbenchConfig};
use ayb_sim::{ac_analysis, dc_operating_point, measure, DcOptions, FrequencySweep, Region};

#[test]
fn nominal_ota_biases_with_all_devices_saturated_or_triode() {
    let tb = build_open_loop_testbench(&OtaParameters::nominal(), &OtaTestbenchConfig::new())
        .expect("test bench builds");
    let op = dc_operating_point(&tb, &DcOptions::new()).expect("dc converges");
    // The servo loop must place the output near the input common mode.
    let vout = op.voltage_by_name(&tb, "out").unwrap();
    assert!(
        (0.3..3.0).contains(&vout),
        "output common mode {vout} outside supply range"
    );
    // All mirror devices should carry current.
    for name in [
        "xota.m3", "xota.m4", "xota.m5", "xota.m6", "xota.m9", "xota.m10",
    ] {
        let dev = op
            .mosfet_op(name)
            .unwrap_or_else(|| panic!("missing {name}"));
        assert_ne!(dev.region, Region::Cutoff, "{name} is cut off");
        assert!(dev.id.abs() > 1e-7, "{name} carries no current: {}", dev.id);
    }
}

#[test]
fn nominal_ota_gain_and_phase_margin_are_in_paper_range() {
    let tb = build_open_loop_testbench(&OtaParameters::nominal(), &OtaTestbenchConfig::new())
        .expect("test bench builds");
    let op = dc_operating_point(&tb, &DcOptions::new()).expect("dc converges");
    let ac = ac_analysis(&tb, &op, &FrequencySweep::ota_default()).expect("ac runs");
    let response = ac.response_by_name(&tb, "out").unwrap();
    let m = measure::measure(ac.frequencies(), &response).expect("measurable");
    // The paper's OTA candidates span roughly 49–52 dB gain and 73–77° phase
    // margin; our Level-1 substrate should land in a broadly similar region.
    assert!(
        (30.0..80.0).contains(&m.dc_gain_db),
        "open-loop gain {} dB out of range",
        m.dc_gain_db
    );
    let pm = m.phase_margin_deg.expect("gain crosses 0 dB inside sweep");
    assert!(
        (20.0..120.0).contains(&pm),
        "phase margin {pm} deg out of range"
    );
    assert!(
        m.unity_gain_hz.unwrap() > 1e5,
        "unity-gain frequency too low"
    );
}

#[test]
fn longer_output_devices_increase_gain() {
    // In the symmetrical OTA the open-loop gain is B·gm1/(gds_M5 + gds_M9);
    // the output conductances scale as 1/L, so lengthening the output devices
    // (l1 for the PMOS mirror, l2 for the NMOS mirror) must raise the gain.
    let config = OtaTestbenchConfig::new();
    let mut short = OtaParameters::nominal();
    short.l1 = 0.5e-6;
    short.l2 = 0.5e-6;
    let mut long = OtaParameters::nominal();
    long.l1 = 2.0e-6;
    long.l2 = 2.0e-6;

    let gain_of = |params: &OtaParameters| {
        let tb = build_open_loop_testbench(params, &config).unwrap();
        let op = dc_operating_point(&tb, &DcOptions::new()).unwrap();
        let ac = ac_analysis(&tb, &op, &FrequencySweep::logarithmic(1.0, 1e4, 5)).unwrap();
        let response = ac.response_by_name(&tb, "out").unwrap();
        measure::dc_gain_db(&response)
    };
    let g_short = gain_of(&short);
    let g_long = gain_of(&long);
    assert!(
        g_long > g_short + 3.0,
        "expected gain to grow with output device length: {g_short} dB vs {g_long} dB"
    );
}
