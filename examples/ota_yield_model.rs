//! Builds the combined OTA model and exports the behavioural deliverables:
//! the `.tbl` lookup tables and the Verilog-A module of §4.4.
//!
//! ```bash
//! cargo run --release --example ota_yield_model -- /tmp/ota_model
//! ```

use ayb::behavioral::{generate_module, OtaSpec};
use ayb::core::{report, FlowBuilder, FlowConfig};
use std::path::PathBuf;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir: PathBuf = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/ota_yield_model".to_string())
        .into();

    let config = FlowConfig::demo_scale();
    println!("Generating the combined performance + variation model...");
    // Explicit seeding makes the exported artifacts bit-for-bit reproducible.
    let result = FlowBuilder::new(config).with_seed(2008).run()?;
    let model = &result.model;

    println!(
        "Model covers gain {:.2}..{:.2} dB, phase margin {:.2}..{:.2} deg ({} points)",
        model.gain_range_db().0,
        model.gain_range_db().1,
        model.pm_range_deg().0,
        model.pm_range_deg().1,
        model.points().len()
    );
    println!("{}", report::render_table2(&result.pareto_data));

    // Export the Verilog-A package (module + .tbl data files).
    let package = generate_module(model, "ota_yield_model");
    package
        .write_to(&out_dir)
        .map_err(|e| format!("failed to write Verilog-A package: {e}"))?;
    println!(
        "Wrote Verilog-A module and {} table files to {}",
        package.table_files.len(),
        out_dir.display()
    );

    // Also serialise the model itself for later reuse without re-running the flow.
    let model_json = serde_json_string(model)?;
    std::fs::write(out_dir.join("combined_model.json"), model_json)?;
    println!("Wrote combined_model.json");

    // Demonstrate a lookup against the exported model. Retargeting demands
    // worst-case (nominal minus variation) performance, so widen the phase
    // margin allowance until the front can serve the spec.
    let (gain_lo, gain_hi) = model.gain_range_db();
    let spec_gain = gain_lo + 0.5 * (gain_hi - gain_lo);
    let pm_nominal = model.pm_at_gain(spec_gain)?;
    let design = [2.0, 4.0, 8.0, 12.0, 16.0].iter().find_map(|margin| {
        let spec = OtaSpec::new(spec_gain, (pm_nominal - margin).max(1.0));
        model.design_for_spec(&spec).ok().map(|d| (spec, d))
    });
    match design {
        Some((spec, design)) => println!(
            "Spec gain > {:.2} dB retargeted to {:.2} dB; parameters: {}",
            spec.min_gain_db, design.retarget.new_gain_db, design.parameters
        ),
        None => println!(
            "No PM allowance up to 16 deg is servable at {spec_gain:.2} dB on this \
             demo-scale front; rerun with a larger scale for a denser model."
        ),
    }
    Ok(())
}

fn serde_json_string<T: serde::Serialize>(value: &T) -> Result<String, Box<dyn std::error::Error>> {
    Ok(serde_json::to_string_pretty(value)?)
}
