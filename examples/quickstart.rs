//! Quickstart: run the complete combined yield/performance modelling flow at a
//! reduced scale and use the resulting model to pick a design for a
//! specification.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use ayb::core::{report, verify_accuracy, FlowBuilder, FlowConfig, StderrObserver};
use ayb_behavioral::OtaSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A reduced-scale configuration keeps this example under a minute; switch
    // to `FlowConfig::paper_scale()` for the full 100×100 / 200-sample run.
    let config = FlowConfig::demo_scale();
    println!("Running the model-generation flow (§3 of the paper)...");
    println!(
        "  WBGA: {} individuals x {} generations, MC: {} samples per Pareto point",
        config.ga.population_size, config.ga.generations, config.monte_carlo.samples
    );

    // The staged FlowBuilder API: each stage is explicit, observers report
    // progress, and intermediate artifacts are inspectable between stages.
    let optimized = FlowBuilder::new(config.clone())
        .with_observer(StderrObserver)
        .optimize()?;
    println!(
        "  {} candidates evaluated, {} on the Pareto front",
        optimized.archive().len(),
        optimized.pareto().len()
    );

    let analyzed = optimized.analyze_variation()?;
    println!(
        "  {} Pareto points analysed with Monte Carlo",
        analyzed.pareto_data().len()
    );

    let result = analyzed.build_model()?;
    println!();
    println!("{}", report::render_table2(&result.pareto_data));
    println!("{}", report::render_table5(&result.summary(&config)));

    // Model use (§4.4): pick a spec inside the modelled range and retarget it.
    let (gain_lo, gain_hi) = result.model.gain_range_db();
    let spec_gain = gain_lo + 0.4 * (gain_hi - gain_lo);
    let pm = result.model.pm_at_gain(spec_gain)?;
    let spec = OtaSpec::new(spec_gain, pm - 3.0);
    println!(
        "Specification: gain > {:.2} dB, phase margin > {:.2} deg",
        spec.min_gain_db, spec.min_phase_margin_deg
    );

    let design = result.model.design_for_spec(&spec)?;
    println!("{}", report::render_table3(&design.retarget));
    println!("Interpolated design parameters: {}", design.parameters);

    // Close the loop against the transistor level (Table 4).
    if let Some((accuracy, _)) = verify_accuracy(&design, &config) {
        println!("{}", report::render_table4(&accuracy));
    }
    Ok(())
}
