//! Direct Monte Carlo yield analysis of a single OTA sizing — the
//! "conventional" building block the paper's model-based flow replaces.
//! Useful for exploring how the process/mismatch models behave. (This is the
//! expensive per-candidate loop that `ayb_core::FlowBuilder` amortises into a
//! reusable combined model; see `examples/quickstart.rs` for that flow.)
//!
//! ```bash
//! cargo run --release --example montecarlo_yield -- 200
//! ```

use ayb::circuit::ota::{build_open_loop_testbench, OtaParameters, OtaTestbenchConfig};
use ayb::core::measure_testbench;
use ayb::process::{montecarlo, Histogram, MonteCarloConfig, ProcessVariation, Summary};
use ayb_behavioral::OtaSpec;
use ayb_sim::FrequencySweep;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let samples: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100);

    let params = OtaParameters::nominal();
    let testbench = OtaTestbenchConfig::new();
    let sweep = FrequencySweep::logarithmic(10.0, 1e9, 6);
    let circuit = build_open_loop_testbench(&params, &testbench)?;

    println!("Monte Carlo analysis of the nominal symmetrical OTA ({samples} samples)...");
    let run = montecarlo::run_parallel(
        &circuit,
        &ProcessVariation::generic_035um(),
        &MonteCarloConfig::new(samples, 0xCAFE),
        4,
        |sample| measure_testbench(sample, &sweep).map(|p| (p.gain_db, p.phase_margin_deg)),
    );

    let gains: Vec<f64> = run.values.iter().map(|v| v.0).collect();
    let pms: Vec<f64> = run.values.iter().map(|v| v.1).collect();
    let gain_stats = Summary::of(&gains).ok_or("no samples simulated")?;
    let pm_stats = Summary::of(&pms).ok_or("no samples simulated")?;

    println!(
        "  gain: mean {:.2} dB, sigma {:.3} dB, 3-sigma variation {:.2}%",
        gain_stats.mean,
        gain_stats.std_dev,
        gain_stats.variation_percent(3.0)
    );
    println!(
        "  PM:   mean {:.2} deg, sigma {:.3} deg, 3-sigma variation {:.2}%",
        pm_stats.mean,
        pm_stats.std_dev,
        pm_stats.variation_percent(3.0)
    );

    if let Some(hist) = Histogram::of(&gains, 10) {
        println!(
            "  gain histogram ({} bins of {:.3} dB):",
            hist.counts.len(),
            hist.bin_width
        );
        for (i, count) in hist.counts.iter().enumerate() {
            let lo = hist.start + i as f64 * hist.bin_width;
            println!("    {:>7.2} dB | {}", lo, "#".repeat(*count));
        }
    }

    let spec = OtaSpec::new(gain_stats.mean - 3.0 * gain_stats.std_dev, 0.0);
    let passing = run
        .values
        .iter()
        .filter(|(g, pm)| spec.is_met(*g, *pm))
        .count();
    println!(
        "  yield against gain > {:.2} dB: {:.1}% ({} of {} samples, {} failed sims)",
        spec.min_gain_db,
        100.0 * passing as f64 / run.values.len().max(1) as f64,
        passing,
        run.values.len(),
        run.failed_samples
    );
    Ok(())
}
