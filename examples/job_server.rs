//! Serve a batch of model-generation runs through the job server.
//!
//! Submits three seeds to a store-backed queue, drains them through a
//! two-worker [`ayb_jobs::JobServer`] with live progress events, and shows
//! that the digests match the same seeds run sequentially — worker count and
//! scheduling never change a result.
//!
//! ```text
//! cargo run --release --example job_server
//! ```

use ayb_core::{FlowBuilder, FlowConfig, FlowResult};
use ayb_jobs::{JobServer, JobServerConfig};
use ayb_moo::OptimizerConfig;
use ayb_store::Store;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let root = std::env::temp_dir().join(format!("ayb-job-server-example-{}", std::process::id()));
    let store = Store::open(&root)?;
    let seeds = [2008u64, 42, 7];

    // Submit: a manifest per run, status `queued`, nothing executed yet.
    let mut submitted = Vec::new();
    for &seed in &seeds {
        let mut config = FlowConfig::reduced();
        config.ga.seed = seed;
        config.monte_carlo.seed = seed;
        let optimizer = OptimizerConfig::Wbga(config.ga);
        let handle = store.enqueue_run(seed, &optimizer, &config)?;
        println!("submitted {} (seed {seed})", handle.id());
        submitted.push(handle.id().to_string());
    }

    // Serve: two workers drain the queue, checkpointing every generation.
    let server = JobServer::new(store.clone(), JobServerConfig::drain_with_workers(2));
    server.set_event_hook(|event| println!("  event: {event:?}"));
    let report = server.run()?;
    println!(
        "served: {} completed, {} failed",
        report.completed.len(),
        report.failed.len()
    );

    // Determinism: each served run digests exactly like a sequential run.
    for (&seed, run_id) in seeds.iter().zip(&submitted) {
        let served: FlowResult = store.run(run_id)?.load_result()?;
        let sequential = FlowBuilder::new(FlowConfig::reduced())
            .with_seed(seed)
            .run()?;
        println!(
            "seed {seed}: served {:016x}, sequential {:016x}{}",
            served.determinism_digest(),
            sequential.determinism_digest(),
            if served.determinism_digest() == sequential.determinism_digest() {
                " ✓"
            } else {
                " ✗ MISMATCH"
            }
        );
    }

    let _ = std::fs::remove_dir_all(root);
    Ok(())
}
