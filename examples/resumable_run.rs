//! Durable, resumable flows: run with a store, interrupt mid-optimisation,
//! resume from the latest checkpoint, and verify the result is identical to
//! an uninterrupted same-seed run.
//!
//! ```bash
//! cargo run --release --example resumable_run
//! ```
//!
//! The same workflow is available from the shell via the `ayb` CLI:
//! `ayb run --halt-after 3` followed by `ayb resume <run_id>`.

use ayb_core::{AybError, FlowBuilder, FlowConfig};
use ayb_moo::CheckpointError;
use ayb_store::{RunStatus, Store};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let root = std::env::temp_dir().join(format!("ayb-example-store-{}", std::process::id()));
    let store = Store::open(&root)?;
    let config = FlowConfig::reduced();

    // Reference: the uninterrupted run. Every generation is checkpointed
    // under runs/clean/checkpoints/ and the result lands in result.json.
    let clean = FlowBuilder::new(config.clone())
        .with_store(&store)
        .with_run_id("clean")
        .with_seed(2008)
        .run()?;
    println!(
        "clean run:   {} evaluations, {} Pareto points, digest {:016x}",
        clean.optimization.evaluations,
        clean.pareto.len(),
        clean.determinism_digest()
    );

    // "Crash" a second run after three checkpoints. The on-disk state is
    // exactly what a killed process leaves behind.
    let crashed = FlowBuilder::new(config)
        .with_store(&store)
        .with_run_id("victim")
        .with_seed(2008)
        .halt_after_checkpoints(3)
        .run();
    match crashed {
        Err(AybError::Checkpoint(CheckpointError::Halted { generation })) => {
            println!("victim run:  interrupted at generation {generation}");
        }
        other => panic!("expected an interruption, got {other:?}"),
    }
    let victim = store.run("victim")?;
    println!(
        "victim run:  status `{}`, checkpoints {:?}",
        victim.status()?,
        victim.checkpoint_generations()?
    );

    // Resume from the store: configuration, optimiser and seed come from the
    // manifest, the population/archive/RNG state from the latest checkpoint.
    let resumed = FlowBuilder::resume(&store, "victim")?.run()?;
    println!(
        "resumed run: {} evaluations, digest {:016x}",
        resumed.optimization.evaluations,
        resumed.determinism_digest()
    );

    assert_eq!(clean.archive, resumed.archive);
    assert_eq!(clean.pareto_data, resumed.pareto_data);
    assert_eq!(clean.determinism_digest(), resumed.determinism_digest());
    assert_eq!(victim.status()?, RunStatus::Completed);
    println!("resumed result is identical to the uninterrupted run");

    let _ = std::fs::remove_dir_all(root);
    Ok(())
}
