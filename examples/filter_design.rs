//! Hierarchical design of the 2nd-order anti-aliasing filter (paper §5):
//! select an OTA through the combined model, size the filter capacitors with
//! the behavioural model only, then verify the final design at transistor
//! level with Monte Carlo.
//!
//! ```bash
//! cargo run --release --example filter_design
//! ```

use ayb::behavioral::{FilterSpec, OtaSpec};
use ayb::core::{design_filter, filter_design, FlowBuilder, FlowConfig, StderrObserver};
use ayb_moo::GaConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = FlowConfig::demo_scale();
    println!("Step 1: generate the combined OTA model...");
    // Demo-scale fronts are sparse, so which corner of the trade-off the
    // model covers swings with the seed; this one yields a front whose
    // filter design meets the template with margin.
    let flow = FlowBuilder::new(config.clone())
        .with_seed(99)
        .with_observer(StderrObserver)
        .run()?;
    let model = &flow.model;

    // Step 2: specification-driven OTA selection. The paper asks for 50 dB and
    // 60 degrees; anchor the requirement inside the modelled range so the
    // demo-scale model can always serve it.
    let (gain_lo, gain_hi) = model.gain_range_db();
    let spec_gain = (gain_lo + 0.3 * (gain_hi - gain_lo))
        .min(50.0)
        .max(gain_lo + 0.1);
    let pm_floor = model.pm_at_gain(spec_gain)? - 8.0;
    let ota_spec = OtaSpec::new(spec_gain, pm_floor.max(30.0));
    let filter_spec = FilterSpec::anti_aliasing_1mhz();
    println!(
        "Step 2: OTA spec gain > {:.1} dB, PM > {:.1} deg; filter template: -3 dB @ 1 MHz, -30 dB @ 10 MHz",
        ota_spec.min_gain_db, ota_spec.min_phase_margin_deg
    );

    // Step 3: size C1-C3 against the behavioural filter (30 x 40 in the
    // paper). `design_filter` drives the same `Optimizer` machinery the OTA
    // flow used in step 1.
    let mut ga = GaConfig::paper_filter();
    ga.population_size = 20;
    ga.generations = 15;
    let design = design_filter(model, &ota_spec, &filter_spec, ga, config.testbench.cload)?;
    println!(
        "Step 3: capacitors C1 = {:.2} pF, C2 = {:.2} pF, C3 = {:.2} pF (margin {:.2} dB, {} behavioural evaluations)",
        design.capacitors.c1 * 1e12,
        design.capacitors.c2 * 1e12,
        design.capacitors.c3 * 1e12,
        design.margin_db,
        design.evaluations
    );
    if let Some(cutoff) = design.response.cutoff_hz() {
        println!(
            "         behavioural -3 dB cut-off: {:.2} MHz",
            cutoff / 1e6
        );
    }

    // Step 4: transistor-level verification (Figure 11 + 500-sample MC in the paper).
    println!("Step 4: transistor-level verification (reduced Monte Carlo)...");
    if let Some(report) = filter_design::verify_filter_yield(&design, &filter_spec, &config, 20, 42)
    {
        println!(
            "         yield {:.1}% over {} samples ({} failed to simulate)",
            report.yield_percent(),
            report.samples,
            report.failed_samples
        );
    } else {
        println!("         transistor-level verification could not run on this sizing");
    }
    Ok(())
}
