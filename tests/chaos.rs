//! Deterministic chaos harness for durable sharded flows.
//!
//! A *crash schedule* is a scripted sequence of kill-points expressed
//! through the flow's own deterministic halt hooks — optimiser checkpoint
//! boundaries (`FlowBuilder::halt_after_checkpoints`) and variation-stage
//! boundaries (`FlowBuilder::halt_variation_when`: task claim, result
//! write, epoch close). Halting at a boundary leaves the on-disk run
//! indistinguishable from a SIGKILL there (apart from the recorded
//! `Interrupted` status), so driving one run through a schedule of
//! halt-and-resume cycles simulates an arbitrarily unlucky sequence of
//! crashes.
//!
//! The harness ([`run_with_chaos`]) executes a run under a schedule,
//! resuming after every scripted crash until the flow completes, and the
//! tests assert the invariant everything else rests on: **every schedule
//! converges to the same `determinism_digest`** as the clean serial run.
//! Schedules are derived from seeds ([`schedule_from_seed`]), so failures
//! reproduce exactly; future PRs can reuse the harness by composing new
//! [`KillPoint`]s.

use ayb_core::{
    AybError, FlowBuilder, FlowConfig, FlowResult, VariationBoundary, VariationHaltHook,
};
use ayb_moo::CheckpointError;
use ayb_net::{Coordinator, CoordinatorConfig, TcpTransport};
use ayb_obs::{kind as event_kind, trace, JsonlSink, Recorder};
use ayb_store::{RunStatus, ShardOutcome, ShardSummary, Store, VariationOutcome};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// The harness
// ---------------------------------------------------------------------------

/// Which kind of variation-stage boundary a kill-point targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BoundaryKind {
    /// Between claiming a point's analysis task and producing its result.
    Claim,
    /// Right after a point's result (and checkpoint) landed.
    ResultWrite,
    /// Right before the variation epoch is disposed of.
    EpochClose,
}

/// One scripted crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum KillPoint {
    /// Crash after the Nth optimiser generation checkpoint of this attempt.
    AtGenerationCheckpoint(usize),
    /// Crash at the Nth variation boundary of `kind` in this attempt.
    AtVariationBoundary(BoundaryKind, usize),
}

/// Derives a reproducible crash schedule (1..=3 kills) from a seed.
fn schedule_from_seed(seed: u64) -> Vec<KillPoint> {
    let mut rng = StdRng::seed_from_u64(seed);
    let kills = rng.gen_range(1..=3usize);
    (0..kills)
        .map(|_| {
            let ordinal = rng.gen_range(1..=3usize);
            match rng.gen_range(0..4usize) {
                0 => KillPoint::AtGenerationCheckpoint(ordinal),
                1 => KillPoint::AtVariationBoundary(BoundaryKind::Claim, ordinal),
                2 => KillPoint::AtVariationBoundary(BoundaryKind::ResultWrite, ordinal),
                _ => KillPoint::AtVariationBoundary(BoundaryKind::EpochClose, 1),
            }
        })
        .collect()
}

/// A hook that halts the flow at the `ordinal`-th boundary of `kind`.
fn boundary_hook(kind: BoundaryKind, ordinal: usize) -> VariationHaltHook {
    let seen = AtomicUsize::new(0);
    Arc::new(move |boundary| {
        let matched = matches!(
            (kind, boundary),
            (BoundaryKind::Claim, VariationBoundary::Claim { .. })
                | (
                    BoundaryKind::ResultWrite,
                    VariationBoundary::ResultWrite { .. }
                )
                | (BoundaryKind::EpochClose, VariationBoundary::EpochClose)
        );
        matched && seen.fetch_add(1, Ordering::SeqCst) + 1 >= ordinal
    })
}

/// Executes run `run_id` under a crash schedule: launch, crash at each
/// scripted kill-point in order, resume, and keep going until the flow
/// completes. A kill-point that never fires (the targeted boundary count is
/// not reached in that attempt — e.g. the optimisation already finished, or
/// few points remain) simply lets the attempt complete; that, too, is a
/// legitimate crash history.
///
/// Panics (failing the test) if a resume errors for any reason other than
/// the scripted halt, or if the schedule somehow fails to converge within
/// `schedule.len() + 1` attempts.
fn run_with_chaos(
    store: &Store,
    run_id: &str,
    config: &FlowConfig,
    seed: u64,
    schedule: &[KillPoint],
) -> FlowResult {
    let mut kills = schedule.iter().copied();
    let mut next_kill = kills.next();
    for attempt in 0..=schedule.len() {
        let mut builder = if attempt == 0 {
            FlowBuilder::new(config.clone())
                .with_seed(seed)
                .with_store(store)
                .with_run_id(run_id)
        } else {
            FlowBuilder::resume(store, run_id).expect("interrupted run resumes")
        };
        match next_kill {
            Some(KillPoint::AtGenerationCheckpoint(n)) => {
                builder = builder.halt_after_checkpoints(n);
            }
            Some(KillPoint::AtVariationBoundary(kind, n)) => {
                builder = builder.halt_variation_when(boundary_hook(kind, n));
            }
            None => {}
        }
        match builder.run() {
            Ok(result) => return result,
            Err(AybError::Checkpoint(CheckpointError::Halted { .. })) => {
                let status = store
                    .run(run_id)
                    .and_then(|handle| handle.status())
                    .expect("halted run is readable");
                assert_eq!(
                    status,
                    RunStatus::Interrupted,
                    "a scripted crash leaves the run resumable"
                );
                next_kill = kills.next();
            }
            Err(error) => panic!("attempt {attempt} failed non-deterministically: {error}"),
        }
    }
    panic!("schedule {schedule:?} did not converge");
}

// ---------------------------------------------------------------------------
// Fixtures
// ---------------------------------------------------------------------------

fn temp_store(label: &str) -> (PathBuf, Store) {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let root = std::env::temp_dir().join(format!(
        "ayb-chaos-test-{label}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let store = Store::open(&root).expect("store opens");
    (root, store)
}

/// A small sharded configuration whose wall clock is split between the
/// optimisation (4 generations) and the variation stage (8 points), so both
/// families of kill-points land in live code. Variation points travel in
/// batches of 3 (8 points → batches of 3, 3 and 2), so result-write
/// kill-points can land *inside* a batch, between its per-point
/// checkpoints.
fn chaos_config() -> FlowConfig {
    let mut config = FlowConfig::reduced();
    config.ga.generations = 4;
    config.sweep = ayb_sim::FrequencySweep::logarithmic(10.0, 1e9, 4);
    config.monte_carlo.samples = 8;
    config.max_pareto_points = 8;
    config.sharded = true;
    config.shard_size = 3;
    config.variation_batch = 3;
    config
}

const CHAOS_SEED: u64 = 2008;

fn reference_digest() -> u64 {
    let mut serial = chaos_config();
    serial.sharded = false;
    FlowBuilder::new(serial)
        .with_seed(CHAOS_SEED)
        .run()
        .expect("reference flow completes")
        .determinism_digest()
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

/// Hand-picked schedules covering every boundary kind at least once,
/// including back-to-back crashes in the same stage.
#[test]
fn explicit_crash_schedules_converge_to_the_reference_digest() {
    let expected = reference_digest();
    let schedules: &[&[KillPoint]] = &[
        &[KillPoint::AtGenerationCheckpoint(2)],
        &[KillPoint::AtVariationBoundary(BoundaryKind::Claim, 1)],
        &[KillPoint::AtVariationBoundary(BoundaryKind::ResultWrite, 4)],
        &[KillPoint::AtVariationBoundary(BoundaryKind::EpochClose, 1)],
        &[
            KillPoint::AtGenerationCheckpoint(1),
            KillPoint::AtVariationBoundary(BoundaryKind::Claim, 2),
            KillPoint::AtVariationBoundary(BoundaryKind::ResultWrite, 1),
            KillPoint::AtVariationBoundary(BoundaryKind::EpochClose, 1),
        ],
    ];
    for (index, schedule) in schedules.iter().enumerate() {
        let (root, store) = temp_store("explicit");
        let run_id = format!("chaos-{index}");
        let result = run_with_chaos(&store, &run_id, &chaos_config(), CHAOS_SEED, schedule);
        assert_eq!(
            result.determinism_digest(),
            expected,
            "schedule {schedule:?} perturbed the result"
        );
        let handle = store.run(&run_id).unwrap();
        assert_eq!(handle.status().unwrap(), RunStatus::Completed);
        assert_eq!(
            handle.shard_summary().unwrap(),
            ShardSummary::default(),
            "no shard debris survives schedule {schedule:?}"
        );
        let _ = std::fs::remove_dir_all(root);
    }
}

/// Crashes landing *inside* a variation batch: with batches of 3, the 2nd
/// result-write boundary is mid-way through the first batch (one point
/// checkpointed, two still pending in the same claimed task), and the 5th
/// is mid-way through the second. A crash there abandons the rest of the
/// batch; the resume must re-chunk only the unfinished points, keep every
/// already-checkpointed point, and still converge to the serial digest.
#[test]
fn crashes_inside_a_variation_batch_converge_to_the_reference_digest() {
    let expected = reference_digest();
    let schedules: &[&[KillPoint]] = &[
        // Mid-first-batch, then mid-second-batch of the re-chunked remainder.
        &[
            KillPoint::AtVariationBoundary(BoundaryKind::ResultWrite, 2),
            KillPoint::AtVariationBoundary(BoundaryKind::ResultWrite, 2),
        ],
        // Crash between claiming a batch and its first result write.
        &[
            KillPoint::AtVariationBoundary(BoundaryKind::Claim, 2),
            KillPoint::AtVariationBoundary(BoundaryKind::ResultWrite, 5),
        ],
    ];
    for (index, schedule) in schedules.iter().enumerate() {
        let (root, store) = temp_store("mid-batch");
        let run_id = format!("chaos-batch-{index}");
        let result = run_with_chaos(&store, &run_id, &chaos_config(), CHAOS_SEED, schedule);
        assert_eq!(
            result.determinism_digest(),
            expected,
            "mid-batch schedule {schedule:?} perturbed the result"
        );
        let handle = store.run(&run_id).unwrap();
        assert_eq!(handle.status().unwrap(), RunStatus::Completed);
        assert_eq!(
            handle.shard_summary().unwrap(),
            ShardSummary::default(),
            "no shard debris survives mid-batch schedule {schedule:?}"
        );
        let _ = std::fs::remove_dir_all(root);
    }
}

/// Seed-derived schedules: N random crash histories, every one of which
/// must converge to the same digest as the clean run. Increasing the seed
/// range is the cheap way for future PRs to buy more coverage.
#[test]
fn seeded_crash_schedules_converge_to_the_reference_digest() {
    let expected = reference_digest();
    for schedule_seed in 0..6u64 {
        let schedule = schedule_from_seed(schedule_seed);
        let (root, store) = temp_store("seeded");
        let run_id = format!("chaos-seed-{schedule_seed}");
        let result = run_with_chaos(&store, &run_id, &chaos_config(), CHAOS_SEED, &schedule);
        assert_eq!(
            result.determinism_digest(),
            expected,
            "seeded schedule {schedule_seed} ({schedule:?}) perturbed the result"
        );
        let _ = std::fs::remove_dir_all(root);
    }
}

/// The schedule derivation itself is deterministic — the property that makes
/// a chaos failure reproducible from its seed alone.
#[test]
fn schedules_are_reproducible_from_their_seed() {
    for seed in 0..32u64 {
        assert_eq!(schedule_from_seed(seed), schedule_from_seed(seed));
        assert!(!schedule_from_seed(seed).is_empty());
        assert!(schedule_from_seed(seed).len() <= 3);
    }
    // And not all identical.
    let distinct: std::collections::HashSet<String> = (0..32u64)
        .map(|seed| format!("{:?}", schedule_from_seed(seed)))
        .collect();
    assert!(distinct.len() > 3, "schedules vary with the seed");
}

// ---------------------------------------------------------------------------
// Chaos over the network data plane (ayb_net)
// ---------------------------------------------------------------------------

/// The chaos configuration pointed at a coordinator instead of the store's
/// on-disk shard plane.
fn tcp_config(url: &str) -> FlowConfig {
    let mut config = chaos_config();
    config.transport = Some(url.to_string());
    config
}

/// The disk-plane crash schedules hold verbatim when the shards travel over
/// TCP: every halt-and-resume history converges to the serial digest, and
/// the run leaves a transport report naming the coordinator it used.
#[test]
fn crash_schedules_over_the_tcp_plane_converge_to_the_reference_digest() {
    let expected = reference_digest();
    let coordinator = Coordinator::bind("127.0.0.1:0", CoordinatorConfig::default())
        .expect("coordinator binds an ephemeral port");
    let schedules: &[&[KillPoint]] = &[
        &[KillPoint::AtGenerationCheckpoint(2)],
        &[
            KillPoint::AtVariationBoundary(BoundaryKind::Claim, 2),
            KillPoint::AtVariationBoundary(BoundaryKind::EpochClose, 1),
        ],
    ];
    for (index, schedule) in schedules.iter().enumerate() {
        let (root, store) = temp_store("tcp");
        let run_id = format!("tcp-chaos-{index}");
        let result = run_with_chaos(
            &store,
            &run_id,
            &tcp_config(&coordinator.url()),
            CHAOS_SEED,
            schedule,
        );
        assert_eq!(
            result.determinism_digest(),
            expected,
            "TCP schedule {schedule:?} perturbed the result"
        );
        let value = store
            .run(&run_id)
            .unwrap()
            .transport_report_value()
            .unwrap()
            .expect("a sharded TCP run persists its transport report");
        let report = {
            use serde::Deserialize;
            ayb_core::TransportReport::from_value(&value).expect("transport report parses")
        };
        assert_eq!(report.transport, coordinator.url());
        // The report counts the *final* attempt's traffic. A schedule whose
        // last crash is at the epoch-close boundary leaves nothing for the
        // last resume to shard (every generation and point is already
        // checkpointed), so only the first schedule guarantees wire use.
        if index == 0 {
            assert!(report.requests > 0, "the wire was actually used");
        }
        let _ = std::fs::remove_dir_all(root);
    }
}

/// Killing the coordinator mid-variation (all its state is in memory, so
/// `wipe_state` *is* a kill-and-restart) strands the open epoch; the flow
/// must degrade the lost points to local analysis — noisily, with recorded
/// incidents — and still converge to the serial digest.
#[test]
fn coordinator_restart_mid_variation_degrades_locally_and_converges() {
    let expected = reference_digest();
    let coordinator = Arc::new(
        Coordinator::bind("127.0.0.1:0", CoordinatorConfig::default())
            .expect("coordinator binds an ephemeral port"),
    );
    let (root, store) = temp_store("tcp-restart");

    let wiped = Arc::new(AtomicBool::new(false));
    let hook: VariationHaltHook = {
        let wiped = Arc::clone(&wiped);
        let coordinator = Arc::clone(&coordinator);
        Arc::new(move |boundary| {
            if matches!(boundary, VariationBoundary::Claim { .. })
                && !wiped.swap(true, Ordering::SeqCst)
            {
                coordinator.wipe_state();
            }
            false // never halt: the flow must survive in one attempt
        })
    };

    let result = FlowBuilder::new(tcp_config(&coordinator.url()))
        .with_seed(CHAOS_SEED)
        .with_store(&store)
        .with_run_id("tcp-restart")
        .halt_variation_when(hook)
        .run()
        .expect("the flow survives a coordinator restart");

    assert!(wiped.load(Ordering::SeqCst), "the scripted restart fired");
    assert_eq!(
        result.determinism_digest(),
        expected,
        "local fallback after the restart perturbed the result"
    );
    assert!(
        result.timings.shards_degraded >= 1,
        "the stranded points degraded to local analysis"
    );
    let value = store
        .run("tcp-restart")
        .unwrap()
        .transport_report_value()
        .unwrap()
        .expect("transport report persisted");
    let report = {
        use serde::Deserialize;
        ayb_core::TransportReport::from_value(&value).expect("transport report parses")
    };
    assert!(
        !report.incidents.is_empty(),
        "each degradation is recorded with its cause"
    );
    assert!(report
        .incidents
        .iter()
        .all(|incident| !incident.detail.is_empty()));
    let _ = std::fs::remove_dir_all(root);
}

/// A worker that claims a variation point and hangs (no heartbeat) has its
/// claim stolen by the submitting flow; when the zombie finally wakes and
/// writes a *poisoned* outcome under its superseded token, the coordinator
/// must fence the write off — the digest stays bit-identical to serial.
#[test]
fn hung_tcp_claim_is_stolen_and_the_late_zombie_write_is_fenced_off() {
    let expected = reference_digest();
    // An aggressive steal threshold, so the hung claim is recovered at the
    // driver's next recovery pass instead of a minute later.
    let coordinator = Coordinator::bind(
        "127.0.0.1:0",
        CoordinatorConfig {
            stale_after: Duration::from_millis(100),
        },
    )
    .expect("coordinator binds an ephemeral port");
    let (root, store) = temp_store("tcp-zombie");

    let variation_started = Arc::new(AtomicBool::new(false));
    let zombie_submitted = Arc::new(AtomicBool::new(false));

    // The zombie worker: claims one variation point exactly like `ayb serve
    // --transport` would, then hangs without heartbeating. Once the flow has
    // stolen the point and landed the authoritative result, it wakes and
    // performs its late poisoned write, which fencing must reject.
    let zombie_transport = TcpTransport::connect(coordinator.local_addr().to_string());
    let zombie = {
        let transport = zombie_transport.clone();
        let started = Arc::clone(&variation_started);
        let submitted = Arc::clone(&zombie_submitted);
        std::thread::spawn(move || {
            let deadline = Instant::now() + Duration::from_secs(120);
            while !started.load(Ordering::SeqCst) {
                assert!(Instant::now() < deadline, "variation stage never started");
                std::thread::sleep(Duration::from_millis(2));
            }
            let task = loop {
                if let Ok(Some(task)) = transport.claim_next("zombie") {
                    break task;
                }
                assert!(
                    Instant::now() < deadline,
                    "no variation point left to claim"
                );
                std::thread::sleep(Duration::from_millis(2));
            };
            // Hang. The steward's stolen re-analysis landing is visible as
            // the shard's accepted outcome.
            loop {
                if let Ok(Some(_)) = transport.fetch_outcome(&task.epoch, task.shard) {
                    break;
                }
                assert!(Instant::now() < deadline, "the hung claim was never stolen");
                std::thread::sleep(Duration::from_millis(5));
            }
            // The late write: poisoned (a lost analysis plus a bogus
            // timing), under the superseded token. If this were accepted,
            // the digest below could not match.
            let poison = ShardOutcome::Variation(VariationOutcome {
                data: None,
                elapsed_seconds: 999.0,
            });
            let accepted = transport
                .submit_with_token(&task.epoch, task.shard, task.token, &poison)
                .expect("the epoch is held open until this write");
            assert!(!accepted, "a fenced-off zombie write must be rejected");
            submitted.store(true, Ordering::SeqCst);
        })
    };

    let hook: VariationHaltHook = {
        let started = Arc::clone(&variation_started);
        let submitted = Arc::clone(&zombie_submitted);
        Arc::new(move |boundary| {
            match boundary {
                VariationBoundary::Claim { .. } => {
                    started.store(true, Ordering::SeqCst);
                }
                VariationBoundary::EpochClose => {
                    // Hold the epoch open until the zombie's late write has
                    // been rejected, so the fencing path (not an
                    // unknown-epoch error) is what the test exercises.
                    let deadline = Instant::now() + Duration::from_secs(120);
                    while !submitted.load(Ordering::SeqCst) {
                        assert!(Instant::now() < deadline, "the zombie never wrote");
                        std::thread::sleep(Duration::from_millis(5));
                    }
                }
                _ => {}
            }
            false // never halt
        })
    };

    let result = FlowBuilder::new(tcp_config(&coordinator.url()))
        .with_seed(CHAOS_SEED)
        .with_store(&store)
        .with_run_id("tcp-zombie")
        .halt_variation_when(hook)
        .run()
        .expect("the flow completes around the hung worker");
    zombie.join().expect("zombie thread assertions hold");

    assert_eq!(
        result.determinism_digest(),
        expected,
        "the stolen point or the rejected write perturbed the result"
    );
    assert!(
        zombie_transport.stats().fenced_rejections >= 1,
        "the zombie's client counted its rejection"
    );
    assert!(
        coordinator.stats().fenced_rejections >= 1,
        "the coordinator counted the fenced write"
    );
    let _ = std::fs::remove_dir_all(root);
}

// ---------------------------------------------------------------------------
// Telemetry under chaos (ayb_obs)
// ---------------------------------------------------------------------------

/// Every kill/resume cycle must leave a well-formed `events.jsonl`: each
/// line parses, each process's events are monotonically ordered, each
/// attempt opens with a `flow_start`, and the final attempt's shard
/// request/fence/degrade events reconcile **exactly** with the
/// `FlowTimings` counters of the result (events are emitted at the same
/// code sites that bump the counters, so any drift is a bug).
#[test]
fn chaos_cycles_leave_wellformed_event_logs_that_reconcile_with_timings() {
    let coordinator = Coordinator::bind("127.0.0.1:0", CoordinatorConfig::default())
        .expect("coordinator binds an ephemeral port");
    let schedules: &[&[KillPoint]] = &[
        &[KillPoint::AtGenerationCheckpoint(2)],
        &[
            KillPoint::AtGenerationCheckpoint(1),
            KillPoint::AtVariationBoundary(BoundaryKind::ResultWrite, 2),
        ],
    ];
    for (index, schedule) in schedules.iter().enumerate() {
        let (root, store) = temp_store("events");
        let run_id = format!("events-chaos-{index}");
        let result = run_with_chaos(
            &store,
            &run_id,
            &tcp_config(&coordinator.url()),
            CHAOS_SEED,
            schedule,
        );

        let handle = store.run(&run_id).unwrap();
        let events =
            ayb_obs::read_events(&handle.events_path()).expect("events.jsonl is well-formed");
        ayb_obs::check_monotonic_per_pid(&events).expect("per-process ordering holds");
        let attempts = trace::attempts(&events);
        assert!(
            attempts.len() >= 2,
            "schedule {schedule:?} recorded {} attempt(s); expected the crash + resume history",
            attempts.len()
        );

        let final_events = trace::final_attempt(&events);
        assert_eq!(
            trace::count_kind(final_events, event_kind::RUN_COMPLETED),
            1,
            "the final attempt records its completion"
        );
        assert_eq!(
            trace::count_kind(final_events, event_kind::SHARD_REQUEST),
            result.timings.shard_requests,
            "one shard_request event per transport round-trip"
        );
        assert_eq!(
            trace::count_kind(final_events, event_kind::SHARD_FENCED),
            result.timings.shards_fenced,
            "one shard_fenced event per fenced write"
        );
        assert_eq!(
            trace::count_kind(final_events, event_kind::SHARD_DEGRADED) as usize,
            result.timings.shards_degraded,
            "one shard_degraded event per local fallback"
        );
        // Interrupted attempts each record their interruption.
        assert_eq!(
            trace::count_kind(&events, event_kind::RUN_INTERRUPTED),
            (attempts.len() - 1) as u64,
            "every crashed attempt left a run_interrupted marker"
        );
        let _ = std::fs::remove_dir_all(root);
    }
}

/// The end-to-end forensics story: a TCP sharded run with a hung zombie
/// worker whose stolen claim and fenced-off late write all land in the
/// run's `events.jsonl` — the zombie worker appends to the *same* file
/// through its own recorder, exactly as `ayb serve` on another host would
/// to a shared store. From that one file the trace module reconstructs the
/// full timeline (claim → steal → fenced submit), and the digest is still
/// bit-identical to the telemetry-free serial reference.
#[test]
fn events_jsonl_reconstructs_the_fenced_zombie_timeline() {
    let expected = reference_digest();
    let coordinator = Coordinator::bind(
        "127.0.0.1:0",
        CoordinatorConfig {
            stale_after: Duration::from_millis(100),
        },
    )
    .expect("coordinator binds an ephemeral port");
    let (root, store) = temp_store("forensics");
    let run_id = "forensics";

    // Pre-create the run directory so the zombie can append to the run's
    // events.jsonl from the start (atomic appends interleave safely).
    let events_path = store.root().join("runs").join(run_id).join("events.jsonl");

    let variation_started = Arc::new(AtomicBool::new(false));
    let zombie_submitted = Arc::new(AtomicBool::new(false));

    let zombie_recorder = Recorder::new();
    zombie_recorder.add_sink(Box::new(JsonlSink::new(&events_path)));
    let zombie_transport = TcpTransport::connect(coordinator.local_addr().to_string())
        .with_recorder(zombie_recorder.clone());
    let zombie = {
        let transport = zombie_transport.clone();
        let started = Arc::clone(&variation_started);
        let submitted = Arc::clone(&zombie_submitted);
        std::thread::spawn(move || {
            let deadline = Instant::now() + Duration::from_secs(120);
            while !started.load(Ordering::SeqCst) {
                assert!(Instant::now() < deadline, "variation stage never started");
                std::thread::sleep(Duration::from_millis(2));
            }
            let task = loop {
                if let Ok(Some(task)) = transport.claim_next("zombie") {
                    break task;
                }
                assert!(
                    Instant::now() < deadline,
                    "no variation point left to claim"
                );
                std::thread::sleep(Duration::from_millis(2));
            };
            loop {
                if let Ok(Some(_)) = transport.fetch_outcome(&task.epoch, task.shard) {
                    break;
                }
                assert!(Instant::now() < deadline, "the hung claim was never stolen");
                std::thread::sleep(Duration::from_millis(5));
            }
            let poison = ShardOutcome::Variation(VariationOutcome {
                data: None,
                elapsed_seconds: 999.0,
            });
            let accepted = transport
                .submit_with_token(&task.epoch, task.shard, task.token, &poison)
                .expect("the epoch is held open until this write");
            assert!(!accepted, "a fenced-off zombie write must be rejected");
            submitted.store(true, Ordering::SeqCst);
        })
    };

    let hook: VariationHaltHook = {
        let started = Arc::clone(&variation_started);
        let submitted = Arc::clone(&zombie_submitted);
        Arc::new(move |boundary| {
            match boundary {
                VariationBoundary::Claim { .. } => {
                    started.store(true, Ordering::SeqCst);
                }
                VariationBoundary::EpochClose => {
                    let deadline = Instant::now() + Duration::from_secs(120);
                    while !submitted.load(Ordering::SeqCst) {
                        assert!(Instant::now() < deadline, "the zombie never wrote");
                        std::thread::sleep(Duration::from_millis(5));
                    }
                }
                _ => {}
            }
            false // never halt
        })
    };

    let result = FlowBuilder::new(tcp_config(&coordinator.url()))
        .with_seed(CHAOS_SEED)
        .with_store(&store)
        .with_run_id(run_id)
        .halt_variation_when(hook)
        .run()
        .expect("the flow completes around the hung worker");
    zombie.join().expect("zombie thread assertions hold");

    assert_eq!(
        result.determinism_digest(),
        expected,
        "telemetry or the fenced write perturbed the result"
    );

    // The shared events.jsonl tells the whole story. (No per-pid ordering
    // check here: the zombie runs as a thread of *this* process purely as a
    // test artifact, so the file holds two same-pid recorder streams; real
    // workers are separate processes, each with one recorder.)
    let events = ayb_obs::read_events(&events_path).expect("events.jsonl is well-formed");
    let fenced: Vec<_> = events
        .iter()
        .filter(|event| event.kind == event_kind::SHARD_FENCED)
        .collect();
    assert!(
        !fenced.is_empty(),
        "the zombie's rejected write is in the log"
    );
    // The fenced submit names its stale token, and a *higher* token claim
    // exists for the same shard — the steal is reconstructible.
    let stale = fenced[0];
    let stale_token = stale.fence.expect("fenced event carries its token");
    let steal = events.iter().any(|event| {
        event.kind == event_kind::SHARD_CLAIM
            && event.epoch == stale.epoch
            && event.shard == stale.shard
            && event.fence.map(|token| token > stale_token) == Some(true)
    });
    assert!(steal, "a higher-token claim (the steal) is in the log");
    // And the human-facing trace renders the chain.
    let rendered = trace::render_trace(&events).join("\n");
    assert!(
        rendered.contains("shard_fenced") || rendered.contains("fenced"),
        "the rendered trace shows the fenced submit:\n{rendered}"
    );
    let _ = std::fs::remove_dir_all(root);
}
