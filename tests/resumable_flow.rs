//! Integration tests for durable, resumable flows: a run interrupted
//! mid-optimisation (deliberate halt — on-disk state identical to a crash)
//! and resumed from the store produces a `FlowResult` identical to the
//! same-seed uninterrupted run, the store lays runs out as documented, and
//! the early-stopping criterion recorded in the manifest survives a resume.

use ayb_core::{AybError, FlowBuilder, FlowConfig, FlowObserver, FlowResult};
use ayb_moo::{CheckpointError, EarlyStop, OptimizerConfig};
use ayb_store::{Manifest, RunStatus, Store};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

fn temp_store(label: &str) -> (PathBuf, Store) {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let root = std::env::temp_dir().join(format!(
        "ayb-resume-test-{label}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let store = Store::open(&root).expect("store opens");
    (root, store)
}

fn reduced_config() -> FlowConfig {
    let mut config = FlowConfig::reduced();
    config.sweep = ayb_sim::FrequencySweep::logarithmic(10.0, 1e9, 4);
    config.monte_carlo.samples = 10;
    config.max_pareto_points = 8;
    config
}

/// Strict equality of every deterministic part of two flow results (the
/// model has no `PartialEq`; its serialized form is compared instead).
fn assert_results_identical(a: &FlowResult, b: &FlowResult) {
    assert_eq!(a.archive, b.archive);
    assert_eq!(a.pareto, b.pareto);
    assert_eq!(a.pareto_data, b.pareto_data);
    assert_eq!(a.optimization.archive, b.optimization.archive);
    assert_eq!(a.optimization.history, b.optimization.history);
    assert_eq!(a.optimization.evaluations, b.optimization.evaluations);
    assert_eq!(
        serde_json::to_string(&a.model).unwrap(),
        serde_json::to_string(&b.model).unwrap()
    );
    assert_eq!(a.determinism_digest(), b.determinism_digest());
}

#[test]
fn flow_with_store_persists_manifest_checkpoints_and_result() {
    let (root, store) = temp_store("persist");
    let config = reduced_config();

    let result = FlowBuilder::new(config.clone())
        .with_store(&store)
        .run()
        .expect("stored flow completes");

    let run = store.run("run-0001").expect("run exists");
    let manifest: Manifest<FlowConfig> = run.manifest().expect("manifest loads");
    assert_eq!(manifest.status, RunStatus::Completed);
    assert_eq!(manifest.seed, config.ga.seed);
    assert_eq!(manifest.optimizer, OptimizerConfig::Wbga(config.ga));
    assert_eq!(manifest.flow, config);

    // One checkpoint per bred generation.
    let generations = run.checkpoint_generations().expect("checkpoints list");
    assert_eq!(
        generations,
        (1..config.ga.generations).collect::<Vec<_>>(),
        "gen_NNNN.json per generation boundary"
    );

    // The persisted result reloads and matches the in-memory one exactly.
    let reloaded: FlowResult = run.load_result().expect("result loads");
    assert_results_identical(&result, &reloaded);

    // A plain (store-less) run with the same config is bit-identical, i.e.
    // persistence never perturbs the computation.
    let plain = FlowBuilder::new(config)
        .run()
        .expect("plain flow completes");
    assert_results_identical(&result, &plain);

    let _ = std::fs::remove_dir_all(root);
}

/// Counts checkpoint-written callbacks.
#[derive(Clone, Default)]
struct CheckpointCounter {
    written: Arc<AtomicUsize>,
}

impl FlowObserver for CheckpointCounter {
    fn on_checkpoint_written(&mut self, _generation: usize, path: &Path) {
        assert!(path.to_string_lossy().contains("checkpoints"));
        self.written.fetch_add(1, Ordering::Relaxed);
    }
}

#[test]
fn interrupted_flow_resumes_to_a_bit_identical_result() {
    let (root, store) = temp_store("resume");
    let config = reduced_config();

    // Reference: the same-seed run that is never interrupted.
    let uninterrupted = FlowBuilder::new(config.clone())
        .with_store(&store)
        .with_run_id("clean")
        .run()
        .expect("clean flow completes");

    // "Kill" a second run after its third checkpoint. A deliberate halt
    // leaves exactly what a crash leaves — manifest + checkpoints, no
    // result — plus an honest `interrupted` status.
    let counter = CheckpointCounter::default();
    let halted = FlowBuilder::new(config.clone())
        .with_store(&store)
        .with_run_id("victim")
        .with_observer(counter.clone())
        .halt_after_checkpoints(3)
        .run();
    match halted {
        Err(AybError::Checkpoint(CheckpointError::Halted { generation })) => {
            assert_eq!(generation, 3)
        }
        other => panic!("expected a halt, got {other:?}"),
    }
    assert_eq!(counter.written.load(Ordering::Relaxed), 3);

    let victim = store.run("victim").expect("victim run exists");
    assert_eq!(victim.status().unwrap(), RunStatus::Interrupted);
    assert_eq!(victim.checkpoint_generations().unwrap(), vec![1, 2, 3]);
    assert!(
        !victim.has_result(),
        "no result was written before the halt"
    );

    // Resume from the store: FlowBuilder::resume restores config, optimiser
    // and seed from the manifest and continues from checkpoint 3.
    let resumed = FlowBuilder::resume(&store, "victim")
        .expect("resume builder")
        .run()
        .expect("resumed flow completes");
    assert_results_identical(&uninterrupted, &resumed);
    assert_eq!(victim.status().unwrap(), RunStatus::Completed);
    let persisted: FlowResult = victim.load_result().expect("resumed result persisted");
    assert_results_identical(&uninterrupted, &persisted);

    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn every_optimizer_variant_interrupts_and_resumes_identically() {
    let (root, store) = temp_store("variants");
    let mut config = reduced_config();
    config.ga.population_size = 12;
    config.ga.generations = 6;

    let variants = [
        OptimizerConfig::Wbga(config.ga),
        OptimizerConfig::Nsga2(config.ga),
        OptimizerConfig::RandomSearch {
            // Two checkpoint chunks of 64 plus a partial tail.
            budget: 150,
            seed: config.ga.seed,
        },
    ];
    for variant in variants {
        let name = variant.name();
        let clean_id = format!("clean-{name}");
        let victim_id = format!("victim-{name}");

        let clean = FlowBuilder::new(config.clone())
            .with_optimizer(variant.clone())
            .with_store(&store)
            .with_run_id(&clean_id)
            .run()
            .unwrap_or_else(|e| panic!("{name}: clean run failed: {e}"));

        let halted = FlowBuilder::new(config.clone())
            .with_optimizer(variant)
            .with_store(&store)
            .with_run_id(&victim_id)
            .halt_after_checkpoints(1)
            .run();
        assert!(
            matches!(
                halted,
                Err(AybError::Checkpoint(CheckpointError::Halted { .. }))
            ),
            "{name}: expected halt"
        );

        let resumed = FlowBuilder::resume(&store, &victim_id)
            .unwrap_or_else(|e| panic!("{name}: resume builder failed: {e}"))
            .run()
            .unwrap_or_else(|e| panic!("{name}: resumed run failed: {e}"));
        assert_results_identical(&clean, &resumed);
    }

    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn early_stop_is_recorded_in_the_manifest_and_honoured_on_resume() {
    let (root, store) = temp_store("earlystop");
    let mut config = reduced_config();
    config.ga.generations = 10;
    config.ga.early_stop = Some(EarlyStop::after_stalled_generations(2));

    let clean = FlowBuilder::new(config.clone())
        .with_store(&store)
        .with_run_id("clean")
        .run()
        .expect("early-stopping flow completes");

    // The criterion is durable: it rides inside the manifest's optimiser
    // configuration.
    let manifest: Manifest<FlowConfig> = store.run("clean").unwrap().manifest().unwrap();
    assert_eq!(
        manifest.optimizer.early_stop(),
        Some(EarlyStop::after_stalled_generations(2))
    );

    // Interrupt a same-seed run at the first checkpoint and resume: the
    // resumed run honours the criterion (identical history length and
    // identical everything else).
    let halted = FlowBuilder::new(config)
        .with_store(&store)
        .with_run_id("victim")
        .halt_after_checkpoints(1)
        .run();
    assert!(matches!(
        halted,
        Err(AybError::Checkpoint(CheckpointError::Halted { .. }))
    ));
    let resumed = FlowBuilder::resume(&store, "victim")
        .expect("resume builder")
        .run()
        .expect("resumed flow completes");
    assert_results_identical(&clean, &resumed);

    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn resume_restarts_from_scratch_when_no_checkpoint_was_written() {
    let (root, store) = temp_store("nockpt");
    let config = reduced_config();

    let clean = FlowBuilder::new(config.clone())
        .with_store(&store)
        .with_run_id("clean")
        .run()
        .expect("clean flow completes");

    // Simulate a run that died before its first checkpoint: create the run
    // directory and manifest, then resume it.
    let seed = config.ga.seed;
    store
        .create_run_with_id(
            "stillborn",
            seed,
            &OptimizerConfig::Wbga(config.ga),
            &config,
        )
        .expect("run created");
    let resumed = FlowBuilder::resume(&store, "stillborn")
        .expect("resume builder")
        .run()
        .expect("restarted flow completes");
    assert_results_identical(&clean, &resumed);

    let _ = std::fs::remove_dir_all(root);
}
