//! Integration tests for sharded multi-process execution: a flow run with
//! `sharded` evaluation produces a `determinism_digest` bit-identical to the
//! single-process run — alone, through a drain job server, and across
//! multiple `ayb serve --shards-only` worker *processes* sharing one store,
//! including after one of those workers is SIGKILLed mid-run and its shard
//! claims are recovered. The same holds for the sharded Monte Carlo
//! variation stage (one task per Pareto point), and a flow interrupted
//! mid-variation resumes from its per-point checkpoints without re-analysing
//! completed points.

use ayb_core::{
    AybError, FlowBuilder, FlowConfig, FlowObserver, FlowResult, FlowStage, VariationBoundary,
    VariationHaltHook,
};
use ayb_jobs::{JobServer, JobServerConfig};
use ayb_moo::CheckpointError;
use ayb_store::{RunStatus, ShardSummary, Store};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn temp_store(label: &str) -> (PathBuf, Store) {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let root = std::env::temp_dir().join(format!(
        "ayb-sharded-test-{label}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let store = Store::open(&root).expect("store opens");
    (root, store)
}

/// The trimmed reduced-scale configuration the other integration tests use
/// (full five-stage flow, seconds of wall clock), without sharding.
fn small_config() -> FlowConfig {
    let mut config = FlowConfig::reduced();
    config.sweep = ayb_sim::FrequencySweep::logarithmic(10.0, 1e9, 4);
    config.monte_carlo.samples = 10;
    config.max_pareto_points = 8;
    config
}

/// The same configuration with sharded evaluation on (3-candidate shards, so
/// every 14-candidate generation spans 5 shards).
fn sharded_config() -> FlowConfig {
    let mut config = small_config();
    config.sharded = true;
    config.shard_size = 3;
    config
}

/// Sequential, store-less, unsharded reference digest for a seed.
fn reference_digest(seed: u64) -> u64 {
    FlowBuilder::new(small_config())
        .with_seed(seed)
        .run()
        .expect("reference flow completes")
        .determinism_digest()
}

fn stored_digest(store: &Store, run_id: &str) -> u64 {
    let result: FlowResult = store
        .run(run_id)
        .expect("run exists")
        .load_result()
        .expect("result loads");
    result.determinism_digest()
}

#[test]
fn single_process_sharded_run_digests_identically_to_unsharded() {
    let (root, store) = temp_store("solo");
    let expected = reference_digest(41);

    // No workers anywhere: the submitting flow itself claims and evaluates
    // every shard it publishes.
    let result = FlowBuilder::new(sharded_config())
        .with_seed(41)
        .with_store(&store)
        .with_run_id("sharded-solo")
        .run()
        .expect("sharded flow completes without any workers");
    assert_eq!(
        result.determinism_digest(),
        expected,
        "sharding must not change the result"
    );

    let handle = store.run("sharded-solo").unwrap();
    assert_eq!(handle.status().unwrap(), RunStatus::Completed);
    assert_eq!(handle.claim().unwrap(), None, "claim released");
    assert_eq!(
        handle.shard_summary().unwrap(),
        ShardSummary::default(),
        "every shard epoch was disposed after assembly"
    );
    assert_eq!(stored_digest(&store, "sharded-solo"), expected);
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn builder_flags_enable_sharding_without_touching_the_config() {
    let (root, store) = temp_store("flags");
    let expected = reference_digest(43);
    // `.sharded(true)` / `.shard_size(3)` on a plain config are equivalent
    // to pre-setting the FlowConfig fields.
    let result = FlowBuilder::new(small_config())
        .with_seed(43)
        .with_store(&store)
        .sharded(true)
        .shard_size(3)
        .run()
        .expect("sharded flow completes");
    assert_eq!(result.determinism_digest(), expected);
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn drain_server_executes_sharded_runs_to_the_reference_digest() {
    let (root, store) = temp_store("server");
    let expected = reference_digest(42);

    let mut config = sharded_config();
    config.ga.seed = 42;
    config.monte_carlo.seed = 42;
    let optimizer = ayb_moo::OptimizerConfig::Wbga(config.ga);
    let run_id = store
        .enqueue_run(42, &optimizer, &config)
        .expect("enqueue succeeds")
        .id()
        .to_string();

    // Two workers: one claims the run (and becomes the shard submitter),
    // the idle one services shards — shard-first — until the queue drains.
    let server = JobServer::new(store.clone(), JobServerConfig::drain_with_workers(2));
    let report = server.run().expect("server drains");
    assert_eq!(report.completed, vec![run_id.clone()], "report: {report:?}");
    assert!(report.failed.is_empty());
    assert_eq!(stored_digest(&store, &run_id), expected);
    assert_eq!(
        store.run(&run_id).unwrap().shard_summary().unwrap(),
        ShardSummary::default()
    );
    let _ = std::fs::remove_dir_all(root);
}

fn spawn_shard_worker(root: &std::path::Path) -> Child {
    Command::new(env!("CARGO_BIN_EXE_ayb"))
        .args([
            "serve",
            "--store",
            root.to_str().expect("utf-8 store path"),
            "--shards-only",
            "--workers",
            "2",
            "--poll-ms",
            "20",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("shard worker process spawns")
}

/// The acceptance scenario: a sharded flow evaluated across two independent
/// `ayb serve --shards-only` worker *processes* over one store, with one
/// worker SIGKILLed mid-run, still digests bit-identically to the
/// single-process unsharded run.
#[test]
fn multi_process_sharded_run_survives_a_sigkilled_worker_bit_identically() {
    let (root, store) = temp_store("multiproc");
    let expected = reference_digest(77);

    let mut config = sharded_config();
    config.ga.seed = 77;
    config.monte_carlo.seed = 77;
    let optimizer = ayb_moo::OptimizerConfig::Wbga(config.ga);
    let run_id = store
        .enqueue_run(77, &optimizer, &config)
        .expect("enqueue succeeds")
        .id()
        .to_string();

    // Two worker processes scanning the same store for shard tasks.
    let doomed = spawn_shard_worker(&root);
    let survivor = spawn_shard_worker(&root);

    // SIGKILL one worker mid-run — whatever shard claim it holds right then
    // must be recovered by the submitter without perturbing the result.
    let killer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(700));
        let mut doomed = doomed;
        let _ = doomed.kill();
        doomed.wait_with_output().expect("doomed worker reaped")
    });

    // This process is the submitter: it executes the queued run, publishing
    // every generation's population as shard tasks for the workers.
    let result = FlowBuilder::resume(&store, &run_id)
        .expect("resume builds")
        .run()
        .expect("sharded flow completes despite the killed worker");
    assert_eq!(
        result.determinism_digest(),
        expected,
        "two worker processes and a SIGKILL change nothing about the result"
    );

    let doomed_output = killer.join().expect("killer thread joins");
    let mut survivor = survivor;
    survivor.kill().expect("survivor stops");
    let survivor_output = survivor.wait_with_output().expect("survivor reaped");

    // The workers genuinely participated: at least one shard was serviced
    // out-of-process (the submitter logs nothing, so any `serviced shard`
    // line is a worker's).
    let worker_logs = format!(
        "{}{}",
        String::from_utf8_lossy(&doomed_output.stderr),
        String::from_utf8_lossy(&survivor_output.stderr)
    );
    assert!(
        worker_logs.contains("serviced shard"),
        "external worker processes serviced at least one shard; logs:\n{worker_logs}"
    );

    let handle = store.run(&run_id).unwrap();
    assert_eq!(handle.status().unwrap(), RunStatus::Completed);
    assert_eq!(handle.claim().unwrap(), None);
    assert_eq!(handle.shard_summary().unwrap(), ShardSummary::default());
    assert_eq!(stored_digest(&store, &run_id), expected);
    let _ = std::fs::remove_dir_all(root);
}

/// Counts `on_progress` ticks of the variation stage — one per point
/// actually analysed by this flow (restored checkpoints never tick).
struct VariationTicks(Arc<AtomicUsize>);

impl FlowObserver for VariationTicks {
    fn on_progress(&mut self, stage: FlowStage, _done: usize, _total: usize) {
        if stage == FlowStage::AnalyzeVariation {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// A flow interrupted mid-variation-stage resumes from its per-point
/// checkpoints: the already-analysed points are provably skipped (checkpoint
/// files untouched, observer ticks only for the remainder) and the final
/// result digests identically to the uninterrupted serial run.
#[test]
fn interrupted_variation_resumes_from_per_point_checkpoints() {
    let (root, store) = temp_store("varresume");
    let expected = reference_digest(99);

    // Halt at the third variation result-write boundary — the deterministic
    // stand-in for a SIGKILL right after the third point's checkpoint landed.
    let writes = Arc::new(AtomicUsize::new(0));
    let hook: VariationHaltHook = {
        let writes = Arc::clone(&writes);
        Arc::new(move |boundary| match boundary {
            VariationBoundary::ResultWrite { .. } => writes.fetch_add(1, Ordering::SeqCst) + 1 >= 3,
            _ => false,
        })
    };
    let halted = FlowBuilder::new(sharded_config())
        .with_seed(99)
        .with_store(&store)
        .with_run_id("var-halt")
        .halt_variation_when(hook)
        .run();
    assert!(
        matches!(
            halted,
            Err(AybError::Checkpoint(CheckpointError::Halted { .. }))
        ),
        "the hook halts the variation stage: {halted:?}"
    );

    let handle = store.run("var-halt").unwrap();
    assert_eq!(handle.status().unwrap(), RunStatus::Interrupted);
    assert_eq!(handle.claim().unwrap(), None, "claim released at the halt");
    let restored = handle.variation_checkpoint_indices().unwrap();
    assert_eq!(restored.len(), 3, "exactly three points were checkpointed");
    let mtimes: Vec<_> = restored
        .iter()
        .map(|&index| {
            let path = root.join(format!(
                "runs/var-halt/checkpoints/variation_{index:04}.json"
            ));
            std::fs::metadata(&path).unwrap().modified().unwrap()
        })
        .collect();

    // Resume: the three restored points must not be re-analysed.
    let ticks = Arc::new(AtomicUsize::new(0));
    let result = FlowBuilder::resume(&store, "var-halt")
        .expect("resume builds")
        .with_observer(VariationTicks(Arc::clone(&ticks)))
        .run()
        .expect("resumed flow completes");
    assert_eq!(
        result.determinism_digest(),
        expected,
        "interrupt + resume mid-variation changes nothing about the result"
    );
    let total = result.timings.mc_points;
    assert_eq!(
        ticks.load(Ordering::SeqCst),
        total - 3,
        "the resumed stage analysed only the unfinished points"
    );
    assert_eq!(
        handle.variation_checkpoint_indices().unwrap().len(),
        total,
        "every selected point ends up checkpointed"
    );
    for (&index, mtime) in restored.iter().zip(&mtimes) {
        let path = root.join(format!(
            "runs/var-halt/checkpoints/variation_{index:04}.json"
        ));
        assert_eq!(
            &std::fs::metadata(&path).unwrap().modified().unwrap(),
            mtime,
            "restored checkpoint {index} was never rewritten"
        );
    }
    assert_eq!(handle.status().unwrap(), RunStatus::Completed);
    assert_eq!(handle.shard_summary().unwrap(), ShardSummary::default());
    let _ = std::fs::remove_dir_all(root);
}

/// The variation acceptance scenario: the Monte Carlo stage of a sharded
/// flow is serviced by real `ayb serve --shards-only` worker *processes*,
/// one of which is SIGKILLed mid-variation-epoch — the run still completes
/// with the serial reference digest, and the workers provably analysed
/// points out-of-process.
#[test]
fn variation_stage_shards_across_processes_and_survives_a_sigkilled_worker() {
    let (root, store) = temp_store("varproc");

    // Variation-heavy configuration: a short optimisation, then eight
    // 240-sample Monte Carlo points shipped as four two-point batches —
    // most of the wall clock is stage 4, and each batch takes many worker
    // poll intervals, so the external workers provably claim some.
    let mut config = sharded_config();
    config.ga.generations = 3;
    config.monte_carlo.samples = 240;
    config.variation_batch = 2;
    let expected = {
        let mut serial = config.clone();
        serial.sharded = false;
        FlowBuilder::new(serial)
            .with_seed(123)
            .run()
            .expect("reference flow completes")
            .determinism_digest()
    };

    config.ga.seed = 123;
    config.monte_carlo.seed = 123;
    let optimizer = ayb_moo::OptimizerConfig::Wbga(config.ga);
    let run_id = store
        .enqueue_run(123, &optimizer, &config)
        .expect("enqueue succeeds")
        .id()
        .to_string();

    let doomed = spawn_shard_worker(&root);
    let survivor = spawn_shard_worker(&root);

    // The submitter executes in a thread; the main thread watches the store
    // and SIGKILLs one worker as soon as the variation stage is provably in
    // flight (per-point checkpoints exist), so the kill lands mid-epoch.
    let submitter = {
        let store = store.clone();
        let run_id = run_id.clone();
        std::thread::spawn(move || {
            FlowBuilder::resume(&store, &run_id)
                .expect("resume builds")
                .run()
                .expect("sharded flow completes despite the killed worker")
        })
    };
    let handle = store.run(&run_id).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(120);
    while handle
        .variation_checkpoint_indices()
        .map(|indices| indices.len() < 2)
        .unwrap_or(true)
        && std::time::Instant::now() < deadline
        && !handle.has_result()
    {
        std::thread::sleep(Duration::from_millis(10));
    }
    let mut doomed = doomed;
    doomed.kill().expect("doomed worker SIGKILLed");
    let doomed_output = doomed.wait_with_output().expect("doomed worker reaped");

    let result = submitter.join().expect("submitter thread joins");
    assert_eq!(
        result.determinism_digest(),
        expected,
        "worker processes and a SIGKILL mid-variation change nothing"
    );

    let mut survivor = survivor;
    survivor.kill().expect("survivor stops");
    let survivor_output = survivor.wait_with_output().expect("survivor reaped");
    let worker_logs = format!(
        "{}{}",
        String::from_utf8_lossy(&doomed_output.stderr),
        String::from_utf8_lossy(&survivor_output.stderr)
    );
    assert!(
        worker_logs.contains("serviced variation point"),
        "external worker processes analysed at least one point; logs:\n{worker_logs}"
    );

    assert_eq!(handle.status().unwrap(), RunStatus::Completed);
    assert_eq!(handle.claim().unwrap(), None);
    assert_eq!(handle.shard_summary().unwrap(), ShardSummary::default());
    assert_eq!(stored_digest(&store, &run_id), expected);
    let _ = std::fs::remove_dir_all(root);
}
