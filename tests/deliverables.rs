//! Integration tests for the secondary deliverables of the flow: the exported
//! `.tbl` / Verilog-A package, the SPICE netlist round trip of the generated
//! circuits, and the deterministic corner analysis on the OTA.

use ayb_behavioral::{generate_module, CombinedOtaModel, ParetoPointData};
use ayb_circuit::ota::{build_open_loop_testbench, OtaParameters, OtaTestbenchConfig};
use ayb_circuit::{spice, DesignPoint};
use ayb_core::measure_testbench;
use ayb_process::{apply_corner, Corner, ProcessVariation};
use ayb_sim::FrequencySweep;
use ayb_table::{TableFile, TableModel};

fn synthetic_model() -> CombinedOtaModel {
    let points: Vec<ParetoPointData> = (0..12)
        .map(|i| ParetoPointData {
            gain_db: 49.0 + i as f64 * 0.25,
            phase_margin_deg: 77.0 - i as f64 * 0.35,
            gain_delta_percent: 0.6 - i as f64 * 0.01,
            pm_delta_percent: 1.4 + i as f64 * 0.02,
            unity_gain_hz: 8e6 + i as f64 * 2e5,
            parameters: DesignPoint::new()
                .with("w1", (20.0 + i as f64) * 1e-6)
                .with("l1", 1.0e-6),
        })
        .collect();
    CombinedOtaModel::from_pareto_data(points, 3.0).expect("model builds")
}

#[test]
fn exported_tbl_files_reload_as_table_models_with_consistent_lookups() {
    let model = synthetic_model();
    let files = model.export_table_files();

    // The gain_delta table reloaded through the $table_model machinery agrees
    // with the model's own lookup at interior points.
    let gain_delta_file = &files["gain_delta.tbl"];
    let text = gain_delta_file.to_text();
    let reparsed = TableFile::from_text(&text, 1).expect("tbl text parses");
    let table = TableModel::from_file_with_control(&reparsed, "3E").expect("table builds");
    for gain in [49.5, 50.0, 51.0] {
        let via_file = table.lookup(&[gain]).expect("in range");
        let via_model = model.gain_variation_percent(gain).expect("in range");
        assert!(
            (via_file - via_model).abs() < 1e-6,
            "gain {gain}: file {via_file} vs model {via_model}"
        );
    }

    // Two-input parameter tables reload as well.
    let w1_file = &files["w1_data.tbl"];
    let reparsed = TableFile::from_text(&w1_file.to_text(), 2).expect("parses");
    let table = TableModel::from_file_with_control(&reparsed, "3E,3E").expect("builds");
    let value = table.lookup(&[50.0, 75.6]).expect("in range");
    assert!(value > 10e-6 && value < 40e-6, "w1 = {value}");
}

#[test]
fn verilog_a_package_is_self_consistent() {
    let model = synthetic_model();
    let package = generate_module(&model, "ota_yield_model");
    // Every table file referenced in the source ships with the package and
    // parses back with the declared number of inputs.
    for (name, file) in &package.table_files {
        assert!(package.module_source.contains(name.as_str()));
        let inputs = file.inputs;
        let reparsed = TableFile::from_text(&file.to_text(), inputs).expect("tbl parses");
        assert_eq!(reparsed.len(), file.len());
    }
    assert!(package.module_source.contains("analog begin"));
}

#[test]
fn generated_ota_testbench_survives_spice_roundtrip_and_resimulates() {
    let params = OtaParameters::nominal();
    let tb = build_open_loop_testbench(&params, &OtaTestbenchConfig::new()).expect("builds");
    let sweep = FrequencySweep::logarithmic(10.0, 1e9, 4);
    let original = measure_testbench(&tb, &sweep).expect("original simulates");

    let text = spice::to_spice(&tb);
    let reparsed = spice::from_spice(&text).expect("netlist parses");
    let roundtrip = measure_testbench(&reparsed, &sweep).expect("reparsed simulates");

    assert!(
        (original.gain_db - roundtrip.gain_db).abs() < 0.05,
        "gain changed across netlist round trip: {} vs {}",
        original.gain_db,
        roundtrip.gain_db
    );
    assert!((original.phase_margin_deg - roundtrip.phase_margin_deg).abs() < 0.5);
}

#[test]
fn process_corners_move_the_ota_bias_in_opposite_directions() {
    let params = OtaParameters::nominal();
    let tb = build_open_loop_testbench(&params, &OtaTestbenchConfig::new()).expect("builds");
    let variation = ProcessVariation::generic_035um();
    let sweep = FrequencySweep::logarithmic(10.0, 1e9, 4);

    let measure_at = |corner: Corner| {
        let varied = apply_corner(&tb, &variation, corner, 3.0);
        measure_testbench(&varied, &sweep).expect("corner simulates")
    };
    let tt = measure_at(Corner::Tt);
    let ff = measure_at(Corner::Ff);
    let ss = measure_at(Corner::Ss);

    // Fast devices carry more current: the unity-gain frequency rises at FF
    // and falls at SS relative to typical.
    assert!(
        ff.unity_gain_hz > tt.unity_gain_hz,
        "FF {} vs TT {}",
        ff.unity_gain_hz,
        tt.unity_gain_hz
    );
    assert!(
        ss.unity_gain_hz < tt.unity_gain_hz,
        "SS {} vs TT {}",
        ss.unity_gain_hz,
        tt.unity_gain_hz
    );
    // All corners keep the amplifier functional (gain well above 20 dB).
    for perf in [&tt, &ff, &ss] {
        assert!(perf.gain_db > 20.0);
    }
}
