//! Scale tests for the `ayb-svc` service plane: hundreds of concurrent HTTP
//! clients push thousands of submissions through a live `SvcServer` (real
//! sockets, embedded worker pool) while the test asserts the service's
//! contract under load —
//!
//! * admission stays correct: every response is 200/201/429, never a 5xx,
//!   and the flooding tenant's quota produces structured 429s;
//! * content-addressed dedup collapses duplicate submissions to one run;
//! * the weighted round-robin dispatcher honours its starvation bound for a
//!   victim tenant competing with a flooder;
//! * every run the service *executed* is digest-identical to the same seed
//!   run serially through `FlowBuilder` — the service plane is allowed to
//!   reorder work, never to change results.

use ayb_core::{FlowBuilder, FlowConfig};
use ayb_store::{RunStatus, Store};
use ayb_svc::{SvcClient, SvcConfig, SvcServer, TenantQuota};
use serde::Value;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

fn temp_store(label: &str) -> (PathBuf, Store) {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let root = std::env::temp_dir().join(format!(
        "ayb-scale-{label}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let store = Store::open(&root).expect("store opens");
    (root, store)
}

/// The cheapest full five-stage flow: every stage runs, wall clock is tens
/// of milliseconds, and the determinism digest is still seed-sensitive.
fn tiny_config() -> FlowConfig {
    let mut config = FlowConfig::reduced();
    config.ga.population_size = 6;
    config.ga.generations = 2;
    config.ga.tournament_size = 2;
    config.ga.elitism = 1;
    config.sweep = ayb_sim::FrequencySweep::logarithmic(10.0, 1e9, 3);
    config.monte_carlo.samples = 3;
    config.max_pareto_points = 3;
    config.threads = 1;
    config
}

/// Serial (store-less) reference digest for a seed under [`tiny_config`].
fn reference_digest(seed: u64) -> u64 {
    FlowBuilder::new(tiny_config())
        .with_seed(seed)
        .run()
        .expect("reference flow completes")
        .determinism_digest()
}

/// Submission body pinning the full tiny flow config (so the service and
/// the serial reference agree on every knob, not just the preset).
fn tiny_body(seed: u64) -> String {
    let flow = serde_json::to_string(&tiny_config()).expect("flow renders");
    format!("{{\"seed\": {seed}, \"flow\": {flow}}}")
}

fn str_field(value: &Value, key: &str) -> String {
    match value.get(key) {
        Some(Value::Str(s)) => s.clone(),
        other => panic!("expected string `{key}`, found {other:?}"),
    }
}

/// Asserts that every `Completed` run in the store digests identically to
/// the serial reference for its manifest seed; returns how many it checked.
fn assert_completed_runs_match_serial_references(store: &Store) -> usize {
    let mut references: HashMap<u64, u64> = HashMap::new();
    let mut checked = 0;
    for id in store.run_ids().expect("run ids") {
        let handle = store.run(&id).expect("run opens");
        if handle.status().expect("status reads") != RunStatus::Completed {
            continue;
        }
        let manifest = handle.manifest::<FlowConfig>().expect("manifest parses");
        let expected = *references
            .entry(manifest.seed)
            .or_insert_with(|| reference_digest(manifest.seed));
        let result: ayb_core::FlowResult = handle.load_result().expect("result loads");
        assert_eq!(
            result.determinism_digest(),
            expected,
            "run {id} (seed {}) diverged from the serial reference",
            manifest.seed
        );
        checked += 1;
    }
    checked
}

/// What one load-client thread saw, merged for the global assertions.
#[derive(Default)]
struct ClientOutcome {
    statuses: Vec<u16>,
    dedup_hits: usize,
    run_ids: Vec<String>,
    errors: Vec<String>,
}

/// Phase A — the flood: over 100 concurrent clients across seven tenants
/// submit over 1000 runs (mostly distinct, some duplicated, one tenant way
/// over quota) against a live server executing in the background.
#[test]
fn a_thousand_submissions_from_a_hundred_clients_stay_correct() {
    let (root, store) = temp_store("flood");
    let mut server = SvcServer::start(
        store.clone(),
        SvcConfig {
            workers: 1,
            quotas: vec![(
                "flood".to_string(),
                TenantQuota {
                    max_queued: 5,
                    max_running: 1,
                },
            )],
            ..SvcConfig::default()
        },
    )
    .expect("service starts");
    let url = server.url();

    // 120 well-behaved clients (unique seeds plus one shared duplicate
    // seed each) + 10 flooding clients hammering one quota-capped tenant.
    const GOOD_CLIENTS: usize = 120;
    const FLOOD_CLIENTS: usize = 10;
    const REQUESTS_PER_CLIENT: usize = 10;
    const DUPLICATE_SEED: u64 = 500_000;

    let outcomes = Mutex::new(Vec::<ClientOutcome>::new());
    std::thread::scope(|scope| {
        for client_index in 0..(GOOD_CLIENTS + FLOOD_CLIENTS) {
            let url = &url;
            let outcomes = &outcomes;
            scope.spawn(move || {
                let flooding = client_index >= GOOD_CLIENTS;
                let tenant = if flooding {
                    "flood".to_string()
                } else {
                    format!("tenant-{}", client_index % 6)
                };
                let client = SvcClient::new(url)
                    .expect("client url")
                    .with_tenant(&tenant);
                let mut outcome = ClientOutcome::default();
                for request in 0..REQUESTS_PER_CLIENT {
                    // Last request of every good client is the shared
                    // duplicate; everything else is a globally unique seed.
                    let seed = if !flooding && request == REQUESTS_PER_CLIENT - 1 {
                        DUPLICATE_SEED
                    } else {
                        1 + (client_index * REQUESTS_PER_CLIENT + request) as u64
                    };
                    match client.submit_raw(&tiny_body(seed)) {
                        Ok((status, value)) => {
                            outcome.statuses.push(status);
                            if value.get("deduped") == Some(&Value::Bool(true)) {
                                outcome.dedup_hits += 1;
                            }
                            if status == 201 {
                                outcome.run_ids.push(str_field(&value, "run_id"));
                            }
                        }
                        Err(e) => outcome.errors.push(e),
                    }
                }
                // The read side rides the same load: poll a run's status
                // and the metrics endpoint mid-flood.
                if let Some(run_id) = outcome.run_ids.first().cloned() {
                    match client.run_status(&run_id) {
                        Ok((status, _)) => assert_eq!(status, 200, "status of own run"),
                        Err(e) => outcome.errors.push(e),
                    }
                }
                if client_index % 25 == 0 {
                    match client.metrics_text() {
                        Ok(text) => assert!(text.contains("ayb_svc_requests_total")),
                        Err(e) => outcome.errors.push(e),
                    }
                }
                outcomes.lock().expect("outcomes lock").push(outcome);
            });
        }
    });

    let outcomes = outcomes.into_inner().expect("outcomes lock");
    let all_statuses: Vec<u16> = outcomes.iter().flat_map(|o| o.statuses.clone()).collect();
    let errors: Vec<&String> = outcomes.iter().flat_map(|o| &o.errors).collect();
    assert!(errors.is_empty(), "transport errors under load: {errors:?}");
    assert_eq!(
        all_statuses.len(),
        (GOOD_CLIENTS + FLOOD_CLIENTS) * REQUESTS_PER_CLIENT,
        "every submission got an answer"
    );
    assert!(
        all_statuses.iter().all(|s| [200, 201, 429].contains(s)),
        "only 200/201/429 are acceptable under load: {:?}",
        all_statuses
            .iter()
            .filter(|s| ![200, 201, 429].contains(*s))
            .collect::<Vec<_>>()
    );

    // Dedup: the shared seed was submitted 110 times but created one run.
    let dedup_hits: usize = outcomes.iter().map(|o| o.dedup_hits).sum();
    assert!(
        dedup_hits >= GOOD_CLIENTS - 1,
        "expected ≥{} dedup hits, saw {dedup_hits}",
        GOOD_CLIENTS - 1
    );

    // Quota: the flooding tenant pushed 100 submissions through a
    // 5-queued quota while the single worker drains slowly — the vast
    // majority must have been rejected with 429.
    let rejections = all_statuses.iter().filter(|s| **s == 429).count();
    assert!(
        rejections > 0,
        "the flooding tenant must have seen quota rejections"
    );

    // Scale floor: >1000 runs actually landed in the store's queue.
    let created: usize = outcomes.iter().map(|o| o.run_ids.len()).sum();
    assert!(
        created >= 1000,
        "expected ≥1000 created runs, got {created}"
    );
    let run_count = store.run_ids().expect("run ids").len();
    assert!(
        run_count >= 1000,
        "expected ≥1000 admitted runs, store has {run_count}"
    );

    // Fairness, weakly (the deterministic bound is the next test): the
    // worker that ran during the flood served more than one tenant.
    let dispatched = server.dispatch_log();
    if dispatched.len() >= 8 {
        let tenants: std::collections::HashSet<&String> =
            dispatched.iter().map(|(tenant, _)| tenant).collect();
        assert!(
            tenants.len() > 1,
            "WRR must interleave tenants, got only {tenants:?}"
        );
    }

    // Let the worker finish a few runs before stopping, so the digest
    // check below has completed work to verify.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let completed = store
            .run_ids()
            .expect("run ids")
            .into_iter()
            .filter(|id| {
                store.run(id).expect("run").status().expect("status") == RunStatus::Completed
            })
            .count();
        if completed >= 3 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "worker completed no runs during the flood"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    server.shutdown();
    // Whatever the worker finished mid-flood must match serial execution.
    let checked = assert_completed_runs_match_serial_references(&store);
    assert!(checked >= 3, "the worker should have completed some runs");
    let _ = std::fs::remove_dir_all(root);
}

/// Phase B — deterministic fairness: a flooding tenant enqueues 30
/// submissions (10 distinct runs × 3 duplicates) before a victim tenant's 4
/// runs; a single-worker server must dispatch the victim's k-th run within
/// the weighted round-robin bound (position 2k for equal weights) instead
/// of draining the flood first, and every run's outcome must match serial
/// execution: completed runs digest-identical, failed runs (seeds whose
/// tiny flow legitimately yields too few Pareto points) failing serially
/// too — the service may reorder work, never change what a seed computes.
#[test]
fn wrr_dispatch_bounds_the_victims_wait_and_preserves_digests() {
    let (root, store) = temp_store("fairness");

    // Stage 1: admission only (no workers) — build the full backlog first
    // so dispatch order is a pure function of the queue, not of timing.
    {
        let mut admission = SvcServer::start(
            store.clone(),
            SvcConfig {
                workers: 0,
                ..SvcConfig::default()
            },
        )
        .expect("admission service starts");
        let flood = SvcClient::new(&admission.url())
            .expect("client url")
            .with_tenant("flood");
        let victim = SvcClient::new(&admission.url())
            .expect("client url")
            .with_tenant("victim");
        for round in 0..3 {
            for seed in 9000..9010u64 {
                let (status, value) = flood.submit_raw(&tiny_body(seed)).expect("flood submits");
                if round == 0 {
                    assert_eq!(status, 201, "{value:?}");
                } else {
                    assert_eq!(status, 200, "duplicate must dedup: {value:?}");
                }
            }
        }
        for seed in 9100..9104u64 {
            let (status, _) = victim.submit_raw(&tiny_body(seed)).expect("victim submits");
            assert_eq!(status, 201);
        }
        admission.shutdown();
    }
    assert_eq!(store.queued_run_ids().expect("queued").len(), 14);

    // Stage 2: a fresh single-worker server adopts the backlog. Its first
    // store scan sees all 14 runs at once, so the weighted round-robin is
    // deterministic: equal weights alternate flood/victim strictly while
    // both lanes are non-empty.
    let mut server = SvcServer::start(
        store.clone(),
        SvcConfig {
            workers: 1,
            ..SvcConfig::default()
        },
    )
    .expect("dispatch service starts");
    let client = SvcClient::new(&server.url()).expect("client url");

    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let queued = store.queued_run_ids().expect("queued");
        let running =
            store.run_ids().expect("ids").into_iter().any(|id| {
                store.run(&id).expect("run").status().expect("status") == RunStatus::Running
            });
        if queued.is_empty() && !running {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "backlog did not drain: {queued:?} still queued"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    // Starvation bound: with equal weights the victim's k-th dispatch must
    // appear within the first 2k slots (±1 for the scan/pop race on the
    // very first dispatch).
    let log = server.dispatch_log();
    assert_eq!(log.len(), 14, "all queued runs dispatched: {log:?}");
    let victim_positions: Vec<usize> = log
        .iter()
        .enumerate()
        .filter(|(_, (tenant, _))| tenant == "victim")
        .map(|(position, _)| position)
        .collect();
    assert_eq!(victim_positions.len(), 4, "log: {log:?}");
    for (k, position) in victim_positions.iter().enumerate() {
        assert!(
            *position <= 2 * (k + 1),
            "victim run {} dispatched at position {position}, beyond the \
             WRR bound {} — log: {log:?}",
            k + 1,
            2 * (k + 1)
        );
    }

    // The dedup ledger survived into execution: 10 flood runs carry 2 hits
    // each, and the canonical run's manifest says so.
    let mut total_hits = 0i64;
    for id in store.run_ids().expect("ids") {
        if let Ok(Some(Value::Int(hits))) =
            store.run(&id).expect("run").manifest_extra("dedup_hits")
        {
            total_hits += hits;
        }
    }
    assert_eq!(total_hits, 20, "10 duplicated runs × 2 extra submissions");

    // Result endpoint serves a completed run's artefact over HTTP.
    let completed_id = store
        .run_ids()
        .expect("ids")
        .into_iter()
        .find(|id| store.run(id).expect("run").status().expect("status") == RunStatus::Completed)
        .expect("at least one completed run");
    let (status, result) = client.run_result(&completed_id).expect("result fetch");
    assert_eq!(status, 200);
    assert!(result.get("pareto_points").is_some() || matches!(result, Value::Object(_)));

    server.shutdown();
    // Outcome parity with serial execution. A seed whose optimizer archive
    // is too thin for the variation model fails deterministically — the
    // service must reproduce that failure, not mask or invent it.
    let checked = assert_completed_runs_match_serial_references(&store);
    let mut failed_seeds = Vec::new();
    for id in store.run_ids().expect("ids") {
        let handle = store.run(&id).expect("run opens");
        if handle.status().expect("status") == RunStatus::Failed {
            failed_seeds.push(handle.manifest::<FlowConfig>().expect("manifest").seed);
        }
    }
    for &seed in &failed_seeds {
        assert!(
            FlowBuilder::new(tiny_config())
                .with_seed(seed)
                .run()
                .is_err(),
            "run for seed {seed} failed under the service but completes \
             serially — the service changed the outcome"
        );
    }
    assert_eq!(
        checked + failed_seeds.len(),
        14,
        "every dispatched run must reach a terminal state matching serial \
         execution ({checked} completed, {failed_seeds:?} failed)"
    );
    assert!(
        checked >= 10,
        "most seeds must complete; only {checked} did (failed: {failed_seeds:?})"
    );
    let _ = std::fs::remove_dir_all(root);
}

/// Phase C — the full submission lifecycle at the HTTP layer: a cancelled
/// digest re-executes fresh, while a completed digest graduates into the
/// persistent result cache and keeps answering — same run id, no new run
/// directory — across a server restart and even after the run directory
/// itself is garbage-collected. This is the regression test for the bug
/// where identical resubmissions re-executed once the in-memory dedup
/// entry dropped.
#[test]
fn http_lifecycle_cancel_reexecutes_and_completion_caches_across_restart_and_gc() {
    let (root, store) = temp_store("lifecycle");
    // The tiny flow legitimately fails for some seeds (archive too thin for
    // the variation model); pick one that completes serially so "completed"
    // below is the only acceptable terminal state.
    let seed = (41_000..41_050u64)
        .find(|&s| FlowBuilder::new(tiny_config()).with_seed(s).run().is_ok())
        .expect("a seed that completes the tiny flow serially");
    let body = tiny_body(seed);

    // Life 1 (admission only): cancellation releases the content address.
    let cancelled_id;
    {
        let mut server = SvcServer::start(
            store.clone(),
            SvcConfig {
                workers: 0,
                ..SvcConfig::default()
            },
        )
        .expect("service starts");
        let client = SvcClient::new(&server.url()).expect("client url");
        let (status, first) = client.submit_raw(&body).expect("submit");
        assert_eq!(status, 201, "{first:?}");
        cancelled_id = str_field(&first, "run_id");

        // While the run is live, an identical body dedups — not a cache hit.
        let (status, dup) = client.submit_raw(&body).expect("duplicate");
        assert_eq!(status, 200);
        assert_eq!(dup.get("deduped"), Some(&Value::Bool(true)));
        assert_eq!(
            dup.get("served_from_cache"),
            None,
            "a queued run is dedup, not cache: {dup:?}"
        );

        // After cancellation the same bytes must execute fresh.
        let (status, _) = client.cancel(&cancelled_id).expect("cancel");
        assert_eq!(status, 200);
        let (status, fresh) = client.submit_raw(&body).expect("resubmit after cancel");
        assert_eq!(status, 201, "cancelled digest must re-execute: {fresh:?}");
        assert_ne!(str_field(&fresh, "run_id"), cancelled_id);
        server.shutdown();
    }

    // Life 2 (one worker): the resubmitted run completes, graduating the
    // digest from the live dedup index into the persistent result cache.
    let run_id;
    let reference;
    {
        let mut server = SvcServer::start(
            store.clone(),
            SvcConfig {
                workers: 1,
                ..SvcConfig::default()
            },
        )
        .expect("service restarts with a worker");
        let client = SvcClient::new(&server.url()).expect("client url");
        run_id = store
            .run_ids()
            .expect("ids")
            .into_iter()
            .find(|id| *id != cancelled_id)
            .expect("the resubmitted run exists");
        let deadline = Instant::now() + Duration::from_secs(120);
        loop {
            let (code, value) = client.run_status(&run_id).expect("status");
            assert_eq!(code, 200);
            if value.get("status") == Some(&Value::Str("completed".to_string())) {
                break;
            }
            assert!(Instant::now() < deadline, "run did not complete: {value:?}");
            std::thread::sleep(Duration::from_millis(50));
        }
        let (code, result) = client.run_result(&run_id).expect("result");
        assert_eq!(code, 200);
        reference = serde_json::to_string(&result).expect("result renders");

        // Same life, same bytes: answered from the cache, no new run.
        let runs_before = store.run_ids().expect("ids").len();
        let (code, hit) = client.submit_raw(&body).expect("resubmit after completion");
        assert_eq!(code, 200, "{hit:?}");
        assert_eq!(hit.get("served_from_cache"), Some(&Value::Bool(true)));
        assert_eq!(hit.get("deduped"), Some(&Value::Bool(true)));
        assert_eq!(str_field(&hit, "run_id"), run_id);
        assert_eq!(store.run_ids().expect("ids").len(), runs_before);
        server.shutdown();
    }

    // GC the run directory entirely; the cache index and blob survive.
    std::fs::remove_dir_all(root.join("runs").join(&run_id)).expect("gc removes the run dir");

    // Life 3: a fresh process (empty in-memory index, no workers). The
    // identical body is still a cache hit, and the status/result endpoints
    // keep answering for the collected run.
    {
        let mut server = SvcServer::start(
            store.clone(),
            SvcConfig {
                workers: 0,
                ..SvcConfig::default()
            },
        )
        .expect("service restarts after gc");
        let client = SvcClient::new(&server.url()).expect("client url");
        let runs_before = store.run_ids().expect("ids").len();
        let (code, hit) = client.submit_raw(&body).expect("resubmit after gc");
        assert_eq!(code, 200, "{hit:?}");
        assert_eq!(hit.get("served_from_cache"), Some(&Value::Bool(true)));
        assert_eq!(str_field(&hit, "run_id"), run_id);
        assert_eq!(
            store.run_ids().expect("ids").len(),
            runs_before,
            "a cache hit must not create a run directory"
        );

        let (code, status) = client.run_status(&run_id).expect("status after gc");
        assert_eq!(code, 200, "{status:?}");
        assert_eq!(status.get("served_from_cache"), Some(&Value::Bool(true)));
        let (code, result) = client.run_result(&run_id).expect("result after gc");
        assert_eq!(code, 200);
        assert_eq!(
            serde_json::to_string(&result).expect("result renders"),
            reference,
            "the cached blob must be byte-identical to the original result"
        );
        server.shutdown();
    }
    let _ = std::fs::remove_dir_all(root);
}
