//! CLI regression tests: exit codes and error surfaces of the `ayb` binary.
//!
//! The service plane maps failures onto distinct HTTP statuses; the shell
//! contract is the same idea — `ayb status <unknown run>` must *fail* (exit
//! non-zero with a diagnostic), not print an empty table, because scripts
//! branch on the exit code.

use std::path::PathBuf;
use std::process::Command;
use std::sync::atomic::{AtomicU64, Ordering};

fn temp_store(label: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let root = std::env::temp_dir().join(format!(
        "ayb-cli-{label}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::SeqCst)
    ));
    std::fs::create_dir_all(&root).expect("create temp store");
    root
}

fn ayb(store: &std::path::Path, args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_ayb"))
        .arg(args[0])
        .args(["--store", store.to_str().expect("utf-8 store path")])
        .args(&args[1..])
        .output()
        .expect("ayb binary runs")
}

#[test]
fn status_of_an_unknown_run_exits_non_zero_with_a_diagnostic() {
    let root = temp_store("status-unknown");
    let output = ayb(&root, &["status", "run-9999"]);
    assert!(
        !output.status.success(),
        "`ayb status run-9999` must exit non-zero for an unknown run"
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("run-9999"),
        "diagnostic must name the missing run, got: {stderr}"
    );
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn status_with_no_runs_succeeds_and_says_so() {
    let root = temp_store("status-empty");
    let output = ayb(&root, &["status"]);
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("no runs"), "got: {stdout}");
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn status_of_a_service_submitted_run_shows_the_svc_annotations() {
    let root = temp_store("status-extras");
    let store = ayb_store::Store::open(&root).expect("open store");
    let config = ayb_core::FlowConfig::reduced();
    let optimizer = ayb_moo::OptimizerConfig::Wbga(config.ga);
    let extras = vec![
        ("tenant".to_string(), serde::Value::Str("acme".to_string())),
        (
            "submission_digest".to_string(),
            serde::Value::Str("00deadbeef00f00d".to_string()),
        ),
        ("dedup_hits".to_string(), serde::Value::Int(3)),
    ];
    let run_id = store
        .enqueue_run_with_extras(7, &optimizer, &config, &extras)
        .expect("enqueue run")
        .id()
        .to_string();

    let output = ayb(&root, &["status", &run_id]);
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("tenant: acme"), "got: {stdout}");
    assert!(
        stdout.contains("submission_digest: 00deadbeef00f00d"),
        "got: {stdout}"
    );
    assert!(stdout.contains("dedup_hits: 3"), "got: {stdout}");
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn serve_http_rejects_malformed_quota_and_weight_specs() {
    let root = temp_store("serve-http-flags");
    for bad in [
        ["serve-http", "--default-quota", "nope"],
        ["serve-http", "--tenant-quota", "acme"],
        ["serve-http", "--tenant-weight", "=3"],
    ] {
        let output = ayb(&root, &bad);
        assert!(
            !output.status.success(),
            "`ayb {}` must exit non-zero",
            bad.join(" ")
        );
    }
    let _ = std::fs::remove_dir_all(root);
}
