//! Property-based tests over the core data structures and invariants,
//! spanning several workspace crates.

use ayb_circuit::{DesignPoint, Parameter, ParameterSet};
use ayb_moo::{dominates, normalize_weights, pareto_front, Evaluation, Sense};
use ayb_sim::linalg::{solve_in_place, DenseMatrix};
use ayb_table::{CubicSpline, Table1d};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Parameter normalisation and denormalisation are inverse operations for
    /// any bounds and any normalised coordinate.
    #[test]
    fn parameter_normalize_roundtrip(
        lower in -1.0e-3f64..1.0e-3,
        span in 1.0e-6f64..1.0e3,
        x in 0.0f64..1.0,
    ) {
        let p = Parameter::new("p", lower, lower + span, "u");
        let value = p.denormalize(x);
        let back = p.normalize(value).unwrap();
        prop_assert!((back - x).abs() < 1e-6);
        prop_assert!(value >= lower - 1e-12 && value <= lower + span + 1e-12);
    }

    /// Design points built from a parameter set always stay inside the bounds.
    #[test]
    fn parameter_set_denormalize_respects_bounds(values in proptest::collection::vec(0.0f64..1.0, 8)) {
        let set: ParameterSet = (0..8)
            .map(|i| Parameter::new(format!("p{i}"), 1.0 + i as f64, 2.0 + i as f64, "u"))
            .collect();
        let point: DesignPoint = set.denormalize(&values).unwrap();
        for (i, (_, v)) in point.iter().enumerate() {
            prop_assert!(v >= 1.0 + i as f64 - 1e-12);
            prop_assert!(v <= 2.0 + i as f64 + 1e-12);
        }
    }

    /// Normalised WBGA weights always sum to one and stay non-negative (eq. 4).
    #[test]
    fn weights_normalize_to_unit_sum(genes in proptest::collection::vec(0.0f64..1.0, 1..6)) {
        let w = normalize_weights(&genes);
        prop_assert_eq!(w.len(), genes.len());
        prop_assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(w.iter().all(|&x| x >= 0.0));
    }

    /// The Pareto front never contains a point dominated by another archive point
    /// and every archive point is dominated by (or equal to) some front member.
    #[test]
    fn pareto_front_conditions_hold(points in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 3..60)) {
        let senses = [Sense::Maximize, Sense::Maximize];
        let evals: Vec<Evaluation> = points
            .iter()
            .map(|&(a, b)| Evaluation::new(vec![a, b], vec![a, b]))
            .collect();
        let front = pareto_front(&evals, &senses);
        prop_assert!(!front.is_empty());
        // Condition (a) of §3.3: mutual non-domination.
        for a in &front {
            for b in &front {
                prop_assert!(!dominates(&a.objectives, &b.objectives, &senses)
                    || a.objectives == b.objectives);
            }
        }
        // Condition (b): every non-member is dominated by some member.
        for e in &evals {
            let on_front = front.iter().any(|f| f.objectives == e.objectives);
            if !on_front {
                prop_assert!(front.iter().any(|f| dominates(&f.objectives, &e.objectives, &senses)));
            }
        }
    }

    /// Cubic splines interpolate their knots exactly and stay finite between them.
    #[test]
    fn spline_interpolates_knots(ys in proptest::collection::vec(-100.0f64..100.0, 4..20)) {
        let xs: Vec<f64> = (0..ys.len()).map(|i| i as f64).collect();
        let spline = CubicSpline::fit(&xs, &ys).unwrap();
        for (x, y) in xs.iter().zip(ys.iter()) {
            prop_assert!((spline.value(*x) - y).abs() < 1e-8);
        }
        for i in 0..(xs.len() - 1) * 4 {
            let q = i as f64 * 0.25;
            prop_assert!(spline.value(q).is_finite());
        }
    }

    /// Cubic table lookups never extrapolate when built with the paper's "3E"
    /// control: out-of-range queries are always errors, in-range queries never are.
    #[test]
    fn table_respects_no_extrapolation(
        ys in proptest::collection::vec(0.0f64..10.0, 4..16),
        q in -2.0f64..20.0,
    ) {
        let xs: Vec<f64> = (0..ys.len()).map(|i| i as f64).collect();
        let table = Table1d::cubic(&xs, &ys).unwrap();
        let (lo, hi) = table.domain();
        let result = table.lookup(q);
        if q < lo || q > hi {
            prop_assert!(result.is_err());
        } else {
            prop_assert!(result.is_ok());
        }
    }

    /// LU solve produces residuals near machine precision for well-conditioned
    /// (diagonally dominant) systems of any size up to 20.
    #[test]
    fn lu_solve_small_residual(
        n in 2usize..20,
        seed in 0u64..10_000,
    ) {
        let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        let mut next = || {
            state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut a: DenseMatrix<f64> = DenseMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = next();
            }
            a[(i, i)] += n as f64;
        }
        let x_true: Vec<f64> = (0..n).map(|i| next() * (i as f64 + 1.0)).collect();
        let b = a.mul_vec(&x_true);
        let mut lu = a.clone();
        let mut x = b.clone();
        solve_in_place(&mut lu, &mut x).unwrap();
        for (got, want) in x.iter().zip(x_true.iter()) {
            prop_assert!((got - want).abs() < 1e-7, "{} vs {}", got, want);
        }
    }

    /// Optimiser checkpoints survive the JSON round-trip bit-for-bit for any
    /// population shape, RNG state and counters — the property the resumable
    /// flow's determinism rests on (floats use shortest-round-trip text).
    #[test]
    fn checkpoint_roundtrips_bit_for_bit(
        rng_words in proptest::collection::vec(0u64..u64::MAX, 4),
        parameters in proptest::collection::vec(0.0f64..1.0, 1..9),
        weights in proptest::collection::vec(0.0f64..1.0, 2),
        objectives in proptest::collection::vec(-1.0e9f64..1.0e9, 2),
        next_generation in 0usize..1_000,
        evaluations in 0usize..100_000,
        stall in 0usize..50,
    ) {
        use ayb_moo::{Checkpoint, CheckpointIndividual, GenerationStats};

        let checkpoint = Checkpoint {
            optimizer: "wbga".to_string(),
            next_generation,
            rng_state: [rng_words[0], rng_words[1], rng_words[2], rng_words[3]],
            population: vec![
                CheckpointIndividual {
                    parameters: parameters.clone(),
                    weight_genes: weights.clone(),
                    objectives: Some(objectives.clone()),
                },
                CheckpointIndividual {
                    parameters: parameters.clone(),
                    weight_genes: weights,
                    objectives: None,
                },
            ],
            archive: vec![Evaluation::new(parameters, objectives.clone())],
            history: vec![GenerationStats {
                generation: next_generation,
                best_fitness: objectives[0],
                mean_fitness: objectives[1],
                feasible: evaluations.min(17),
            }],
            evaluations,
            failed_evaluations: evaluations / 7,
            stall_generations: stall,
            senses: vec![Sense::Maximize, Sense::Minimize],
        };
        let json = serde_json::to_string(&checkpoint).unwrap();
        let back: Checkpoint = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, checkpoint);
        // Pretty-printing parses back to the same state too (the store
        // writes pretty JSON).
        let pretty = serde_json::to_string_pretty(&checkpoint).unwrap();
        let back: Checkpoint = serde_json::from_str(&pretty).unwrap();
        prop_assert_eq!(back, checkpoint);
    }

    /// Run manifests (including the embedded optimiser configuration, seeds,
    /// solver backend, variation batch size and early-stopping criterion)
    /// round-trip through JSON unchanged.
    #[test]
    fn manifest_roundtrips_through_json(
        seed in 0u64..u64::MAX,
        timestamps in (0u64..4_000_000_000, 0u64..4_000_000_000),
        patience in 1usize..20,
        status_index in 0usize..4,
        batch in 1usize..9,
    ) {
        use ayb_core::FlowConfig;
        use ayb_moo::{EarlyStop, GaConfig, OptimizerConfig};
        use ayb_sim::SolverKind;
        use ayb_store::{Manifest, RunStatus};

        let status = [
            RunStatus::Running,
            RunStatus::Interrupted,
            RunStatus::Completed,
            RunStatus::Failed,
        ][status_index];
        let ga = GaConfig::small_test()
            .with_seed(seed)
            .with_early_stop(EarlyStop::after_stalled_generations(patience));
        let mut flow = FlowConfig::reduced().with_seed(seed);
        flow.solver = if seed % 2 == 0 { SolverKind::Dense } else { SolverKind::Sparse };
        flow.variation_batch = batch;
        let manifest = Manifest {
            run_id: format!("run-{seed:04}"),
            status,
            seed,
            created_unix: timestamps.0,
            updated_unix: timestamps.1,
            optimizer: OptimizerConfig::Nsga2(ga),
            flow,
        };
        let json = serde_json::to_string_pretty(&manifest).unwrap();
        let back: Manifest<FlowConfig> = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, manifest);
    }
}

proptest! {
    // Each case runs three whole optimisations against a filesystem-backed
    // shard plane; a smaller case count keeps the suite fast.
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Sharded and unsharded evaluation of the same population return
    /// identical objective vectors (archives, counters) for all three
    /// optimisers: the shard data plane moves work, never results.
    #[test]
    fn sharded_and_unsharded_evaluation_are_identical_for_all_optimizers(
        seed in 0u64..10_000,
        shard_size in 1usize..6,
    ) {
        use ayb_moo::{
            FnProblem, GaConfig, ObjectiveSpec, OptimizerConfig, ShardedEvaluator,
            ShardingOptions, WithEvaluator,
        };
        use ayb_store::ShardDataPlane;
        use std::time::Duration;

        let problem = FnProblem::new(
            2,
            vec![ObjectiveSpec::maximize("f1"), ObjectiveSpec::minimize("f2")],
            |x: &[f64]| {
                if x[0] + x[1] > 1.8 {
                    None // an infeasible region, so `None` slots shard too
                } else {
                    Some(vec![x[0] + x[1], (x[0] - x[1]).abs()])
                }
            },
        );
        let ga = GaConfig::small_test().with_seed(seed);
        for config in [
            OptimizerConfig::Wbga(ga),
            OptimizerConfig::Nsga2(ga),
            OptimizerConfig::RandomSearch { budget: 64, seed },
        ] {
            let reference = config.build().run(&problem);

            let dir = std::env::temp_dir().join(format!(
                "ayb-prop-shard-{}-{seed}-{shard_size}-{}",
                std::process::id(),
                config.name()
            ));
            let plane = ShardDataPlane::open(&dir, Duration::from_secs(30));
            let sharded_problem = WithEvaluator::new(
                &problem,
                ShardedEvaluator::new(
                    Box::new(plane),
                    ShardingOptions::with_shard_size(shard_size),
                ),
            );
            let sharded = config.build().run(&sharded_problem);
            let _ = std::fs::remove_dir_all(&dir);

            prop_assert!(
                reference.archive == sharded.archive,
                "{}: archives must match",
                config.name()
            );
            prop_assert_eq!(reference.evaluations, sharded.evaluations);
            prop_assert_eq!(reference.failed_evaluations, sharded.failed_evaluations);
        }
    }
}

proptest! {
    // Each case runs six complete five-stage flows (three optimisers, serial
    // vs sharded); a small case count keeps the suite fast.
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Sharded variation analysis is bit-identical to the serial stage for
    /// all three optimisers, whatever the seed, analysed-front size,
    /// variation batch size and solver backend — including fronts smaller
    /// than the number of evaluation shards per generation (population 14 /
    /// shard size 3 = 5 shards) and batches that straddle point boundaries.
    /// The run's manifest records the solver and batch size it used.
    #[test]
    fn sharded_and_serial_variation_analysis_are_identical(
        seed in 0u64..10_000,
        front_limit in 3usize..7,
        batch in 1usize..5,
    ) {
        use ayb_core::{FlowBuilder, FlowConfig};
        use ayb_moo::{GaConfig, OptimizerConfig};
        use ayb_sim::SolverKind;
        use ayb_store::{Manifest, Store};

        let mut config = FlowConfig::reduced();
        config.ga = GaConfig {
            generations: 3,
            ..config.ga
        };
        config.sweep = ayb_sim::FrequencySweep::logarithmic(10.0, 1e9, 4);
        config.monte_carlo.samples = 6;
        config.max_pareto_points = front_limit;
        config.shard_size = 3;
        config.solver = if seed % 2 == 0 { SolverKind::Dense } else { SolverKind::Sparse };
        config.variation_batch = batch;

        for optimizer in [
            OptimizerConfig::Wbga(config.ga),
            OptimizerConfig::Nsga2(config.ga),
            OptimizerConfig::RandomSearch {
                budget: config.ga.evaluation_budget(),
                seed,
            },
        ] {
            // Serial reference: no store, no sharding.
            let serial = FlowBuilder::new(config.clone())
                .with_optimizer(optimizer.clone())
                .with_seed(seed)
                .run()
                .expect("serial flow completes");

            // Sharded: durable run, variation stage through the shard plane
            // (no external workers — the submitter services every point).
            let dir = std::env::temp_dir().join(format!(
                "ayb-prop-var-{}-{seed}-{front_limit}-{}",
                std::process::id(),
                optimizer.name()
            ));
            let store = Store::open(&dir).expect("store opens");
            let sharded = FlowBuilder::new(config.clone())
                .with_optimizer(optimizer.clone())
                .with_seed(seed)
                .with_store(&store)
                .sharded(true)
                .run()
                .expect("sharded flow completes");
            // The durable manifest records the solver backend and batch
            // size, so a resume (or an `ayb serve` worker) reproduces the
            // exact kernel configuration.
            let run_id = store.run_ids().expect("runs list")[0].clone();
            let manifest: Manifest<FlowConfig> = store
                .run(&run_id)
                .expect("run handle")
                .manifest()
                .expect("manifest parses");
            prop_assert_eq!(manifest.flow.solver, config.solver);
            prop_assert_eq!(manifest.flow.variation_batch, batch);
            let _ = std::fs::remove_dir_all(&dir);

            prop_assert!(
                serial.pareto_data == sharded.pareto_data,
                "{}: variation tables must match",
                optimizer.name()
            );
            prop_assert!(
                serial.determinism_digest() == sharded.determinism_digest(),
                "{}: whole-flow digest must match",
                optimizer.name()
            );
            prop_assert_eq!(serial.timings.mc_points, sharded.timings.mc_points);
        }
    }
}

proptest! {
    // Each case runs two complete flows; a small case count keeps the
    // suite fast.
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Telemetry is digest-neutral: a durable sharded run with a recorder
    /// attached (ring, metrics, and an extra JSONL sink on top of the
    /// run's own `events.jsonl`) digests bit-identically to a plain serial
    /// run with no telemetry at all, for any seed and front size. The event
    /// layer observes the flow; it must never feed it.
    #[test]
    fn telemetry_never_perturbs_the_determinism_digest(
        seed in 0u64..10_000,
        front_limit in 3usize..7,
    ) {
        use ayb_core::{FlowBuilder, FlowConfig};
        use ayb_moo::GaConfig;
        use ayb_obs::{JsonlSink, Recorder};
        use ayb_store::Store;

        let mut config = FlowConfig::reduced();
        config.ga = GaConfig {
            generations: 3,
            ..config.ga
        };
        config.sweep = ayb_sim::FrequencySweep::logarithmic(10.0, 1e9, 4);
        config.monte_carlo.samples = 6;
        config.max_pareto_points = front_limit;
        config.shard_size = 3;

        // Reference: serial, storeless, telemetry-free.
        let serial = FlowBuilder::new(config.clone())
            .with_seed(seed)
            .run()
            .expect("serial flow completes");

        // Instrumented: durable, sharded, recorder with an extra sink.
        let dir = std::env::temp_dir().join(format!(
            "ayb-prop-obs-{}-{seed}-{front_limit}",
            std::process::id()
        ));
        let side_log = dir.join("side-events.jsonl");
        let store = Store::open(&dir).expect("store opens");
        let recorder = Recorder::new();
        recorder.add_sink(Box::new(JsonlSink::new(&side_log)));
        let instrumented = FlowBuilder::new(config.clone())
            .with_seed(seed)
            .with_store(&store)
            .sharded(true)
            .with_recorder(recorder.clone())
            .run()
            .expect("instrumented flow completes");

        prop_assert!(
            serial.determinism_digest() == instrumented.determinism_digest(),
            "telemetry changed the digest"
        );
        // The instrumentation actually ran: events were recorded and both
        // logs are well-formed.
        prop_assert!(recorder.metrics().counter("ayb_events_total") > 0);
        let side = ayb_obs::read_events(&side_log).expect("side log parses");
        prop_assert!(!side.is_empty());
        ayb_obs::check_monotonic_per_pid(&side).expect("side log ordered");
        let run_id = store.run_ids().expect("runs list")[0].clone();
        let run_log = store
            .run(&run_id)
            .expect("run handle")
            .events_path();
        let events = ayb_obs::read_events(&run_log).expect("events.jsonl parses");
        prop_assert!(!events.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

proptest! {
    // Each case runs six complete flows (three optimisers, cache off vs
    // on); a small case count keeps the suite fast.
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The evaluation cache is digest-neutral: enabling
    /// `FlowConfig::eval_cache` must reproduce the cache-off determinism
    /// digest bit-for-bit for all three optimisers, whatever the seed and
    /// front size — the cache may skip duplicate solves, never change
    /// results. The timing counters prove the cache actually engaged
    /// (lookups > 0) rather than passing vacuously.
    #[test]
    fn eval_cache_never_perturbs_the_determinism_digest(
        seed in 0u64..10_000,
        front_limit in 3usize..7,
    ) {
        use ayb_core::{FlowBuilder, FlowConfig};
        use ayb_moo::{GaConfig, OptimizerConfig};

        let mut config = FlowConfig::reduced();
        config.ga = GaConfig {
            generations: 3,
            ..config.ga
        };
        config.sweep = ayb_sim::FrequencySweep::logarithmic(10.0, 1e9, 4);
        config.monte_carlo.samples = 6;
        config.max_pareto_points = front_limit;

        for optimizer in [
            OptimizerConfig::Wbga(config.ga),
            OptimizerConfig::Nsga2(config.ga),
            OptimizerConfig::RandomSearch {
                budget: config.ga.evaluation_budget(),
                seed,
            },
        ] {
            let off = FlowBuilder::new(config.clone())
                .with_optimizer(optimizer.clone())
                .with_seed(seed)
                .run()
                .expect("cache-off flow completes");
            prop_assert_eq!(off.timings.eval_cache_lookups, 0);

            let mut cached_config = config.clone();
            cached_config.eval_cache = Some(1e-9);
            let on = FlowBuilder::new(cached_config)
                .with_optimizer(optimizer.clone())
                .with_seed(seed)
                .run()
                .expect("cache-on flow completes");

            prop_assert!(
                off.determinism_digest() == on.determinism_digest(),
                "{}: the evaluation cache changed the digest",
                optimizer.name()
            );
            prop_assert!(
                on.timings.eval_cache_lookups > 0,
                "{}: the cache never engaged",
                optimizer.name()
            );
            prop_assert!(on.timings.eval_cache_hits <= on.timings.eval_cache_lookups);
        }
    }
}

proptest! {
    // Each case runs three optimisations against an in-process TCP
    // coordinator; a small case count keeps the suite fast.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Sharded evaluation over the *network* data plane (an in-process
    /// coordinator spoken to through `TcpTransport`) returns objective
    /// vectors identical to local evaluation for all three optimisers — the
    /// wire, like the on-disk plane, moves work but never changes results.
    #[test]
    fn tcp_sharded_evaluation_matches_local_for_all_optimizers(
        seed in 0u64..10_000,
        shard_size in 1usize..6,
    ) {
        use ayb_moo::{
            FnProblem, GaConfig, ObjectiveSpec, OptimizerConfig, ShardedEvaluator,
            ShardingOptions, WithEvaluator,
        };
        use ayb_net::{Coordinator, CoordinatorConfig, TcpTransport};

        let problem = FnProblem::new(
            2,
            vec![ObjectiveSpec::maximize("f1"), ObjectiveSpec::minimize("f2")],
            |x: &[f64]| {
                if x[0] + x[1] > 1.8 {
                    None // an infeasible region, so `None` slots travel too
                } else {
                    Some(vec![x[0] + x[1], (x[0] - x[1]).abs()])
                }
            },
        );
        let coordinator = Coordinator::bind("127.0.0.1:0", CoordinatorConfig::default())
            .expect("coordinator binds an ephemeral port");
        let ga = GaConfig::small_test().with_seed(seed);
        for config in [
            OptimizerConfig::Wbga(ga),
            OptimizerConfig::Nsga2(ga),
            OptimizerConfig::RandomSearch { budget: 64, seed },
        ] {
            let reference = config.build().run(&problem);

            let transport = TcpTransport::connect(coordinator.local_addr().to_string());
            let sharded_problem = WithEvaluator::new(
                &problem,
                ShardedEvaluator::new(
                    Box::new(transport),
                    ShardingOptions::with_shard_size(shard_size),
                ),
            );
            let sharded = config.build().run(&sharded_problem);

            prop_assert!(
                reference.archive == sharded.archive,
                "{}: archives must match over TCP",
                config.name()
            );
            prop_assert_eq!(reference.evaluations, sharded.evaluations);
            prop_assert_eq!(reference.failed_evaluations, sharded.failed_evaluations);
        }
    }
}

proptest! {
    // Each case runs two full test-bench simulations (DC + AC) — cheap.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The dense and sparse LU backends agree to 1e-9 on randomly sized OTA
    /// designs drawn across the whole Table 1 space: same feasibility
    /// verdict, and when feasible, matching gain, phase margin and
    /// unity-gain frequency. The backends factor the same matrices in a
    /// different elimination order, so this bounds the numerical daylight
    /// between them over the actual population the optimisers explore.
    #[test]
    fn dense_and_sparse_backends_agree_on_random_ota_draws(
        genes in proptest::collection::vec(0.0f64..1.0, 8),
    ) {
        use ayb_circuit::ota::OtaTestbenchConfig;
        use ayb_core::OtaSizingProblem;
        use ayb_sim::{FrequencySweep, SolverKind};

        let dense = OtaSizingProblem::new(
            OtaTestbenchConfig::new(),
            FrequencySweep::logarithmic(10.0, 1e9, 16),
        );
        let sparse = OtaSizingProblem::new(
            OtaTestbenchConfig::new(),
            FrequencySweep::logarithmic(10.0, 1e9, 16),
        )
        .with_solver(SolverKind::Sparse);

        let d = dense.performance(&genes);
        let s = sparse.performance(&genes);
        prop_assert!(d.is_some() == s.is_some(), "feasibility verdicts differ");
        if let (Some(d), Some(s)) = (d, s) {
            prop_assert!(
                (d.gain_db - s.gain_db).abs() < 1e-9 * (1.0 + d.gain_db.abs()),
                "gain: {} vs {}", d.gain_db, s.gain_db
            );
            prop_assert!(
                (d.phase_margin_deg - s.phase_margin_deg).abs()
                    < 1e-9 * (1.0 + d.phase_margin_deg.abs()),
                "phase margin: {} vs {}", d.phase_margin_deg, s.phase_margin_deg
            );
            prop_assert!(
                ((d.unity_gain_hz - s.unity_gain_hz) / d.unity_gain_hz).abs() < 1e-9,
                "ugf: {} vs {}", d.unity_gain_hz, s.unity_gain_hz
            );
        }
    }
}

proptest! {
    // Each case runs four complete flows (two per backend); a small case
    // count keeps the suite fast.
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// Each solver backend is bit-deterministic under `with_seed`: running
    /// the same seeded flow twice on the same backend produces identical
    /// determinism digests, for dense and sparse alike. (The two backends'
    /// digests may differ from *each other* by last-ulp rounding — what must
    /// never drift is a repeat run on the same backend.)
    #[test]
    fn each_solver_backend_is_bit_deterministic_under_a_seed(seed in 0u64..10_000) {
        use ayb_core::{FlowBuilder, FlowConfig};
        use ayb_moo::GaConfig;
        use ayb_sim::SolverKind;

        for solver in [SolverKind::Dense, SolverKind::Sparse] {
            let mut config = FlowConfig::reduced();
            config.ga = GaConfig {
                generations: 2,
                ..config.ga
            };
            config.sweep = ayb_sim::FrequencySweep::logarithmic(10.0, 1e9, 4);
            config.monte_carlo.samples = 4;
            config.max_pareto_points = 4;
            config.solver = solver;

            let first = FlowBuilder::new(config.clone())
                .with_seed(seed)
                .run()
                .expect("first flow completes");
            let second = FlowBuilder::new(config)
                .with_seed(seed)
                .run()
                .expect("second flow completes");
            prop_assert!(
                first.determinism_digest() == second.determinism_digest(),
                "{solver} backend digest drifted across identical seeded runs"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Wire robustness: both network listeners — the coordinator's length-framed
// TCP plane and the service plane's HTTP/1.1 listener — face sockets they do
// not control. Arbitrary garbage, truncated frames, and hostile length
// announcements must never wedge or kill a listener: the abusive connection
// is rejected or dropped, and the *next* well-formed request on a fresh
// connection is answered normally.

/// Writes `bytes`, half-closes, then drains whatever the peer says until it
/// hangs up. Read timeouts are treated as the peer's (acceptable) silence.
fn abuse_socket(addr: std::net::SocketAddr, bytes: &[u8]) {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).expect("abuse connection");
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(5)))
        .expect("read timeout");
    // The listener may already have dropped us mid-write; that is fine.
    let _ = stream.write_all(bytes);
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut sink = Vec::new();
    let _ = stream.read_to_end(&mut sink);
}

proptest! {
    // Each case binds a fresh listener; a handful of cases keeps the suite
    // fast while still sampling structurally different garbage.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The coordinator survives raw garbage, a truncated frame, and a frame
    /// header announcing an absurd length — and still answers a well-formed
    /// `Stats` request afterwards.
    #[test]
    fn coordinator_survives_hostile_bytes_on_the_wire(
        raw in proptest::collection::vec(0u32..256, 0usize..512),
        announced in (ayb_net::wire::MAX_FRAME_BYTES as u32 + 1)..u32::MAX,
    ) {
        use ayb_net::wire::{read_frame, write_frame, Request, Response};
        use ayb_net::{Coordinator, CoordinatorConfig};

        let garbage: Vec<u8> = raw.iter().map(|&b| b as u8).collect();

        let coordinator = Coordinator::bind("127.0.0.1:0", CoordinatorConfig::default())
            .expect("coordinator binds");
        let addr = coordinator.local_addr();

        // Raw garbage: the first 4 bytes parse as some length; the body
        // never arrives in full.
        abuse_socket(addr, &garbage);
        // Hostile announcement: a header promising more than the frame
        // bound must be rejected before any allocation.
        abuse_socket(addr, &announced.to_be_bytes());
        // Truncated frame: announce a modest length, deliver half.
        let mut truncated = 64u32.to_be_bytes().to_vec();
        truncated.extend_from_slice(&garbage[..garbage.len().min(32)]);
        abuse_socket(addr, &truncated);

        // A fresh, well-formed connection is served as if nothing happened.
        let mut stream = std::net::TcpStream::connect(addr).expect("stats connection");
        stream
            .set_read_timeout(Some(std::time::Duration::from_secs(10)))
            .expect("read timeout");
        write_frame(&mut stream, &Request::Stats).expect("stats request writes");
        let response: Response = read_frame(&mut stream).expect("stats response arrives");
        prop_assert!(
            matches!(response, Response::Stats { .. }),
            "coordinator answered {response:?} after wire abuse"
        );
        coordinator.shutdown();
    }

    /// The HTTP listener survives garbage request lines, header floods, and
    /// oversized content-length announcements — each abusive connection gets
    /// a 4xx or a clean close, and `GET /v1/metrics` still answers afterwards.
    #[test]
    fn http_listener_survives_hostile_bytes_on_the_wire(
        raw in proptest::collection::vec(0u32..256, 0usize..512),
        flood_lines in 70usize..120,
    ) {
        use ayb_svc::{SvcClient, SvcConfig, SvcServer};

        let garbage: Vec<u8> = raw.iter().map(|&b| b as u8).collect();

        let root = std::env::temp_dir().join(format!(
            "ayb-prop-http-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .expect("clock")
                .as_nanos()
        ));
        let store = ayb_store::Store::open(&root).expect("store opens");
        let mut server = SvcServer::start(
            store,
            SvcConfig {
                workers: 0,
                ..SvcConfig::default()
            },
        )
        .expect("service starts");
        let addr = server.local_addr();

        // Raw garbage where a request line belongs.
        abuse_socket(addr, &garbage);
        // A header flood beyond the per-request header cap.
        let mut flood = b"GET /v1/metrics HTTP/1.1\r\n".to_vec();
        for line in 0..flood_lines {
            flood.extend_from_slice(format!("x-flood-{line}: y\r\n").as_bytes());
        }
        flood.extend_from_slice(b"\r\n");
        abuse_socket(addr, &flood);
        // An announced body far beyond the body cap, with no body sent.
        abuse_socket(
            addr,
            b"POST /v1/runs HTTP/1.1\r\ncontent-length: 999999999\r\n\r\n",
        );
        // A truncated body: promise 100 bytes, deliver a handful, hang up.
        abuse_socket(
            addr,
            b"POST /v1/runs HTTP/1.1\r\ncontent-length: 100\r\n\r\n{\"seed\"",
        );

        // The listener still serves well-formed traffic.
        let client = SvcClient::new(&server.url()).expect("client url");
        let metrics = client.metrics_text().expect("metrics still served");
        prop_assert!(
            metrics.contains("ayb_svc_requests_total"),
            "metrics page lost its counters after wire abuse"
        );
        server.shutdown();
        let _ = std::fs::remove_dir_all(root);
    }
}
