//! Integration tests for the job-server layer (`ayb_jobs`): N runs through a
//! multi-worker [`JobServer`] digest bit-identically to the same seeds run
//! sequentially, a SIGKILL'd worker's run is re-claimed on restart and
//! resumes to the identical digest, graceful shutdown halts at checkpoint
//! boundaries, and two servers sharing one store never execute a run twice.

use ayb_core::{FlowBuilder, FlowConfig, FlowResult};
use ayb_jobs::{JobEvent, JobServer, JobServerConfig};
use ayb_moo::{CheckpointError, OptimizerConfig};
use ayb_store::{RunStatus, Store};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

fn temp_store(label: &str) -> (PathBuf, Store) {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let root = std::env::temp_dir().join(format!(
        "ayb-jobs-test-{label}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let store = Store::open(&root).expect("store opens");
    (root, store)
}

/// The trimmed reduced-scale configuration the resume tests also use: full
/// five-stage flow, seconds of wall clock.
fn small_config() -> FlowConfig {
    let mut config = FlowConfig::reduced();
    config.sweep = ayb_sim::FrequencySweep::logarithmic(10.0, 1e9, 4);
    config.monte_carlo.samples = 10;
    config.max_pareto_points = 8;
    config
}

/// Sequential (store-less) reference digest for a seed.
fn reference_digest(seed: u64) -> u64 {
    FlowBuilder::new(small_config())
        .with_seed(seed)
        .run()
        .expect("reference flow completes")
        .determinism_digest()
}

/// Submits a seed the way `ayb submit` does, returning the run id.
fn submit(store: &Store, seed: u64) -> String {
    let mut config = small_config();
    config.ga.seed = seed;
    config.monte_carlo.seed = seed;
    let optimizer = OptimizerConfig::Wbga(config.ga);
    store
        .enqueue_run(seed, &optimizer, &config)
        .expect("enqueue succeeds")
        .id()
        .to_string()
}

fn stored_digest(store: &Store, run_id: &str) -> u64 {
    let result: FlowResult = store
        .run(run_id)
        .expect("run exists")
        .load_result()
        .expect("result loads");
    result.determinism_digest()
}

#[test]
fn served_runs_digest_identically_to_sequential_runs() {
    let (root, store) = temp_store("digests");
    let seeds = [11u64, 22, 33];
    let expected: Vec<u64> = seeds.iter().map(|&seed| reference_digest(seed)).collect();

    let submitted: Vec<String> = seeds.iter().map(|&seed| submit(&store, seed)).collect();
    let server = JobServer::new(store.clone(), JobServerConfig::drain_with_workers(3));
    let report = server.run().expect("server drains");

    assert_eq!(report.completed.len(), 3, "report: {report:?}");
    assert!(report.failed.is_empty() && report.interrupted.is_empty());
    for (run_id, expected) in submitted.iter().zip(&expected) {
        let handle = store.run(run_id).unwrap();
        assert_eq!(handle.status().unwrap(), RunStatus::Completed);
        assert_eq!(handle.claim().unwrap(), None, "claims are released");
        assert_eq!(
            stored_digest(&store, run_id),
            *expected,
            "{run_id}: a multi-worker server changes nothing about the result"
        );
    }
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn sigkilled_workers_run_is_reclaimed_and_resumes_bit_identically() {
    let (root, store) = temp_store("reclaim");
    let expected = reference_digest(77);
    let run_id = submit(&store, 77);

    // Execute the queued run partially (3 checkpoints), as a server worker
    // would, then halt — on-disk state identical to a crash.
    let halted = FlowBuilder::resume(&store, &run_id)
        .expect("resume builds")
        .halt_after_checkpoints(3)
        .run();
    assert!(matches!(
        halted,
        Err(ayb_core::AybError::Checkpoint(
            CheckpointError::Halted { .. }
        ))
    ));
    let handle = store.run(&run_id).unwrap();
    assert_eq!(handle.status().unwrap(), RunStatus::Interrupted);

    // Forge the rest of the SIGKILL aftermath: status still `Running` and a
    // claim whose holder is long dead (no Linux pid is ever u32::MAX). The
    // host is this machine's, so pid liveness — not heartbeat age — decides.
    handle.set_status(RunStatus::Running).unwrap();
    let dead_claim = ayb_store::ClaimInfo {
        pid: u32::MAX,
        claimed_unix: 1,
        ..ayb_store::ClaimInfo::for_this_process("dead-worker")
    };
    std::fs::write(
        handle.dir().join("claim.json"),
        serde_json::to_string_pretty(&dead_claim).unwrap(),
    )
    .unwrap();

    // A fresh server must break the stale claim, re-queue the run, resume it
    // from checkpoint 3 and finish with the reference digest.
    let server = JobServer::new(store.clone(), JobServerConfig::drain_with_workers(2));
    let report = server.run().expect("server drains");
    assert_eq!(report.requeued, vec![run_id.clone()]);
    assert_eq!(report.completed, vec![run_id.clone()]);
    assert_eq!(handle.status().unwrap(), RunStatus::Completed);
    assert_eq!(handle.claim().unwrap(), None);
    assert_eq!(stored_digest(&store, &run_id), expected);
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn hung_workers_run_is_stolen_once_its_heartbeat_lapses() {
    let (root, store) = temp_store("steal-hung");
    let expected = reference_digest(78);
    let run_id = submit(&store, 78);

    let halted = FlowBuilder::resume(&store, &run_id)
        .expect("resume builds")
        .halt_after_checkpoints(3)
        .run();
    assert!(halted.is_err(), "halted mid-run");
    let handle = store.run(&run_id).unwrap();

    // Forge a *hung* holder: this very process (alive pid, same host) whose
    // claim heartbeat has gone quiet. Pre-fencing, recovery spared these
    // forever; now the claim carries a fence token and is stolen once the
    // heartbeat exceeds the reclaim grace.
    handle.set_status(RunStatus::Running).unwrap();
    let hung_claim = ayb_store::ClaimInfo::for_this_process("hung-worker").with_fence(1);
    std::fs::write(
        handle.dir().join("claim.json"),
        serde_json::to_string_pretty(&hung_claim).unwrap(),
    )
    .unwrap();
    std::thread::sleep(Duration::from_millis(150));

    let mut config = JobServerConfig::drain_with_workers(2);
    config.reclaim_grace = Duration::from_millis(50);
    let server = JobServer::new(store.clone(), config);
    let report = server.run().expect("server drains");
    assert_eq!(report.requeued, vec![run_id.clone()]);
    assert_eq!(report.completed, vec![run_id.clone()]);
    assert_eq!(handle.status().unwrap(), RunStatus::Completed);
    assert_eq!(stored_digest(&store, &run_id), expected);
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn graceful_shutdown_halts_at_a_checkpoint_and_the_run_resumes() {
    let (root, store) = temp_store("shutdown");
    let expected = reference_digest(55);
    let run_id = submit(&store, 55);

    // Serve in poll mode; shut the server down from its own event stream as
    // soon as the run's first checkpoint lands.
    let config = JobServerConfig {
        workers: 1,
        poll_interval: Duration::from_millis(20),
        ..JobServerConfig::default()
    };
    let server = JobServer::new(store.clone(), config);
    let shutdown = server.shutdown_handle();
    let trigger = shutdown.clone();
    server.set_event_hook(move |event| {
        if matches!(event, JobEvent::CheckpointWritten { .. }) {
            trigger.shutdown();
        }
    });
    let report = std::thread::spawn(move || server.run().expect("server stops cleanly"))
        .join()
        .expect("server thread joins");
    assert!(shutdown.is_shutdown());
    assert_eq!(
        report.interrupted,
        vec![run_id.clone()],
        "report: {report:?}"
    );

    // The halt was graceful: resumable state, no claim, checkpoints on disk.
    let handle = store.run(&run_id).unwrap();
    assert_eq!(handle.status().unwrap(), RunStatus::Interrupted);
    assert_eq!(handle.claim().unwrap(), None);
    assert!(!handle.checkpoint_generations().unwrap().is_empty());

    // A drain server finishes the interrupted run to the reference digest.
    let server = JobServer::new(store.clone(), JobServerConfig::drain_with_workers(1));
    let report = server.run().expect("drain server finishes");
    assert_eq!(report.requeued, vec![run_id.clone()]);
    assert_eq!(report.completed, vec![run_id.clone()]);
    assert_eq!(stored_digest(&store, &run_id), expected);
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn long_lived_server_adopts_runs_stranded_after_startup() {
    let (root, store) = temp_store("adopt");
    let expected = reference_digest(99);

    // A long-lived server over an (initially) empty store, with a fast
    // periodic recovery pass.
    let config = JobServerConfig {
        workers: 1,
        poll_interval: Duration::from_millis(20),
        recovery_interval: Duration::from_millis(100),
        ..JobServerConfig::default()
    };
    let server = JobServer::new(store.clone(), config);
    let shutdown = server.shutdown_handle();
    let (sender, receiver) = std::sync::mpsc::channel();
    server.set_event_hook(move |event| {
        if let JobEvent::Completed { run_id, .. } = event {
            let _ = sender.send(run_id.clone());
        }
    });
    let server_thread = std::thread::spawn(move || server.run().expect("server stops cleanly"));

    // After the server started (so its *startup* recovery never saw it),
    // strand an interrupted run: it is never `Queued`, so only the periodic
    // recovery pass can adopt it.
    let halted = FlowBuilder::new(small_config())
        .with_seed(99)
        .with_store(&store)
        .with_run_id("stranded")
        .halt_after_checkpoints(2)
        .run();
    assert!(matches!(
        halted,
        Err(ayb_core::AybError::Checkpoint(
            CheckpointError::Halted { .. }
        ))
    ));
    let handle = store.run("stranded").unwrap();
    assert_eq!(handle.status().unwrap(), RunStatus::Interrupted);

    // The running server must re-queue and finish it without a restart.
    let completed = receiver
        .recv_timeout(Duration::from_secs(60))
        .expect("server adopts the stranded run");
    assert_eq!(completed, "stranded");
    shutdown.shutdown();
    let report = server_thread.join().expect("server thread joins");
    assert_eq!(report.requeued, vec!["stranded".to_string()]);
    assert_eq!(report.completed, vec!["stranded".to_string()]);
    assert_eq!(handle.status().unwrap(), RunStatus::Completed);
    assert_eq!(stored_digest(&store, "stranded"), expected);
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn two_servers_share_one_store_without_double_execution() {
    let (root, store) = temp_store("two-servers");
    let seeds = [1u64, 2, 3, 4];
    let submitted: Vec<String> = seeds.iter().map(|&seed| submit(&store, seed)).collect();

    let reports: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let server = JobServer::new(store.clone(), JobServerConfig::drain_with_workers(2));
                scope.spawn(move || server.run().expect("server drains"))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Every run completed exactly once across the two servers; the claim
    // losers show up as skips, never as second executions.
    let mut completed: Vec<String> = reports
        .iter()
        .flat_map(|report| report.completed.iter().cloned())
        .collect();
    completed.sort();
    let mut expected = submitted.clone();
    expected.sort();
    assert_eq!(completed, expected, "reports: {reports:?}");
    assert!(reports.iter().all(|r| r.failed.is_empty()));
    for run_id in &submitted {
        let handle = store.run(run_id).unwrap();
        assert_eq!(handle.status().unwrap(), RunStatus::Completed);
        assert!(handle.has_result());
        assert_eq!(handle.claim().unwrap(), None);
    }
    let _ = std::fs::remove_dir_all(root);
}
