//! Integration test of the paper's §5 application: designing the 2nd-order
//! anti-aliasing filter hierarchically from the behavioural OTA model and
//! verifying it at transistor level.

use ayb_behavioral::{FilterSpec, OtaSpec};
use ayb_core::{design_filter, filter_design, generate_model, FlowConfig};
use ayb_moo::GaConfig;

fn reduced_config() -> FlowConfig {
    let mut config = FlowConfig::reduced();
    config.sweep = ayb_sim::FrequencySweep::logarithmic(10.0, 1e9, 4);
    config.monte_carlo.samples = 8;
    config.max_pareto_points = 8;
    config
}

#[test]
fn hierarchical_filter_design_from_generated_model() {
    let config = reduced_config();
    let flow = generate_model(&config).expect("model generation succeeds");
    let model = &flow.model;

    // Choose an OTA spec the reduced model can serve (§5 uses 50 dB / 60°;
    // the reduced-scale front may sit elsewhere, so anchor to its range).
    let (gain_lo, gain_hi) = model.gain_range_db();
    let spec_gain = gain_lo + 0.25 * (gain_hi - gain_lo);
    let pm_at = model.pm_at_gain(spec_gain).expect("pm available");
    let ota_spec = OtaSpec::new(spec_gain, (pm_at - 10.0).max(1.0));
    let filter_spec = FilterSpec::anti_aliasing_1mhz();

    let mut ga = GaConfig::paper_filter();
    ga.population_size = 12;
    ga.generations = 8;
    let design = design_filter(model, &ota_spec, &filter_spec, ga, config.testbench.cload)
        .expect("filter design succeeds");

    // Figure 11: the behavioural response meets the template.
    assert!(design.margin_db > -0.5, "margin {}", design.margin_db);
    assert!(design.capacitors.c1 > 0.5e-12 && design.capacitors.c1 < 250e-12);
    let report = design.response.check(&filter_spec);
    assert!(
        report.stopband_worst_db < -15.0,
        "stopband {}",
        report.stopband_worst_db
    );

    // Transistor-level verification of the same sizing: the filter built from
    // forty transistors still behaves as a low-pass in the right region.
    let transistor = filter_design::simulate_transistor_filter(
        &design.capacitors,
        &ayb_circuit::ota::OtaParameters::from_design_point(&design.ota_design.parameters),
        &filter_spec,
        &config,
        &ayb_behavioral::filter::filter_sweep(),
    );
    let (response, _report) = transistor.expect("transistor filter simulates");
    let gains = response.gain_db();
    let dc = gains[0];
    let hf = *gains.last().unwrap();
    assert!(
        hf < dc - 15.0,
        "transistor filter should attenuate high frequencies (dc {dc} dB, hf {hf} dB)"
    );

    // Small-sample Monte Carlo yield of the filter against the template.
    let yield_report = filter_design::verify_filter_yield(&design, &filter_spec, &config, 6, 11);
    if let Some(report) = yield_report {
        assert!(report.samples > 0);
        assert!(report.yield_fraction >= 0.0 && report.yield_fraction <= 1.0);
    }
}
