//! End-to-end integration test of the paper's flow at reduced scale:
//! optimisation → Pareto front → Monte Carlo variation → combined model
//! → retargeting → transistor-level verification, plus the FlowBuilder /
//! generate_model equivalence and optimiser-interchangeability contracts.

use ayb_core::{
    generate_model, report, verify_accuracy, verify_ota_yield, FlowBuilder, FlowConfig,
    FlowObserver, FlowStage,
};
use ayb_moo::{dominates, GaConfig, OptimizerConfig, Sense};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn reduced_config() -> FlowConfig {
    let mut config = FlowConfig::reduced();
    // Keep the integration test fast: tiny sweep, few MC samples.
    config.sweep = ayb_sim::FrequencySweep::logarithmic(10.0, 1e9, 4);
    config.monte_carlo.samples = 10;
    config.max_pareto_points = 8;
    config
}

#[test]
fn flow_produces_model_with_paper_shaped_artifacts() {
    let config = reduced_config();
    let result = generate_model(&config).expect("flow completes at reduced scale");

    // Figure 7: archive of evaluated candidates plus a non-empty Pareto front.
    assert!(
        result.archive.len() >= 80,
        "archive = {}",
        result.archive.len()
    );
    assert!(!result.pareto.is_empty());
    // The front must consist of mutually non-dominated points.
    let senses = [Sense::Maximize, Sense::Maximize];
    for a in &result.pareto {
        for b in &result.pareto {
            assert!(
                !dominates(&a.objectives, &b.objectives, &senses) || a.objectives == b.objectives,
                "pareto front contains a dominated point"
            );
        }
    }
    // Performance values must lie in a physically sensible range.
    for e in &result.archive {
        assert!(
            (0.0..120.0).contains(&e.objectives[0]),
            "gain {}",
            e.objectives[0]
        );
        assert!(
            (0.0..180.0).contains(&e.objectives[1]),
            "pm {}",
            e.objectives[1]
        );
    }

    // Table 2: every analysed Pareto point carries positive variation figures.
    assert!(result.pareto_data.len() >= 3);
    for p in &result.pareto_data {
        assert!(p.gain_delta_percent >= 0.0 && p.gain_delta_percent < 50.0);
        assert!(p.pm_delta_percent >= 0.0 && p.pm_delta_percent < 50.0);
        assert!(p.parameters.len() == 8, "8 designable parameters per point");
    }

    // Table 5: the summary is consistent with the configuration.
    let summary = result.summary(&config);
    assert_eq!(summary.generations, config.ga.generations);
    assert_eq!(summary.mc_samples_per_point, config.monte_carlo.samples);
    assert!(summary.cpu_time_seconds > 0.0);

    // The report renderers accept the real flow output.
    let table2 = report::render_table2(&result.pareto_data);
    assert!(table2.lines().count() >= result.pareto_data.len());
    let fig7 = report::render_fig7_data(&result.archive, &result.pareto);
    assert!(fig7.lines().count() > result.archive.len());
}

#[test]
fn model_use_retargets_and_verifies_against_transistor_level() {
    let config = reduced_config();
    let result = generate_model(&config).expect("flow completes");
    let model = &result.model;

    // Pick a specification safely inside the modelled performance region so
    // the reduced-scale model can serve it.
    let (gain_lo, gain_hi) = model.gain_range_db();
    let spec_gain = gain_lo + 0.3 * (gain_hi - gain_lo);
    let pm_at = model.pm_at_gain(spec_gain).expect("pm lookup");
    let spec = ayb_behavioral::OtaSpec::new(spec_gain, (pm_at - 8.0).max(1.0));

    let design = model.design_for_spec(&spec).expect("spec achievable");
    // Retargeting always moves the nominal performance above the requirement.
    assert!(design.retarget.new_gain_db >= spec.min_gain_db);
    assert!(design.worst_case_pm_deg >= spec.min_phase_margin_deg);

    // Table 4: transistor-level simulation of the interpolated parameters
    // agrees with the model prediction to within a few percent.
    let (accuracy, transistor) = verify_accuracy(&design, &config).expect("transistor sim runs");
    assert!(
        accuracy.gain_error_percent() < 10.0,
        "gain error {}% (model {} dB vs transistor {} dB)",
        accuracy.gain_error_percent(),
        accuracy.model_gain_db,
        accuracy.transistor_gain_db
    );
    assert!(
        accuracy.pm_error_percent() < 15.0,
        "pm error {}%",
        accuracy.pm_error_percent()
    );
    assert!(transistor.unity_gain_hz > 1e5);

    // Yield verification: the retargeted design meets the spec for most
    // process samples (the paper reports 100 %; at reduced MC size we accept
    // a small shortfall from sampling noise).
    let yield_report =
        verify_ota_yield(&design.parameters, &spec, &config, 12, 99).expect("yield runs");
    assert!(
        yield_report.yield_fraction >= 0.75,
        "yield only {}",
        yield_report.yield_fraction
    );
}

/// Counts observer callbacks so the test can assert every stage reported.
#[derive(Clone, Default)]
struct CountingObserver {
    starts: Arc<AtomicUsize>,
    completions: Arc<AtomicUsize>,
    progress_ticks: Arc<AtomicUsize>,
}

impl FlowObserver for CountingObserver {
    fn on_stage_start(&mut self, _stage: FlowStage) {
        self.starts.fetch_add(1, Ordering::Relaxed);
    }

    fn on_stage_complete(&mut self, _stage: FlowStage, _elapsed: std::time::Duration) {
        self.completions.fetch_add(1, Ordering::Relaxed);
    }

    fn on_progress(&mut self, stage: FlowStage, done: usize, total: usize) {
        assert_eq!(stage, FlowStage::AnalyzeVariation);
        assert!(done <= total);
        self.progress_ticks.fetch_add(1, Ordering::Relaxed);
    }
}

#[test]
fn builder_and_compat_wrapper_produce_identical_results() {
    let config = reduced_config();

    let via_wrapper = generate_model(&config).expect("wrapper flow completes");
    let observer = CountingObserver::default();
    let via_builder = FlowBuilder::new(config.clone())
        .with_observer(observer.clone())
        .optimize()
        .expect("optimize stage")
        .analyze_variation()
        .expect("variation stage")
        .build_model()
        .expect("model stage");

    // Deterministic artifacts are identical for the same seed and config.
    assert_eq!(via_wrapper.archive, via_builder.archive);
    assert_eq!(via_wrapper.pareto, via_builder.pareto);
    assert_eq!(via_wrapper.pareto_data, via_builder.pareto_data);
    assert_eq!(
        via_wrapper.optimization.evaluations,
        via_builder.optimization.evaluations
    );
    assert_eq!(via_wrapper.optimization.optimizer, "wbga");

    // The Table 5 summaries agree on every deterministic column (wall-clock
    // time is the only field that can differ between two runs).
    let summary_wrapper = via_wrapper.summary(&config).without_timing();
    let summary_builder = via_builder.summary(&config).without_timing();
    assert_eq!(summary_wrapper, summary_builder);

    // All three stages reported through the observer, including per-point
    // Monte Carlo progress.
    assert_eq!(observer.starts.load(Ordering::Relaxed), 3);
    assert_eq!(observer.completions.load(Ordering::Relaxed), 3);
    assert!(observer.progress_ticks.load(Ordering::Relaxed) >= 3);
}

#[test]
fn every_optimizer_variant_drives_the_flow_to_a_valid_model() {
    let mut config = reduced_config();
    // Keep the per-variant runtime small; three full flows run in this test.
    config.ga = GaConfig {
        population_size: 12,
        generations: 6,
        ..config.ga
    };

    let ga = config.ga;
    let variants = [
        OptimizerConfig::Wbga(ga),
        OptimizerConfig::Nsga2(ga),
        OptimizerConfig::RandomSearch {
            budget: ga.evaluation_budget(),
            seed: ga.seed,
        },
    ];

    for variant in variants {
        let name = variant.name();
        let result = FlowBuilder::new(config.clone())
            .with_optimizer(variant)
            .run()
            .unwrap_or_else(|e| panic!("flow with {name} failed: {e}"));

        // The optimiser identity is carried through to the result.
        assert_eq!(result.optimization.optimizer, name);
        assert!(!result.archive.is_empty(), "{name}: empty archive");

        // The front is mutually non-dominated (§3.3 condition a).
        let senses = [Sense::Maximize, Sense::Maximize];
        assert!(!result.pareto.is_empty(), "{name}: empty front");
        for a in &result.pareto {
            for b in &result.pareto {
                assert!(
                    !dominates(&a.objectives, &b.objectives, &senses)
                        || a.objectives == b.objectives,
                    "{name}: front contains a dominated point"
                );
            }
        }

        // A combined model was built from ≥ 3 analysed points and serves
        // lookups over its gain range.
        assert!(result.pareto_data.len() >= 3, "{name}: too few points");
        let (gain_lo, gain_hi) = result.model.gain_range_db();
        assert!(gain_lo < gain_hi, "{name}: degenerate gain range");
        let mid = 0.5 * (gain_lo + gain_hi);
        assert!(
            result.model.pm_at_gain(mid).is_ok(),
            "{name}: model lookup fails at mid-range gain"
        );
    }
}

#[test]
fn explicit_seeding_makes_runs_reproducible_end_to_end() {
    let config = reduced_config();
    let run = |seed: u64| {
        FlowBuilder::new(config.clone())
            .with_seed(seed)
            .run()
            .expect("seeded flow completes")
    };
    let a = run(424242);
    let b = run(424242);
    assert_eq!(a.archive, b.archive);
    assert_eq!(a.pareto_data, b.pareto_data);
    let c = run(424243);
    assert_ne!(
        a.archive, c.archive,
        "different seeds must explore differently"
    );
}

#[test]
fn halt_signal_never_aborts_a_storeless_flow() {
    // A raised halt signal stops *durable* runs at resumable boundaries;
    // a store-less flow has nothing to resume from, so it must ignore the
    // signal and complete rather than discard all finished work.
    let signal = Arc::new(std::sync::atomic::AtomicBool::new(true));
    let result = FlowBuilder::new(reduced_config())
        .with_seed(17)
        .halt_when(signal)
        .run()
        .expect("store-less flow completes despite a raised halt signal");
    assert!(result.pareto_data.len() >= 3);
}
