//! End-to-end integration test of the paper's flow at reduced scale:
//! WBGA optimisation → Pareto front → Monte Carlo variation → combined model
//! → retargeting → transistor-level verification.

use ayb_core::{generate_model, report, verify_accuracy, verify_ota_yield, FlowConfig};
use ayb_moo::{dominates, Sense};

fn reduced_config() -> FlowConfig {
    let mut config = FlowConfig::reduced();
    // Keep the integration test fast: tiny sweep, few MC samples.
    config.sweep = ayb_sim::FrequencySweep::logarithmic(10.0, 1e9, 4);
    config.monte_carlo.samples = 10;
    config.max_pareto_points = 8;
    config
}

#[test]
fn flow_produces_model_with_paper_shaped_artifacts() {
    let config = reduced_config();
    let result = generate_model(&config).expect("flow completes at reduced scale");

    // Figure 7: archive of evaluated candidates plus a non-empty Pareto front.
    assert!(result.archive.len() >= 80, "archive = {}", result.archive.len());
    assert!(!result.pareto.is_empty());
    // The front must consist of mutually non-dominated points.
    let senses = [Sense::Maximize, Sense::Maximize];
    for a in &result.pareto {
        for b in &result.pareto {
            assert!(
                !dominates(&a.objectives, &b.objectives, &senses) || a.objectives == b.objectives,
                "pareto front contains a dominated point"
            );
        }
    }
    // Performance values must lie in a physically sensible range.
    for e in &result.archive {
        assert!((0.0..120.0).contains(&e.objectives[0]), "gain {}", e.objectives[0]);
        assert!((0.0..180.0).contains(&e.objectives[1]), "pm {}", e.objectives[1]);
    }

    // Table 2: every analysed Pareto point carries positive variation figures.
    assert!(result.pareto_data.len() >= 3);
    for p in &result.pareto_data {
        assert!(p.gain_delta_percent >= 0.0 && p.gain_delta_percent < 50.0);
        assert!(p.pm_delta_percent >= 0.0 && p.pm_delta_percent < 50.0);
        assert!(p.parameters.len() == 8, "8 designable parameters per point");
    }

    // Table 5: the summary is consistent with the configuration.
    let summary = result.summary(&config);
    assert_eq!(summary.generations, config.ga.generations);
    assert_eq!(summary.mc_samples_per_point, config.monte_carlo.samples);
    assert!(summary.cpu_time_seconds > 0.0);

    // The report renderers accept the real flow output.
    let table2 = report::render_table2(&result.pareto_data);
    assert!(table2.lines().count() >= result.pareto_data.len());
    let fig7 = report::render_fig7_data(&result.archive, &result.pareto);
    assert!(fig7.lines().count() > result.archive.len());
}

#[test]
fn model_use_retargets_and_verifies_against_transistor_level() {
    let config = reduced_config();
    let result = generate_model(&config).expect("flow completes");
    let model = &result.model;

    // Pick a specification safely inside the modelled performance region so
    // the reduced-scale model can serve it.
    let (gain_lo, gain_hi) = model.gain_range_db();
    let spec_gain = gain_lo + 0.3 * (gain_hi - gain_lo);
    let pm_at = model.pm_at_gain(spec_gain).expect("pm lookup");
    let spec = ayb_behavioral::OtaSpec::new(spec_gain, (pm_at - 8.0).max(1.0));

    let design = model.design_for_spec(&spec).expect("spec achievable");
    // Retargeting always moves the nominal performance above the requirement.
    assert!(design.retarget.new_gain_db >= spec.min_gain_db);
    assert!(design.worst_case_pm_deg >= spec.min_phase_margin_deg);

    // Table 4: transistor-level simulation of the interpolated parameters
    // agrees with the model prediction to within a few percent.
    let (accuracy, transistor) = verify_accuracy(&design, &config).expect("transistor sim runs");
    assert!(
        accuracy.gain_error_percent() < 10.0,
        "gain error {}% (model {} dB vs transistor {} dB)",
        accuracy.gain_error_percent(),
        accuracy.model_gain_db,
        accuracy.transistor_gain_db
    );
    assert!(
        accuracy.pm_error_percent() < 15.0,
        "pm error {}%",
        accuracy.pm_error_percent()
    );
    assert!(transistor.unity_gain_hz > 1e5);

    // Yield verification: the retargeted design meets the spec for most
    // process samples (the paper reports 100 %; at reduced MC size we accept
    // a small shortfall from sampling noise).
    let yield_report =
        verify_ota_yield(&design.parameters, &spec, &config, 12, 99).expect("yield runs");
    assert!(
        yield_report.yield_fraction >= 0.75,
        "yield only {}",
        yield_report.yield_fraction
    );
}
