//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides a compact, real (not stubbed) serialization framework with the
//! same spelling the workspace already uses: `#[derive(Serialize,
//! Deserialize)]` plus `serde_json::{to_string, from_str}`.
//!
//! Instead of serde's visitor architecture, everything funnels through an
//! owned [`Value`] tree:
//!
//! * [`Serialize`] converts a type into a [`Value`],
//! * [`Deserialize`] reconstructs a type from a [`Value`],
//! * the companion `serde_json` crate renders a [`Value`] to JSON text and
//!   parses it back.
//!
//! The derive macros (re-exported from `serde_derive`) support named structs,
//! tuple structs, generic type parameters, enums with unit / tuple / struct
//! variants, and the `#[serde(skip)]` field attribute (skipped on serialize,
//! default-constructed on deserialize) — exactly the shapes present in this
//! workspace.

#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::time::Duration;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (the interchange tree).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent / null (also used for non-finite floats).
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer too large for `i64`.
    UInt(u64),
    /// Floating-point number (always finite).
    Float(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// Ordered key/value map (struct fields, string-keyed maps, enum tags).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an [`Value::Object`].
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value's type name, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Borrows the elements of a [`Value::Array`].
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Serialization / deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl Error {
    /// Creates an error from any displayable message.
    pub fn msg(message: impl fmt::Display) -> Self {
        Error(message.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns an error when the value's shape does not match `Self`.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Derive-internal helper: mandatory struct-field lookup.
///
/// # Errors
///
/// Returns an error if `value` is not an object or lacks the field.
pub fn __field<'a>(value: &'a Value, name: &str) -> Result<&'a Value, Error> {
    value
        .get(name)
        .ok_or_else(|| Error(format!("missing field `{name}` in {}", value.type_name())))
}

/// Derive-internal helper: expects an array of exactly `len` elements.
///
/// # Errors
///
/// Returns an error on a non-array value or a length mismatch.
pub fn __tuple(value: &Value, len: usize) -> Result<&[Value], Error> {
    match value.as_array() {
        Some(items) if items.len() == len => Ok(items),
        Some(items) => Err(Error(format!(
            "expected a {len}-element array, found {} elements",
            items.len()
        ))),
        None => Err(Error(format!(
            "expected a {len}-element array, found {}",
            value.type_name()
        ))),
    }
}

// ---------------------------------------------------------------------------
// Serialize / Deserialize implementations for primitives and std containers.
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error(format!("expected bool, found {}", other.type_name()))),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let wide: i64 = match value {
                    Value::Int(i) => *i,
                    Value::UInt(u) => i64::try_from(*u)
                        .map_err(|_| Error(format!("integer {u} out of range")))?,
                    other => return Err(Error(format!(
                        "expected integer, found {}", other.type_name()))),
                };
                <$t>::try_from(wide).map_err(|_| Error(format!("integer {wide} out of range")))
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = *self as u64;
                match i64::try_from(wide) {
                    Ok(i) => Value::Int(i),
                    Err(_) => Value::UInt(wide),
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let wide: u64 = match value {
                    Value::Int(i) => u64::try_from(*i)
                        .map_err(|_| Error(format!("integer {i} out of range")))?,
                    Value::UInt(u) => *u,
                    other => return Err(Error(format!(
                        "expected integer, found {}", other.type_name()))),
                };
                <$t>::try_from(wide).map_err(|_| Error(format!("integer {wide} out of range")))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        if self.is_finite() {
            Value::Float(*self)
        } else {
            Value::Null
        }
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Float(x) => Ok(*x),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            Value::Null => Ok(f64::NAN),
            other => Err(Error(format!(
                "expected number, found {}",
                other.type_name()
            ))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        (*self as f64).to_value()
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error(format!(
                "expected string, found {}",
                other.type_name()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let s = String::from_value(value)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error(format!("expected single character, found {s:?}"))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error(format!(
                "expected array, found {}",
                other.type_name()
            ))),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = __tuple(value, N)?;
        let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| Error(format!("expected a {N}-element array")))
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = __tuple(value, 2)?;
        Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = __tuple(value, 3)?;
        Ok((
            A::from_value(&items[0])?,
            B::from_value(&items[1])?,
            C::from_value(&items[2])?,
        ))
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys so serialization is deterministic across runs.
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error(format!(
                "expected object, found {}",
                other.type_name()
            ))),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error(format!(
                "expected object, found {}",
                other.type_name()
            ))),
        }
    }
}

impl Serialize for Duration {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("secs".to_string(), self.as_secs().to_value()),
            ("nanos".to_string(), self.subsec_nanos().to_value()),
        ])
    }
}

impl Deserialize for Duration {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let secs = u64::from_value(__field(value, "secs")?)?;
        let nanos = u32::from_value(__field(value, "nanos")?)?;
        Ok(Duration::new(secs, nanos))
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(i32::from_value(&(-5i32).to_value()).unwrap(), -5);
        assert_eq!(u64::from_value(&u64::MAX.to_value()).unwrap(), u64::MAX);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(f64::from_value(&f64::NAN.to_value()).unwrap().is_nan());
        let v: Vec<f64> = vec![1.0, 2.0];
        assert_eq!(Vec::<f64>::from_value(&v.to_value()).unwrap(), v);
        let pair = ("x".to_string(), 2.0f64);
        assert_eq!(<(String, f64)>::from_value(&pair.to_value()).unwrap(), pair);
    }

    #[test]
    fn fixed_size_arrays_roundtrip() {
        let state: [u64; 4] = [1, u64::MAX, 0, 42];
        assert_eq!(<[u64; 4]>::from_value(&state.to_value()).unwrap(), state);
        // A length mismatch is a shape error, not a silent truncation.
        let three = Value::Array(vec![Value::Int(1), Value::Int(2), Value::Int(3)]);
        assert!(<[u64; 4]>::from_value(&three).is_err());
    }

    #[test]
    fn option_and_maps_roundtrip() {
        let some: Option<f64> = Some(3.5);
        let none: Option<f64> = None;
        assert_eq!(Option::<f64>::from_value(&some.to_value()).unwrap(), some);
        assert_eq!(Option::<f64>::from_value(&none.to_value()).unwrap(), none);

        let mut map = BTreeMap::new();
        map.insert("a".to_string(), 1u32);
        map.insert("b".to_string(), 2u32);
        assert_eq!(
            BTreeMap::<String, u32>::from_value(&map.to_value()).unwrap(),
            map
        );
    }

    #[test]
    fn duration_roundtrip() {
        let d = Duration::new(12, 345_678_901);
        assert_eq!(Duration::from_value(&d.to_value()).unwrap(), d);
    }

    #[test]
    fn shape_errors_are_reported() {
        assert!(bool::from_value(&Value::Int(1)).is_err());
        assert!(String::from_value(&Value::Null).is_err());
        assert!(u32::from_value(&Value::Int(-1)).is_err());
        assert!(__field(&Value::Object(vec![]), "missing").is_err());
    }
}
