//! Offline stand-in for `serde_derive`.
//!
//! Generates implementations of the Value-tree `serde::Serialize` /
//! `serde::Deserialize` traits from the vendored `serde` shim. The parser is
//! hand-rolled over `proc_macro::TokenStream` (no `syn`/`quote` available
//! offline) and supports the item shapes present in this workspace:
//!
//! * named structs (including generic type parameters),
//! * tuple structs (single-field tuple structs serialize transparently),
//! * enums with unit, tuple and struct variants (externally tagged),
//! * the `#[serde(skip)]` field attribute: skipped when serializing,
//!   default-constructed when deserializing.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Clone)]
struct Field {
    name: String,
    skip: bool,
}

#[derive(Debug, Clone)]
enum Shape {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

#[derive(Debug, Clone)]
struct Variant {
    name: String,
    shape: Shape,
}

struct Item {
    name: String,
    generics: Vec<String>,
    body: Body,
}

enum Body {
    Struct(Shape),
    Enum(Vec<Variant>),
}

/// Derives the Value-tree `serde::Serialize` implementation.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = generate_serialize(&item);
    code.parse().expect("generated Serialize impl parses")
}

/// Derives the Value-tree `serde::Deserialize` implementation.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = generate_deserialize(&item);
    code.parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;

    skip_attributes(&tokens, &mut pos);
    skip_visibility(&tokens, &mut pos);

    let kind = expect_ident(&tokens, &mut pos);
    assert!(
        kind == "struct" || kind == "enum",
        "expected `struct` or `enum`, found `{kind}`"
    );
    let name = expect_ident(&tokens, &mut pos);
    let generics = parse_generics(&tokens, &mut pos);

    // Skip a `where` clause if present (none in this workspace, but cheap).
    while pos < tokens.len() {
        match &tokens[pos] {
            TokenTree::Group(_) | TokenTree::Punct(_) => break,
            TokenTree::Ident(i) if i.to_string() == "where" => {
                pos += 1;
                while pos < tokens.len()
                    && !matches!(&tokens[pos], TokenTree::Group(g) if g.delimiter() == Delimiter::Brace)
                {
                    pos += 1;
                }
            }
            _ => break,
        }
    }

    let body = if kind == "struct" {
        match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Struct(Shape::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::Struct(Shape::Tuple(count_tuple_fields(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::Struct(Shape::Unit),
            other => panic!("unsupported struct body: {other:?}"),
        }
    } else {
        match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            other => panic!("unsupported enum body: {other:?}"),
        }
    };

    Item {
        name,
        generics,
        body,
    }
}

/// Skips attributes at `pos`, returning `true` if any carried `serde(skip)`.
fn skip_attributes(tokens: &[TokenTree], pos: &mut usize) -> bool {
    let mut skip = false;
    while let Some(TokenTree::Punct(p)) = tokens.get(*pos) {
        if p.as_char() != '#' {
            break;
        }
        *pos += 1;
        if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
            skip |= attribute_is_serde_skip(g.stream());
            *pos += 1;
        }
    }
    skip
}

fn attribute_is_serde_skip(stream: TokenStream) -> bool {
    let mut tokens = stream.into_iter();
    match tokens.next() {
        Some(TokenTree::Ident(i)) if i.to_string() == "serde" => {}
        _ => return false,
    }
    match tokens.next() {
        Some(TokenTree::Group(g)) => g
            .stream()
            .into_iter()
            .any(|tt| matches!(&tt, TokenTree::Ident(i) if i.to_string() == "skip")),
        _ => false,
    }
}

fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if let Some(TokenTree::Ident(i)) = tokens.get(*pos) {
        if i.to_string() == "pub" {
            *pos += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *pos += 1;
                }
            }
        }
    }
}

fn expect_ident(tokens: &[TokenTree], pos: &mut usize) -> String {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(i)) => {
            *pos += 1;
            i.to_string()
        }
        other => panic!("expected identifier, found {other:?}"),
    }
}

/// Parses `<A, B, ...>` type parameters (bounds are ignored; lifetimes and
/// const generics are not used in this workspace).
fn parse_generics(tokens: &[TokenTree], pos: &mut usize) -> Vec<String> {
    match tokens.get(*pos) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {}
        _ => return Vec::new(),
    }
    *pos += 1;
    let mut params = Vec::new();
    let mut depth = 1usize;
    let mut expect_param = true;
    while *pos < tokens.len() && depth > 0 {
        match &tokens[*pos] {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => expect_param = true,
            TokenTree::Ident(i) if expect_param && depth == 1 => {
                params.push(i.to_string());
                expect_param = false;
            }
            _ => {}
        }
        *pos += 1;
    }
    params
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let skip = skip_attributes(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut pos);
        let name = expect_ident(&tokens, &mut pos);
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => panic!("expected `:` after field `{name}`, found {other:?}"),
        }
        // Consume the type: everything until a comma at angle-bracket depth 0.
        let mut angle_depth = 0i32;
        while pos < tokens.len() {
            match &tokens[pos] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    pos += 1;
                    break;
                }
                _ => {}
            }
            pos += 1;
        }
        fields.push(Field { name, skip });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    for (i, tt) in tokens.iter().enumerate() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            // A trailing comma does not introduce a new field.
            TokenTree::Punct(p)
                if p.as_char() == ',' && angle_depth == 0 && i + 1 < tokens.len() =>
            {
                count += 1;
            }
            _ => {}
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attributes(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut pos);
        let shape = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                Shape::Named(parse_named_fields(g.stream()))
            }
            _ => Shape::Unit,
        };
        // Skip the separating comma (and any explicit discriminant — unused).
        while pos < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[pos] {
                if p.as_char() == ',' {
                    pos += 1;
                    break;
                }
            }
            pos += 1;
        }
        variants.push(Variant { name, shape });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn impl_header(item: &Item, trait_name: &str) -> String {
    if item.generics.is_empty() {
        format!("impl ::serde::{trait_name} for {}", item.name)
    } else {
        let bounded: Vec<String> = item
            .generics
            .iter()
            .map(|g| format!("{g}: ::serde::{trait_name}"))
            .collect();
        let plain = item.generics.join(", ");
        format!(
            "impl<{}> ::serde::{trait_name} for {}<{plain}>",
            bounded.join(", "),
            item.name
        )
    }
}

fn generate_serialize(item: &Item) -> String {
    let body = match &item.body {
        Body::Struct(shape) => serialize_struct_body(shape),
        Body::Enum(variants) => serialize_enum_body(variants),
    };
    format!(
        "{} {{ fn to_value(&self) -> ::serde::Value {{ {body} }} }}",
        impl_header(item, "Serialize")
    )
}

fn serialize_struct_body(shape: &Shape) -> String {
    match shape {
        Shape::Unit => "::serde::Value::Object(::std::vec::Vec::new())".to_string(),
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
        }
        Shape::Named(fields) => {
            let items: Vec<String> = fields
                .iter()
                .filter(|f| !f.skip)
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{0}\"), ::serde::Serialize::to_value(&self.{0}))",
                        f.name
                    )
                })
                .collect();
            format!("::serde::Value::Object(::std::vec![{}])", items.join(", "))
        }
    }
}

fn serialize_enum_body(variants: &[Variant]) -> String {
    let arms: Vec<String> = variants
        .iter()
        .map(|v| {
            let name = &v.name;
            match &v.shape {
                Shape::Unit => format!(
                    "Self::{name} => ::serde::Value::Str(::std::string::String::from(\"{name}\"))"
                ),
                Shape::Tuple(n) => {
                    let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                    let payload = if *n == 1 {
                        "::serde::Serialize::to_value(__f0)".to_string()
                    } else {
                        let items: Vec<String> = binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
                    };
                    format!(
                        "Self::{name}({}) => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{name}\"), {payload})])",
                        binders.join(", ")
                    )
                }
                Shape::Named(fields) => {
                    let binders: Vec<String> =
                        fields.iter().map(|f| f.name.clone()).collect();
                    let items: Vec<String> = fields
                        .iter()
                        .filter(|f| !f.skip)
                        .map(|f| {
                            format!(
                                "(::std::string::String::from(\"{0}\"), ::serde::Serialize::to_value({0}))",
                                f.name
                            )
                        })
                        .collect();
                    format!(
                        "Self::{name} {{ {} }} => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{name}\"), ::serde::Value::Object(::std::vec![{}]))])",
                        binders.join(", "),
                        items.join(", ")
                    )
                }
            }
        })
        .collect();
    format!("match self {{ {} }}", arms.join(", "))
}

fn generate_deserialize(item: &Item) -> String {
    let body = match &item.body {
        Body::Struct(shape) => deserialize_struct_body(&item.name, shape),
        Body::Enum(variants) => deserialize_enum_body(&item.name, variants),
    };
    format!(
        "{} {{ fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }} }}",
        impl_header(item, "Deserialize")
    )
}

fn named_field_constructors(fields: &[Field], source: &str) -> String {
    let parts: Vec<String> = fields
        .iter()
        .map(|f| {
            if f.skip {
                format!("{}: ::std::default::Default::default()", f.name)
            } else {
                format!(
                    "{0}: ::serde::Deserialize::from_value(::serde::__field({source}, \"{0}\")?)?",
                    f.name
                )
            }
        })
        .collect();
    parts.join(", ")
}

fn deserialize_struct_body(name: &str, shape: &Shape) -> String {
    match shape {
        Shape::Unit => format!("::std::result::Result::Ok({name})"),
        Shape::Tuple(1) => {
            "::std::result::Result::Ok(Self(::serde::Deserialize::from_value(__v)?))".to_string()
        }
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "let __items = ::serde::__tuple(__v, {n})?; ::std::result::Result::Ok(Self({}))",
                items.join(", ")
            )
        }
        Shape::Named(fields) => {
            format!(
                "::std::result::Result::Ok(Self {{ {} }})",
                named_field_constructors(fields, "__v")
            )
        }
    }
}

fn deserialize_enum_body(name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.shape, Shape::Unit))
        .map(|v| format!("\"{0}\" => ::std::result::Result::Ok(Self::{0})", v.name))
        .collect();
    let data_arms: Vec<String> = variants
        .iter()
        .filter_map(|v| match &v.shape {
            Shape::Unit => None,
            Shape::Tuple(1) => Some(format!(
                "\"{0}\" => ::std::result::Result::Ok(Self::{0}(::serde::Deserialize::from_value(__payload)?))",
                v.name
            )),
            Shape::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                    .collect();
                Some(format!(
                    "\"{0}\" => {{ let __items = ::serde::__tuple(__payload, {n})?; ::std::result::Result::Ok(Self::{0}({1})) }}",
                    v.name,
                    items.join(", ")
                ))
            }
            Shape::Named(fields) => Some(format!(
                "\"{0}\" => ::std::result::Result::Ok(Self::{0} {{ {1} }})",
                v.name,
                named_field_constructors(fields, "__payload")
            )),
        })
        .collect();

    let unknown = format!(
        "::std::result::Result::Err(::serde::Error(::std::format!(\"unknown variant `{{}}` for {name}\", __other)))"
    );
    format!(
        "match __v {{ \
            ::serde::Value::Str(__s) => match __s.as_str() {{ {unit_arms}{unit_sep} __other => {unknown} }}, \
            ::serde::Value::Object(__pairs) if __pairs.len() == 1 => {{ \
                let (__tag, __payload) = &__pairs[0]; \
                match __tag.as_str() {{ {data_arms}{data_sep} __other => {unknown} }} \
            }}, \
            __other_value => ::std::result::Result::Err(::serde::Error(::std::format!(\
                \"expected {name} variant, found {{}}\", __other_value.type_name()))) \
        }}",
        unit_arms = unit_arms.join(", "),
        unit_sep = if unit_arms.is_empty() { "" } else { "," },
        data_arms = data_arms.join(", "),
        data_sep = if data_arms.is_empty() { "" } else { "," },
    )
}
