//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the small, deterministic subset of the `rand 0.8` API the
//! workspace actually uses: [`rngs::StdRng`] seeded through [`SeedableRng`],
//! and the [`Rng`] extension methods `gen`, `gen_range` and `gen_bool`.
//!
//! The generator is xoshiro256++ seeded via SplitMix64 — a high-quality,
//! fast, reproducible PRNG. Streams are *not* bit-compatible with the real
//! `rand` crate, but every consumer in this workspace only relies on
//! seed-determinism, not on a specific stream.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from an RNG (stand-in for the
/// `Standard` distribution of the real crate).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                // Lemire-style unbiased-enough mapping: widen to 128 bits so the
                // modulo bias is below 2^-64 for any span used here.
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + draw as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end - start) as u64 + 1;
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                start + draw as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, i64, i32);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample from empty range");
        let u = f64::sample(rng);
        start + u * (end - start)
    }
}

/// High-level convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one uniformly distributed value (floats sample `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws one value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generator implementations.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl StdRng {
        /// Exports the raw xoshiro256++ state, e.g. for checkpointing a
        /// long-running computation. Restoring the state with
        /// [`StdRng::from_state`] continues the exact same stream.
        pub fn state(&self) -> [u64; 4] {
            self.state
        }

        /// Rebuilds a generator from a state previously exported with
        /// [`StdRng::state`], continuing its stream bit-for-bit.
        ///
        /// The all-zero state is a fixed point of xoshiro256++ (it would only
        /// ever emit zeros) and can never be produced by seeding, so it is
        /// mapped to `seed_from_u64(0)` instead of being used verbatim.
        pub fn from_state(state: [u64; 4]) -> Self {
            if state == [0; 4] {
                return Self::seed_from_u64(0);
            }
            StdRng { state }
        }

        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                state: [
                    Self::splitmix64(&mut sm),
                    Self::splitmix64(&mut sm),
                    Self::splitmix64(&mut sm),
                    Self::splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.state = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<f64>(), c.gen::<f64>());
    }

    #[test]
    fn uniform_f64_covers_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let draws: Vec<f64> = (0..10_000).map(|_| rng.gen::<f64>()).collect();
        assert!(draws.iter().all(|&x| (0.0..1.0).contains(&x)));
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
        assert!(draws.iter().any(|&x| x < 0.01));
        assert!(draws.iter().any(|&x| x > 0.99));
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let i = rng.gen_range(0..5usize);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
        for _ in 0..100 {
            let x = rng.gen_range(2.0f64..=3.0);
            assert!((2.0..=3.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn works_through_unsized_refs() {
        fn draw<R: super::RngCore + ?Sized>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(9);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
