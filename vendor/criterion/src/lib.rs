//! Offline stand-in for `criterion`.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides a small wall-clock benchmark harness with the same spelling the
//! workspace's benches use: [`Criterion`], [`Bencher::iter`],
//! [`criterion_group!`] and [`criterion_main!`]. There is no statistical
//! analysis — each benchmark is warmed up, then timed for a configured
//! measurement window, and the mean time per iteration is printed.
//!
//! Passing `--test` (as `cargo test --benches` does) skips measurement and
//! runs each benchmark body once, so benches double as smoke tests.

#![warn(missing_docs)]

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimising a benchmark input/output away.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Benchmark driver handed to `bench_function` closures.
pub struct Bencher<'a> {
    config: &'a Criterion,
    name: String,
}

impl Bencher<'_> {
    /// Times `routine`, printing the mean wall-clock time per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.config.test_mode {
            black_box(routine());
            println!("test {} ... ok", self.name);
            return;
        }

        // Warm-up: run until the warm-up window elapses (at least once).
        let warm_up_start = Instant::now();
        let mut warm_up_iters = 0u64;
        while warm_up_start.elapsed() < self.config.warm_up_time || warm_up_iters == 0 {
            black_box(routine());
            warm_up_iters += 1;
        }
        let per_iter = warm_up_start.elapsed().as_secs_f64() / warm_up_iters as f64;

        // Measurement: fixed iteration count sized to the measurement window,
        // bounded below by the sample size.
        let target = self.config.measurement_time.as_secs_f64();
        let iterations = ((target / per_iter.max(1e-9)) as u64)
            .max(self.config.sample_size as u64)
            .max(1);
        let start = Instant::now();
        for _ in 0..iterations {
            black_box(routine());
        }
        let elapsed = start.elapsed();
        let mean = elapsed.as_secs_f64() / iterations as f64;
        println!(
            "{:<50} time: [{}] ({} iterations)",
            self.name,
            format_time(mean),
            iterations
        );
    }
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.4} s")
    } else if seconds >= 1e-3 {
        format!("{:.4} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.4} µs", seconds * 1e6)
    } else {
        format!("{:.4} ns", seconds * 1e9)
    }
}

/// Benchmark configuration and entry point (stand-in for `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Sets the minimum number of measured iterations.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Sets the warm-up window.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement window.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        name: impl Into<String>,
        mut f: F,
    ) {
        let mut bencher = Bencher {
            config: self,
            name: name.into(),
        };
        f(&mut bencher);
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named group of benchmarks (stand-in for `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(&mut self, name: impl Into<String>, f: F) {
        let full = format!("{}/{}", self.name, name.into());
        self.criterion.bench_function(full, f);
    }

    /// Overrides the minimum measured iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n;
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function (both criterion spellings supported).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        let mut runs = 0u64;
        c.bench_function("shim/self_test", |b| b.iter(|| runs += 1));
        assert!(runs >= 3, "warm-up + measurement ran: {runs}");
    }

    #[test]
    fn groups_prefix_names() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(1));
        let mut group = c.benchmark_group("g");
        let mut hit = false;
        group.bench_function("inner", |b| b.iter(|| hit = true));
        group.finish();
        assert!(hit);
    }
}
