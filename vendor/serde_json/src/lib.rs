//! Offline stand-in for `serde_json`.
//!
//! Renders the vendored `serde` shim's [`Value`] tree to JSON text and parses
//! it back. Supports the full JSON grammar (objects, arrays, strings with
//! escapes, numbers, booleans, null); non-finite floats serialize as `null`.

#![warn(missing_docs)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// JSON serialization / parse error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    fn new(message: impl fmt::Display) -> Self {
        Error(message.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

/// Serializes a value to compact JSON text.
///
/// # Errors
///
/// Infallible for the shapes this workspace produces; the `Result` mirrors
/// the real `serde_json` signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to human-readable, two-space-indented JSON text.
///
/// # Errors
///
/// Infallible for the shapes this workspace produces.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any [`Deserialize`] type.
///
/// # Errors
///
/// Returns an error on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                let text = format!("{x}");
                out.push_str(&text);
                // Keep floats distinguishable from integers on re-parse.
                if !text.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * level));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(text: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = parser.value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_whitespace(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_whitespace();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of input"))
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        let found = self.peek()?;
        if found != byte {
            return Err(Error::new(format!(
                "expected `{}` at offset {}, found `{}`",
                byte as char, self.pos, found as char
            )));
        }
        self.pos += 1;
        Ok(())
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => self.string().map(Value::Str),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::new(format!(
                "unexpected character `{}` at offset {}",
                other as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at offset {}, found `{}`",
                        self.pos, other as char
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            pairs.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at offset {}, found `{}`",
                        self.pos, other as char
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&b) = rest.first() else {
                return Err(Error::new("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    let esc = *rest
                        .get(1)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 2;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = text.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_roundtrip_through_text() {
        let value = Value::Object(vec![
            ("name".to_string(), Value::Str("ota \"1\"\n".to_string())),
            ("gain".to_string(), Value::Float(50.25)),
            ("count".to_string(), Value::Int(-3)),
            ("big".to_string(), Value::UInt(u64::MAX)),
            ("flag".to_string(), Value::Bool(true)),
            ("missing".to_string(), Value::Null),
            (
                "list".to_string(),
                Value::Array(vec![Value::Int(1), Value::Float(2.5)]),
            ),
            ("empty".to_string(), Value::Array(vec![])),
        ]);
        let compact = to_string(&value).unwrap();
        assert_eq!(parse_value(&compact).unwrap(), value);
        let pretty = to_string_pretty(&value).unwrap();
        assert_eq!(parse_value(&pretty).unwrap(), value);
        assert!(pretty.contains('\n'));
    }

    #[test]
    fn floats_stay_floats() {
        let text = to_string(&Value::Float(2.0)).unwrap();
        assert_eq!(text, "2.0");
        assert_eq!(parse_value(&text).unwrap(), Value::Float(2.0));
        // Shortest-roundtrip float formatting is exact.
        let tricky = 0.1 + 0.2;
        let back = parse_value(&to_string(&Value::Float(tricky)).unwrap()).unwrap();
        assert_eq!(back, Value::Float(tricky));
    }

    #[test]
    fn scientific_notation_parses() {
        assert_eq!(parse_value("1e9").unwrap(), Value::Float(1e9));
        assert_eq!(parse_value("-2.5E-3").unwrap(), Value::Float(-2.5e-3));
    }

    #[test]
    fn typed_roundtrip_via_traits() {
        let input: Vec<(String, f64)> = vec![("w1".to_string(), 2e-5), ("l1".to_string(), 1e-6)];
        let json = to_string(&input).unwrap();
        let back: Vec<(String, f64)> = from_str(&json).unwrap();
        assert_eq!(back, input);
    }

    #[test]
    fn malformed_input_errors() {
        assert!(parse_value("{").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("nul").is_err());
        assert!(parse_value("1 2").is_err());
        assert!(from_str::<bool>("3").is_err());
    }
}
