//! Offline stand-in for `proptest`.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides deterministic random-case property testing with the same spelling
//! the workspace's tests use:
//!
//! * the [`proptest!`] macro with `#![proptest_config(...)]` and
//!   `name(arg in strategy, ...)` test functions,
//! * range strategies (`0.0f64..1.0`, `2usize..20`, `0u64..10_000`),
//! * tuple strategies, and [`collection::vec`] with a fixed size or a size
//!   range,
//! * [`prop_assert!`] / [`prop_assert_eq!`] that report the failing case.
//!
//! Unlike the real proptest there is no shrinking: on failure the macro
//! panics with the case index and seed so the case can be replayed by
//! rerunning the test (generation is deterministic per test name).

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, RngCore};
use std::ops::Range;

/// How values are drawn for one test-case argument.
pub trait Strategy {
    /// The concrete value type this strategy produces.
    type Value;

    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(f64, usize, u64, u32, i64, i32);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// Strategies over collections.
pub mod collection {
    use super::Strategy;
    use rand::{Rng, RngCore};
    use std::ops::Range;

    /// Length specification for [`vec()`]: a fixed size or a size range.
    pub trait SizeRange {
        /// Draws a length.
        fn sample_len<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len<R: RngCore + ?Sized>(&self, _rng: &mut R) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn sample_len<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// A strategy producing `Vec`s of values drawn from an element strategy.
    pub struct VecStrategy<S, L> {
        element: S,
        length: L,
    }

    /// Builds a `Vec` strategy from an element strategy and a size spec.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, length: L) -> VecStrategy<S, L> {
        VecStrategy { element, length }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> Self::Value {
            let len = self.length.sample_len(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Test-runner configuration and error types.
pub mod test_runner {
    /// Number of random cases to run per property.
    #[derive(Debug, Clone, Copy)]
    pub struct Config {
        /// Cases per property test.
        pub cases: u32,
    }

    impl Config {
        /// Creates a configuration running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// A failed property assertion.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.0)
        }
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Derives a deterministic per-test seed from the test's name.
pub fn seed_from_name(name: &str) -> u64 {
    // FNV-1a, stable across runs and platforms.
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Makes a fresh deterministic RNG for a named test.
pub fn rng_for(name: &str) -> StdRng {
    <StdRng as rand::SeedableRng>::seed_from_u64(seed_from_name(name))
}

/// Asserts a condition inside a [`proptest!`] body, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        // Bind first so the negation acts on a plain bool regardless of the
        // condition's shape (avoids partial-ordering lints in expansions).
        let __prop_assert_holds: bool = $cond;
        if !__prop_assert_holds {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Declares deterministic random-case property tests.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($config:expr)] $($rest:tt)* ) => {
        $crate::__proptest_functions! { config = $config; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_functions! {
            config = $crate::test_runner::Config::default();
            $($rest)*
        }
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_functions {
    ( config = $config:expr; ) => {};
    (
        config = $config:expr;
        $(#[$meta:meta])*
        fn $name:ident( $( $arg:ident in $strategy:expr ),* $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let mut rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $( let $arg = $crate::Strategy::sample(&$strategy, &mut rng); )*
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(error) = outcome {
                    panic!(
                        "proptest case {}/{} failed: {}\n(inputs: {})",
                        case + 1,
                        config.cases,
                        error,
                        concat!($(stringify!($arg), " " ,)*)
                    );
                }
            }
        }
        $crate::__proptest_functions! { config = $config; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 0.0f64..1.0, n in 2usize..20) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((2..20).contains(&n));
        }

        #[test]
        fn vectors_respect_size_specs(
            fixed in collection::vec(0.0f64..1.0, 8),
            ranged in collection::vec(0.0f64..1.0, 1..6),
            pairs in collection::vec((0.0f64..1.0, 0.0f64..1.0), 3..10),
        ) {
            prop_assert_eq!(fixed.len(), 8);
            prop_assert!((1..6).contains(&ranged.len()));
            prop_assert!((3..10).contains(&pairs.len()));
            prop_assert!(pairs.iter().all(|(a, b)| *a < 1.0 && *b < 1.0));
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let mut a = crate::rng_for("some::test");
        let mut b = crate::rng_for("some::test");
        let s = 0.0f64..1.0;
        assert_eq!(Strategy::sample(&s, &mut a), Strategy::sample(&s, &mut b));
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics_with_case_info() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn inner(x in 0.0f64..1.0) {
                prop_assert!(x < -1.0, "x = {}", x);
            }
        }
        inner();
    }
}
