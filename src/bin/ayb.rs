//! `ayb` — launch, interrupt, resume and inspect durable model-generation
//! runs from the shell.
//!
//! ```text
//! ayb run    [--store DIR] [--id RUN_ID] [--scale reduced|demo|paper]
//!            [--seed N] [--optimizer wbga|nsga2|random] [--threads N]
//!            [--early-stop K] [--halt-after N] [--quiet]
//! ayb resume [--store DIR] RUN_ID [--halt-after N] [--quiet]
//! ayb list   [--store DIR]
//! ayb show   [--store DIR] RUN_ID [--digest]
//! ```
//!
//! Every run lives under `<store>/runs/<run_id>/` with a manifest, one
//! checkpoint per optimiser generation and (once completed) the final
//! result. A run killed at any point — or deliberately interrupted with
//! `--halt-after N` — is continued by `ayb resume RUN_ID` and produces a
//! result identical to the uninterrupted run (compare with
//! `ayb show RUN_ID --digest`).
//!
//! The store directory defaults to `$AYB_STORE` or `./ayb-store`.
//! Argument parsing is plain `std` — no CLI dependencies.

use ayb_core::{AybError, FlowBuilder, FlowConfig, FlowObserver, FlowResult, FlowStage};
use ayb_moo::{CheckpointError, EarlyStop, OptimizerConfig};
use ayb_store::{Manifest, RunStatus, Store};
use std::path::Path;
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "\
ayb — durable, resumable model-generation runs (DATE'08 flow)

USAGE:
    ayb run    [--store DIR] [--id RUN_ID] [--scale reduced|demo|paper]
               [--seed N] [--optimizer wbga|nsga2|random] [--threads N]
               [--early-stop K] [--halt-after N] [--quiet]
    ayb resume [--store DIR] RUN_ID [--halt-after N] [--quiet]
    ayb list   [--store DIR]
    ayb show   [--store DIR] RUN_ID [--digest]

OPTIONS:
    --store DIR      Store directory (default: $AYB_STORE or ./ayb-store)
    --id RUN_ID      Run id to create (default: next sequential run-NNNN)
    --scale S        Flow scale: reduced (default, seconds), demo, paper
    --seed N         End-to-end deterministic seed (optimiser + Monte Carlo)
    --optimizer O    wbga (default, the paper's), nsga2, random
    --threads N      Worker threads for batch circuit evaluation
    --early-stop K   Stop after K generations without front improvement
    --halt-after N   Interrupt the run after N checkpoints (simulated crash)
    --digest         Print only the result's determinism digest
    --quiet          Suppress progress output
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    let parsed = match CliArgs::parse(rest) {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("error: {message}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    if parsed.help {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let outcome = match command.as_str() {
        "run" => cmd_run(&parsed),
        "resume" => cmd_resume(&parsed),
        "list" => cmd_list(&parsed),
        "show" => cmd_show(&parsed),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

// ---------------------------------------------------------------------------
// Argument parsing (std-only)
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct CliArgs {
    positional: Vec<String>,
    store: Option<String>,
    id: Option<String>,
    scale: Option<String>,
    seed: Option<u64>,
    optimizer: Option<String>,
    threads: Option<usize>,
    early_stop: Option<usize>,
    halt_after: Option<usize>,
    digest: bool,
    quiet: bool,
    help: bool,
}

impl CliArgs {
    fn parse(args: &[String]) -> Result<CliArgs, String> {
        let mut parsed = CliArgs::default();
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            let mut value_of = |flag: &str| {
                iter.next()
                    .cloned()
                    .ok_or_else(|| format!("{flag} expects a value"))
            };
            match arg.as_str() {
                "--store" => parsed.store = Some(value_of("--store")?),
                "--id" => parsed.id = Some(value_of("--id")?),
                "--scale" => parsed.scale = Some(value_of("--scale")?),
                "--seed" => parsed.seed = Some(parse_number(&value_of("--seed")?, "--seed")?),
                "--optimizer" => parsed.optimizer = Some(value_of("--optimizer")?),
                "--threads" => {
                    parsed.threads = Some(parse_number(&value_of("--threads")?, "--threads")?)
                }
                "--early-stop" => {
                    parsed.early_stop =
                        Some(parse_number(&value_of("--early-stop")?, "--early-stop")?)
                }
                "--halt-after" => {
                    parsed.halt_after =
                        Some(parse_number(&value_of("--halt-after")?, "--halt-after")?)
                }
                "--digest" => parsed.digest = true,
                "--quiet" => parsed.quiet = true,
                "--help" | "-h" => parsed.help = true,
                flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
                positional => parsed.positional.push(positional.to_string()),
            }
        }
        Ok(parsed)
    }

    fn open_store(&self) -> Result<Store, String> {
        let dir = self
            .store
            .clone()
            .or_else(|| std::env::var("AYB_STORE").ok())
            .unwrap_or_else(|| "./ayb-store".to_string());
        Store::open(dir).map_err(|e| e.to_string())
    }

    fn required_run_id(&self) -> Result<&str, String> {
        match self.positional.as_slice() {
            [id] => Ok(id),
            [] => Err("expected a RUN_ID argument".to_string()),
            _ => Err("expected exactly one RUN_ID argument".to_string()),
        }
    }
}

fn parse_number<T: std::str::FromStr>(text: &str, flag: &str) -> Result<T, String> {
    text.parse()
        .map_err(|_| format!("{flag} expects a number, got `{text}`"))
}

// ---------------------------------------------------------------------------
// Progress output
// ---------------------------------------------------------------------------

/// Prints stage transitions and persisted checkpoints to stderr.
struct CliObserver;

impl FlowObserver for CliObserver {
    fn on_stage_start(&mut self, stage: FlowStage) {
        eprintln!("[ayb] stage {} started", stage.name());
    }

    fn on_stage_complete(&mut self, stage: FlowStage, elapsed: Duration) {
        eprintln!(
            "[ayb] stage {} completed in {:.2}s",
            stage.name(),
            elapsed.as_secs_f64()
        );
    }

    fn on_checkpoint_written(&mut self, generation: usize, _path: &Path) {
        eprintln!("[ayb] checkpoint written for generation {generation}");
    }
}

// ---------------------------------------------------------------------------
// Commands
// ---------------------------------------------------------------------------

fn cmd_run(args: &CliArgs) -> Result<(), String> {
    if !args.positional.is_empty() {
        return Err("`ayb run` takes no positional arguments".to_string());
    }
    let store = args.open_store()?;

    let mut config = match args.scale.as_deref().unwrap_or("reduced") {
        "reduced" => FlowConfig::reduced(),
        "demo" => FlowConfig::demo_scale(),
        "paper" => FlowConfig::paper_scale(),
        other => return Err(format!("unknown scale `{other}` (reduced|demo|paper)")),
    };
    if let Some(threads) = args.threads {
        config.threads = threads.max(1);
    }
    if let Some(patience) = args.early_stop {
        config.ga.early_stop = Some(EarlyStop::after_stalled_generations(patience));
    }

    let optimizer = match args.optimizer.as_deref().unwrap_or("wbga") {
        "wbga" => OptimizerConfig::Wbga(config.ga),
        "nsga2" => OptimizerConfig::Nsga2(config.ga),
        "random" | "random_search" => OptimizerConfig::RandomSearch {
            budget: config.ga.evaluation_budget(),
            seed: config.ga.seed,
        },
        other => return Err(format!("unknown optimizer `{other}` (wbga|nsga2|random)")),
    };

    let run_id = match &args.id {
        Some(id) => id.clone(),
        None => store.next_run_id().map_err(|e| e.to_string())?,
    };
    println!("run_id: {run_id}");

    let mut builder = FlowBuilder::new(config)
        .with_optimizer(optimizer)
        .with_store(&store)
        .with_run_id(&run_id);
    if let Some(seed) = args.seed {
        builder = builder.with_seed(seed);
    }
    if !args.quiet {
        builder = builder.with_observer(CliObserver);
    }
    if let Some(count) = args.halt_after {
        builder = builder.halt_after_checkpoints(count);
    }

    // Read the configuration back from the builder: `with_seed` reseeds the
    // optimiser and the Monte Carlo engine in there.
    let config = builder.config().clone();
    finish_flow(builder.run(), &store, &run_id, &config, args.quiet)
}

fn cmd_resume(args: &CliArgs) -> Result<(), String> {
    let store = args.open_store()?;
    let run_id = args.required_run_id()?.to_string();

    let manifest: Manifest<FlowConfig> = store
        .run(&run_id)
        .and_then(|handle| handle.manifest())
        .map_err(|e| e.to_string())?;
    if manifest.status == RunStatus::Completed {
        return Err(format!(
            "run `{run_id}` is already completed; see `ayb show {run_id}`"
        ));
    }

    let mut builder = FlowBuilder::resume(&store, &run_id).map_err(|e| e.to_string())?;
    if !args.quiet {
        let resumed_from = store
            .run(&run_id)
            .and_then(|handle| handle.checkpoint_generations())
            .map_err(|e| e.to_string())?;
        match resumed_from.last() {
            Some(generation) => eprintln!("[ayb] resuming {run_id} from generation {generation}"),
            None => eprintln!("[ayb] no checkpoints for {run_id}; restarting from scratch"),
        }
        builder = builder.with_observer(CliObserver);
    }
    if let Some(count) = args.halt_after {
        builder = builder.halt_after_checkpoints(count);
    }

    finish_flow(builder.run(), &store, &run_id, &manifest.flow, args.quiet)
}

/// Shared tail of `run` and `resume`: report completion, an intentional
/// halt, or a failure.
fn finish_flow(
    outcome: Result<FlowResult, AybError>,
    store: &Store,
    run_id: &str,
    config: &FlowConfig,
    quiet: bool,
) -> Result<(), String> {
    match outcome {
        Ok(result) => {
            let summary = result.summary(config);
            println!("status: completed");
            println!("evaluations: {}", summary.evaluation_samples);
            println!("pareto_points: {}", summary.pareto_points);
            println!("analysed_points: {}", summary.analysed_pareto_points);
            println!("cpu_time_seconds: {:.2}", summary.cpu_time_seconds);
            println!("digest: {:016x}", result.determinism_digest());
            if !quiet {
                eprintln!("[ayb] inspect with: ayb show {run_id}");
            }
            Ok(())
        }
        Err(AybError::Checkpoint(CheckpointError::Halted { generation })) => {
            let checkpoints = store
                .run(run_id)
                .and_then(|handle| handle.checkpoint_generations())
                .map(|generations| generations.len())
                .unwrap_or(0);
            println!("status: interrupted");
            println!("halted_at_generation: {generation}");
            println!("checkpoints: {checkpoints}");
            if !quiet {
                eprintln!("[ayb] continue with: ayb resume {run_id}");
            }
            Ok(())
        }
        Err(error) => Err(error.to_string()),
    }
}

fn cmd_list(args: &CliArgs) -> Result<(), String> {
    let store = args.open_store()?;
    let ids = store.run_ids().map_err(|e| e.to_string())?;
    if ids.is_empty() {
        println!("no runs in {}", store.root().display());
        return Ok(());
    }
    println!(
        "{:<16} {:<12} {:<14} {:>10} {:>12} {:>7}",
        "RUN", "STATUS", "OPTIMIZER", "SEED", "CHECKPOINTS", "RESULT"
    );
    for id in ids {
        // A process killed between creating the run directory and writing
        // the manifest leaves an unreadable run behind; list it instead of
        // failing the whole listing.
        let row = store.run(&id).and_then(|handle| {
            let manifest: Manifest<FlowConfig> = handle.manifest()?;
            let checkpoints = handle.checkpoint_generations()?;
            Ok((manifest, checkpoints, handle.has_result()))
        });
        match row {
            Ok((manifest, checkpoints, has_result)) => println!(
                "{:<16} {:<12} {:<14} {:>10} {:>12} {:>7}",
                id,
                manifest.status.as_str(),
                manifest.optimizer.name(),
                manifest.seed,
                checkpoints.len(),
                if has_result { "yes" } else { "no" }
            ),
            Err(error) => println!("{id:<16} <unreadable: {error}>"),
        }
    }
    Ok(())
}

fn cmd_show(args: &CliArgs) -> Result<(), String> {
    let store = args.open_store()?;
    let run_id = args.required_run_id()?;
    let handle = store.run(run_id).map_err(|e| e.to_string())?;
    let manifest: Manifest<FlowConfig> = handle.manifest().map_err(|e| e.to_string())?;

    if args.digest {
        let result: FlowResult = handle.load_result().map_err(|e| e.to_string())?;
        println!("{:016x}", result.determinism_digest());
        return Ok(());
    }

    println!("run_id: {}", manifest.run_id);
    println!("status: {}", manifest.status);
    println!("seed: {}", manifest.seed);
    println!("optimizer: {}", manifest.optimizer.name());
    println!(
        "evaluation_budget: {}",
        manifest.optimizer.evaluation_budget()
    );
    match manifest.optimizer.early_stop() {
        Some(early_stop) => println!("early_stop_patience: {}", early_stop.effective_patience()),
        None => println!("early_stop_patience: none"),
    }
    println!(
        "ga: {}x{} (pop x gens)",
        manifest.flow.ga.population_size, manifest.flow.ga.generations
    );
    println!("mc_samples: {}", manifest.flow.monte_carlo.samples);
    println!("created_unix: {}", manifest.created_unix);
    println!("updated_unix: {}", manifest.updated_unix);

    let checkpoints = handle.checkpoint_generations().map_err(|e| e.to_string())?;
    match (checkpoints.first(), checkpoints.last()) {
        (Some(first), Some(last)) => {
            println!("checkpoints: {} (gen {first}..{last})", checkpoints.len())
        }
        _ => println!("checkpoints: 0"),
    }

    if handle.has_result() {
        let result: FlowResult = handle.load_result().map_err(|e| e.to_string())?;
        let summary = result.summary(&manifest.flow);
        println!("result: present");
        println!("  evaluations: {}", summary.evaluation_samples);
        println!("  pareto_points: {}", summary.pareto_points);
        println!("  analysed_points: {}", summary.analysed_pareto_points);
        println!("  cpu_time_seconds: {:.2}", summary.cpu_time_seconds);
        println!("  digest: {:016x}", result.determinism_digest());
    } else {
        println!("result: none (resume with `ayb resume {run_id}`)");
    }
    Ok(())
}
