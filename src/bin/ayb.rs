//! `ayb` — launch, queue, serve, resume and inspect durable model-generation
//! runs from the shell.
//!
//! ```text
//! ayb run    [--store DIR] [--id RUN_ID] [--scale reduced|demo|paper]
//!            [--seed N] [--optimizer wbga|nsga2|random] [--threads N]
//!            [--early-stop K] [--solver dense|sparse] [--sharded]
//!            [--shard-size N] [--variation-batch N]
//!            [--transport tcp://HOST:PORT] [--halt-after N] [--quiet]
//! ayb resume [--store DIR] RUN_ID [--halt-after N] [--quiet]
//! ayb submit [--store DIR] [--id RUN_ID] [--scale S] [--seed N]
//!            [--optimizer O] [--threads N] [--early-stop K]
//!            [--solver dense|sparse] [--sharded] [--shard-size N]
//!            [--variation-batch N] [--transport tcp://HOST:PORT]
//! ayb serve  [--store DIR] [--workers N] [--drain] [--shards-only]
//!            [--transport tcp://HOST:PORT] [--poll-ms MS] [--quiet]
//! ayb serve-http [--store DIR] [--bind ADDR] [--workers N]
//!            [--max-connections N] [--default-quota QUEUED:RUNNING]
//!            [--tenant-quota NAME=QUEUED:RUNNING] [--tenant-weight NAME=W]
//!            [--poll-ms MS] [--quiet]
//! ayb coordinate [--bind ADDR] [--poll-ms MS] [--quiet]
//! ayb status [--store DIR] [RUN_ID]
//! ayb trace  [--store DIR] RUN_ID
//! ayb top    [--store DIR] [--transport tcp://HOST:PORT] [--watch SECS]
//! ayb list   [--store DIR]
//! ayb show   [--store DIR] RUN_ID [--digest]
//! ayb gc     [--store DIR] [--keep-checkpoints K] [--sweep-all]
//! ayb cache  [--store DIR] [status|gc] [--max-age-hours H]
//! ```
//!
//! Every run lives under `<store>/runs/<run_id>/` with a manifest, one
//! checkpoint per optimiser generation and (once completed) the final
//! result. A run killed at any point — or deliberately interrupted with
//! `--halt-after N` — is continued by `ayb resume RUN_ID` and produces a
//! result identical to the uninterrupted run (compare with
//! `ayb show RUN_ID --digest`).
//!
//! `ayb submit` queues runs without executing them; `ayb serve` drives a
//! worker pool over the same store (any number of server processes may share
//! it — claims keep every run exactly-once). A SIGKILLed server loses
//! nothing: restart it and the interrupted runs resume from their latest
//! checkpoints. `ayb status` shows the queue, `ayb gc` sweeps stale temp
//! files and prunes old checkpoints.
//!
//! `ayb serve-http` is the service plane (the `ayb_svc` crate): a
//! multi-tenant HTTP/JSON front door over the same store. Clients submit
//! runs with `POST /v1/runs` (tenant from the `x-ayb-tenant` header), poll
//! `GET /v1/runs/{id}`, fetch results, cancel queued runs, and scrape
//! `GET /v1/metrics`. Identical submissions deduplicate to one run
//! (content-addressed digests), per-tenant quotas answer 429, and the
//! embedded worker pool dispatches weighted round-robin across tenants
//! instead of global FIFO. The `ayb-load` binary drives it for scale tests.
//!
//! `ayb coordinate` runs the network shard coordinator (the `ayb_net`
//! crate): a sharded flow submitted with `--transport tcp://HOST:PORT`
//! publishes its shards to the coordinator instead of the store's on-disk
//! plane, and any `ayb serve --transport tcp://HOST:PORT` worker — on any
//! machine, with any (even empty) local store — services them. Coordinator,
//! submitter and workers need no shared filesystem.
//!
//! Every durable run also appends structured telemetry to
//! `runs/<run_id>/events.jsonl` (the `ayb_obs` event layer). `ayb trace`
//! reconstructs a run's timeline from it — stages, checkpoints, shard
//! claim → fence → steal chains — and `ayb top` polls the store (and, with
//! `--transport`, a live coordinator's metrics) for a fleet-wide view.
//! Progress output on stderr goes through the same layer and is filtered
//! by `AYB_LOG` (debug|info|warn|error, default info).
//!
//! The store directory defaults to `$AYB_STORE` or `./ayb-store`.
//! Argument parsing is plain `std` — no CLI dependencies.

use ayb_core::{AybError, FlowBuilder, FlowConfig, FlowObserver, FlowResult, FlowStage};
use ayb_jobs::{JobServer, JobServerConfig};
use ayb_moo::{CheckpointError, EarlyStop, OptimizerConfig};
use ayb_net::{Coordinator, CoordinatorConfig, TcpTransport};
use ayb_obs::{kind as event_kind, log_to_stderr, Event, Histogram, Severity, StderrSink};
use ayb_store::{ClaimHealth, Manifest, ResultCache, RunStatus, Store};
use ayb_svc::{SvcConfig, SvcServer, TenantQuota};
use std::path::Path;
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "\
ayb — durable, resumable model-generation runs (DATE'08 flow)

USAGE:
    ayb run    [--store DIR] [--id RUN_ID] [--scale reduced|demo|paper]
               [--seed N] [--optimizer wbga|nsga2|random] [--threads N]
               [--early-stop K] [--solver dense|sparse] [--sharded]
               [--shard-size N] [--variation-batch N]
               [--transport tcp://HOST:PORT] [--halt-after N] [--quiet]
    ayb resume [--store DIR] RUN_ID [--halt-after N] [--quiet]
    ayb submit [--store DIR] [--id RUN_ID] [--scale S] [--seed N]
               [--optimizer O] [--threads N] [--early-stop K]
               [--solver dense|sparse] [--sharded] [--shard-size N]
               [--variation-batch N] [--transport tcp://HOST:PORT]
    ayb serve  [--store DIR] [--workers N] [--drain] [--shards-only]
               [--transport tcp://HOST:PORT] [--poll-ms MS] [--quiet]
    ayb serve-http [--store DIR] [--bind ADDR] [--workers N]
               [--max-connections N] [--default-quota QUEUED:RUNNING]
               [--tenant-quota NAME=QUEUED:RUNNING] [--tenant-weight NAME=W]
               [--poll-ms MS] [--quiet]
    ayb coordinate [--bind ADDR] [--poll-ms MS] [--quiet]
    ayb status [--store DIR] [RUN_ID]
    ayb trace  [--store DIR] RUN_ID
    ayb top    [--store DIR] [--transport tcp://HOST:PORT] [--watch SECS]
    ayb list   [--store DIR]
    ayb show   [--store DIR] RUN_ID [--digest]
    ayb gc     [--store DIR] [--keep-checkpoints K] [--sweep-all]
    ayb cache  [--store DIR] [status|gc] [--max-age-hours H]

OPTIONS:
    --store DIR           Store directory (default: $AYB_STORE or ./ayb-store)
    --id RUN_ID           Run id to create (default: next sequential run-NNNN)
    --scale S             Flow scale: reduced (default, seconds), demo, paper
    --seed N              End-to-end deterministic seed (optimiser + Monte Carlo)
    --optimizer O         wbga (default, the paper's), nsga2, random
    --threads N           Worker threads for batch circuit evaluation
    --early-stop K        Stop after K generations without front improvement
    --solver S            Linear-solver backend for the sim kernel: dense
                          (default) or sparse; recorded in the run manifest
    --sharded             Evaluate populations through the store's shard data
                          plane (any `ayb serve` process sharing the store helps)
    --shard-size N        Candidates per shard (default: scale-dependent)
    --variation-batch N   Monte Carlo points per variation shard task
                          (default: scale-dependent; digest-neutral)
    --transport URL       tcp://HOST:PORT of an `ayb coordinate` process: run
                          and submit publish their shards there (no shared
                          filesystem needed); serve also services them
    --bind ADDR           coordinate: address to listen on (default
                          127.0.0.1:4710; port 0 picks an ephemeral port);
                          serve-http: likewise (default 127.0.0.1:4780)
    --max-connections N   serve-http: open-connection cap; further clients
                          get an immediate 503 (default 256)
    --default-quota Q:R   serve-http: per-tenant quota for tenants without an
                          override — Q max queued runs (429 beyond it), R max
                          concurrently running (0 = unlimited; default 0:0)
    --tenant-quota NAME=Q:R  serve-http: quota override for tenant NAME
                          (repeatable)
    --tenant-weight NAME=W   serve-http: scheduler weight for tenant NAME in
                          the weighted round-robin (default 1; repeatable)
    --halt-after N        Interrupt the run after N checkpoints (simulated crash)
    --workers N           Job-server worker threads (default 2)
    --drain               Serve until the queue is empty, then exit
    --shards-only         Never claim whole runs; only service shard
                          evaluation tasks (pure evaluation worker)
    --poll-ms MS          Queue poll interval in milliseconds (default 200)
    --watch SECS          top: refresh the fleet view every SECS seconds
    --keep-checkpoints K  gc: checkpoints to keep per completed run (default 1)
    --sweep-all           gc: remove *.tmp files regardless of age
    --max-age-hours H     cache gc: also evict entries older than H hours
                          (default: only entries whose result is gone)
    --digest              Print only the result's determinism digest
    --quiet               Suppress progress output

Progress lines on stderr are structured events; set AYB_LOG=debug|info|warn|
error (default info) to change how much is shown. Durable runs persist the
same events to runs/<RUN_ID>/events.jsonl for `ayb trace`.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    let parsed = match CliArgs::parse(rest) {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("error: {message}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    if parsed.help {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let outcome = match command.as_str() {
        "run" => cmd_run(&parsed),
        "resume" => cmd_resume(&parsed),
        "submit" => cmd_submit(&parsed),
        "serve" => cmd_serve(&parsed),
        "serve-http" => cmd_serve_http(&parsed),
        "coordinate" => cmd_coordinate(&parsed),
        "status" => cmd_status(&parsed),
        "trace" => cmd_trace(&parsed),
        "top" => cmd_top(&parsed),
        "list" => cmd_list(&parsed),
        "show" => cmd_show(&parsed),
        "gc" => cmd_gc(&parsed),
        "cache" => cmd_cache(&parsed),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

// ---------------------------------------------------------------------------
// Argument parsing (std-only)
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct CliArgs {
    positional: Vec<String>,
    store: Option<String>,
    id: Option<String>,
    scale: Option<String>,
    seed: Option<u64>,
    optimizer: Option<String>,
    threads: Option<usize>,
    early_stop: Option<usize>,
    solver: Option<String>,
    variation_batch: Option<usize>,
    halt_after: Option<usize>,
    workers: Option<usize>,
    drain: bool,
    sharded: bool,
    shard_size: Option<usize>,
    shards_only: bool,
    transport: Option<String>,
    bind: Option<String>,
    max_connections: Option<usize>,
    default_quota: Option<String>,
    tenant_quotas: Vec<String>,
    tenant_weights: Vec<String>,
    poll_ms: Option<u64>,
    keep_checkpoints: Option<usize>,
    sweep_all: bool,
    max_age_hours: Option<u64>,
    watch: Option<u64>,
    digest: bool,
    quiet: bool,
    help: bool,
}

impl CliArgs {
    fn parse(args: &[String]) -> Result<CliArgs, String> {
        let mut parsed = CliArgs::default();
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            let mut value_of = |flag: &str| {
                iter.next()
                    .cloned()
                    .ok_or_else(|| format!("{flag} expects a value"))
            };
            match arg.as_str() {
                "--store" => parsed.store = Some(value_of("--store")?),
                "--id" => parsed.id = Some(value_of("--id")?),
                "--scale" => parsed.scale = Some(value_of("--scale")?),
                "--seed" => parsed.seed = Some(parse_number(&value_of("--seed")?, "--seed")?),
                "--optimizer" => parsed.optimizer = Some(value_of("--optimizer")?),
                "--threads" => {
                    parsed.threads = Some(parse_number(&value_of("--threads")?, "--threads")?)
                }
                "--early-stop" => {
                    parsed.early_stop =
                        Some(parse_number(&value_of("--early-stop")?, "--early-stop")?)
                }
                "--solver" => parsed.solver = Some(value_of("--solver")?),
                "--variation-batch" => {
                    parsed.variation_batch = Some(parse_number(
                        &value_of("--variation-batch")?,
                        "--variation-batch",
                    )?)
                }
                "--halt-after" => {
                    parsed.halt_after =
                        Some(parse_number(&value_of("--halt-after")?, "--halt-after")?)
                }
                "--workers" => {
                    parsed.workers = Some(parse_number(&value_of("--workers")?, "--workers")?)
                }
                "--drain" => parsed.drain = true,
                "--sharded" => parsed.sharded = true,
                "--shard-size" => {
                    parsed.shard_size =
                        Some(parse_number(&value_of("--shard-size")?, "--shard-size")?)
                }
                "--shards-only" => parsed.shards_only = true,
                "--transport" => parsed.transport = Some(value_of("--transport")?),
                "--bind" => parsed.bind = Some(value_of("--bind")?),
                "--max-connections" => {
                    parsed.max_connections = Some(parse_number(
                        &value_of("--max-connections")?,
                        "--max-connections",
                    )?)
                }
                "--default-quota" => parsed.default_quota = Some(value_of("--default-quota")?),
                "--tenant-quota" => parsed.tenant_quotas.push(value_of("--tenant-quota")?),
                "--tenant-weight" => parsed.tenant_weights.push(value_of("--tenant-weight")?),
                "--poll-ms" => {
                    parsed.poll_ms = Some(parse_number(&value_of("--poll-ms")?, "--poll-ms")?)
                }
                "--keep-checkpoints" => {
                    parsed.keep_checkpoints = Some(parse_number(
                        &value_of("--keep-checkpoints")?,
                        "--keep-checkpoints",
                    )?)
                }
                "--sweep-all" => parsed.sweep_all = true,
                "--max-age-hours" => {
                    parsed.max_age_hours = Some(parse_number(
                        &value_of("--max-age-hours")?,
                        "--max-age-hours",
                    )?)
                }
                "--watch" => parsed.watch = Some(parse_number(&value_of("--watch")?, "--watch")?),
                "--digest" => parsed.digest = true,
                "--quiet" => parsed.quiet = true,
                "--help" | "-h" => parsed.help = true,
                flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
                positional => parsed.positional.push(positional.to_string()),
            }
        }
        Ok(parsed)
    }

    fn open_store(&self) -> Result<Store, String> {
        let dir = self
            .store
            .clone()
            .or_else(|| std::env::var("AYB_STORE").ok())
            .unwrap_or_else(|| "./ayb-store".to_string());
        Store::open(dir).map_err(|e| e.to_string())
    }

    fn required_run_id(&self) -> Result<&str, String> {
        match self.positional.as_slice() {
            [id] => Ok(id),
            [] => Err("expected a RUN_ID argument".to_string()),
            _ => Err("expected exactly one RUN_ID argument".to_string()),
        }
    }
}

fn parse_number<T: std::str::FromStr>(text: &str, flag: &str) -> Result<T, String> {
    text.parse()
        .map_err(|_| format!("{flag} expects a number, got `{text}`"))
}

// ---------------------------------------------------------------------------
// Progress output
// ---------------------------------------------------------------------------

/// Prints stage transitions and persisted checkpoints to stderr through the
/// `ayb_obs` event layer — same line format as every other plane, filtered
/// by `AYB_LOG`.
struct CliObserver;

impl FlowObserver for CliObserver {
    fn on_stage_start(&mut self, stage: FlowStage) {
        log_to_stderr(
            &Event::new(Severity::Info, "cli", event_kind::STAGE_START).detail(stage.name()),
        );
    }

    fn on_stage_complete(&mut self, stage: FlowStage, elapsed: Duration) {
        log_to_stderr(
            &Event::new(Severity::Info, "cli", event_kind::STAGE_COMPLETE)
                .value(elapsed.as_secs_f64())
                .detail(format!(
                    "{} completed in {:.2}s",
                    stage.name(),
                    elapsed.as_secs_f64()
                )),
        );
    }

    fn on_checkpoint_written(&mut self, generation: usize, _path: &Path) {
        log_to_stderr(
            &Event::new(Severity::Info, "cli", event_kind::CHECKPOINT)
                .value(generation as f64)
                .detail(format!("checkpoint written for generation {generation}")),
        );
    }
}

/// A `[ayb …]`-style stderr note that is not tied to a flow stage: banners,
/// hints, periodic coordinator summaries. Routed through the event layer so
/// `AYB_LOG` filters it like everything else.
fn cli_note(severity: Severity, detail: impl Into<String>) {
    log_to_stderr(&Event::new(severity, "cli", "note").detail(detail));
}

// ---------------------------------------------------------------------------
// Commands
// ---------------------------------------------------------------------------

/// Builds the flow configuration and (seeded) optimiser selection from the
/// `--scale` / `--threads` / `--early-stop` / `--optimizer` / `--seed`
/// flags. Shared by `ayb run` (executes now) and `ayb submit` (queues for a
/// server); both paths therefore seed identically, and a submitted run
/// digests exactly like a directly executed one.
fn build_flow_setup(args: &CliArgs) -> Result<(FlowConfig, OptimizerConfig), String> {
    let mut config = match args.scale.as_deref().unwrap_or("reduced") {
        "reduced" => FlowConfig::reduced(),
        "demo" => FlowConfig::demo_scale(),
        "paper" => FlowConfig::paper_scale(),
        other => return Err(format!("unknown scale `{other}` (reduced|demo|paper)")),
    };
    if let Some(threads) = args.threads {
        config.threads = threads.max(1);
    }
    if let Some(patience) = args.early_stop {
        config.ga.early_stop = Some(EarlyStop::after_stalled_generations(patience));
    }
    if args.sharded {
        config.sharded = true;
    }
    if let Some(shard_size) = args.shard_size {
        config.shard_size = shard_size.max(1);
    }
    if let Some(solver) = &args.solver {
        config.solver = solver.parse()?;
    }
    if let Some(batch) = args.variation_batch {
        config.variation_batch = batch.max(1);
    }
    if let Some(url) = &args.transport {
        // Fail malformed URLs here, not minutes later inside the flow (a
        // well-formed but unreachable coordinator degrades gracefully).
        ayb_net::parse_transport_url(url)?;
        config.transport = Some(url.clone());
        config.sharded = true;
    }

    let mut optimizer = match args.optimizer.as_deref().unwrap_or("wbga") {
        "wbga" => OptimizerConfig::Wbga(config.ga),
        "nsga2" => OptimizerConfig::Nsga2(config.ga),
        "random" | "random_search" => OptimizerConfig::RandomSearch {
            budget: config.ga.evaluation_budget(),
            seed: config.ga.seed,
        },
        other => return Err(format!("unknown optimizer `{other}` (wbga|nsga2|random)")),
    };

    // Same semantics as `FlowBuilder::with_seed`: the seed drives the
    // optimiser and the Monte Carlo engine end to end.
    if let Some(seed) = args.seed {
        config.ga.seed = seed;
        config.monte_carlo.seed = seed;
        optimizer = optimizer.with_seed(seed);
    }
    Ok((config, optimizer))
}

fn cmd_run(args: &CliArgs) -> Result<(), String> {
    if !args.positional.is_empty() {
        return Err("`ayb run` takes no positional arguments".to_string());
    }
    let store = args.open_store()?;
    let (config, optimizer) = build_flow_setup(args)?;

    let run_id = match &args.id {
        Some(id) => id.clone(),
        None => store.next_run_id().map_err(|e| e.to_string())?,
    };
    println!("run_id: {run_id}");

    let mut builder = FlowBuilder::new(config.clone())
        .with_optimizer(optimizer)
        .with_store(&store)
        .with_run_id(&run_id);
    if !args.quiet {
        builder = builder.with_observer(CliObserver);
    }
    if let Some(count) = args.halt_after {
        builder = builder.halt_after_checkpoints(count);
    }
    finish_flow(builder.run(), &store, &run_id, &config, args.quiet)
}

fn cmd_submit(args: &CliArgs) -> Result<(), String> {
    if !args.positional.is_empty() {
        return Err("`ayb submit` takes no positional arguments".to_string());
    }
    let store = args.open_store()?;
    let (config, optimizer) = build_flow_setup(args)?;
    let seed = optimizer.seed();
    let handle = match &args.id {
        Some(id) => store.enqueue_run_with_id(id, seed, &optimizer, &config),
        None => store.enqueue_run(seed, &optimizer, &config),
    }
    .map_err(|e| e.to_string())?;
    println!("run_id: {}", handle.id());
    println!("status: queued");
    if !args.quiet {
        cli_note(Severity::Info, "execute with: ayb serve --drain");
    }
    Ok(())
}

fn cmd_serve(args: &CliArgs) -> Result<(), String> {
    if !args.positional.is_empty() {
        return Err("`ayb serve` takes no positional arguments".to_string());
    }
    let store = args.open_store()?;
    let mut config = JobServerConfig {
        drain: args.drain,
        shards_only: args.shards_only,
        ..JobServerConfig::default()
    };
    if let Some(url) = &args.transport {
        ayb_net::parse_transport_url(url)?;
        config.transport = Some(url.clone());
    }
    if let Some(workers) = args.workers {
        config.workers = workers.max(1);
    }
    if let Some(poll_ms) = args.poll_ms {
        config.poll_interval = Duration::from_millis(poll_ms.max(10));
    }

    let workers = config.workers;
    let server = JobServer::new(store, config);
    if !args.quiet {
        cli_note(
            Severity::Info,
            format!(
                "serving {} (workers: {}, mode: {}{})",
                server.store().root().display(),
                workers,
                if args.drain { "drain" } else { "poll" },
                if args.shards_only {
                    ", shards-only"
                } else {
                    ""
                },
            ),
        );
        if let Some(url) = &args.transport {
            cli_note(
                Severity::Info,
                format!("servicing network shards from {url}"),
            );
        }
        // Job lifecycle output: the server's recorder already emits one
        // structured event per JobEvent; a stderr sink (AYB_LOG-filtered)
        // renders them in the shared `[ayb …]` format.
        server.recorder().add_sink(Box::new(StderrSink::from_env()));
    }
    let report = server.run().map_err(|e| e.to_string())?;

    println!("completed: {}", report.completed.len());
    println!("interrupted: {}", report.interrupted.len());
    println!("failed: {}", report.failed.len());
    println!("skipped: {}", report.skipped.len());
    println!("requeued: {}", report.requeued.len());
    println!("shards_serviced: {}", report.shards_serviced);
    if report.shards_fenced > 0 {
        println!("shards_fenced: {}", report.shards_fenced);
    }
    if report.failed.is_empty() {
        Ok(())
    } else {
        Err(format!("runs failed: {}", report.failed.join(", ")))
    }
}

/// Parses a `QUEUED:RUNNING` quota spec.
fn parse_quota_spec(spec: &str, flag: &str) -> Result<TenantQuota, String> {
    let (queued, running) = spec
        .split_once(':')
        .ok_or_else(|| format!("{flag} expects QUEUED:RUNNING, got `{spec}`"))?;
    Ok(TenantQuota {
        max_queued: parse_number(queued, flag)?,
        max_running: parse_number(running, flag)?,
    })
}

/// Parses a `NAME=VALUE` tenant override, handing VALUE to `parse_value`.
fn parse_tenant_spec<T>(
    spec: &str,
    flag: &str,
    parse_value: impl Fn(&str) -> Result<T, String>,
) -> Result<(String, T), String> {
    let (name, value) = spec
        .split_once('=')
        .ok_or_else(|| format!("{flag} expects NAME=VALUE, got `{spec}`"))?;
    if name.is_empty() {
        return Err(format!("{flag}: empty tenant name in `{spec}`"));
    }
    Ok((name.to_string(), parse_value(value)?))
}

/// Runs the HTTP/JSON service plane until killed: admission (dedup, quotas)
/// in front of an embedded worker pool dispatching weighted round-robin
/// across tenants. All durable state is the run store itself — restart the
/// process and the dedup index and quota ledger rebuild from manifests.
fn cmd_serve_http(args: &CliArgs) -> Result<(), String> {
    if !args.positional.is_empty() {
        return Err("`ayb serve-http` takes no positional arguments".to_string());
    }
    let store = args.open_store()?;
    let mut config = SvcConfig {
        bind: args
            .bind
            .clone()
            .unwrap_or_else(|| "127.0.0.1:4780".to_string()),
        ..SvcConfig::default()
    };
    if let Some(workers) = args.workers {
        config.workers = workers; // 0 = admission-only, execution elsewhere
    }
    if let Some(cap) = args.max_connections {
        config.max_connections = cap.max(1);
    }
    if let Some(poll_ms) = args.poll_ms {
        config.poll_interval = Duration::from_millis(poll_ms.max(10));
    }
    if let Some(spec) = &args.default_quota {
        config.default_quota = parse_quota_spec(spec, "--default-quota")?;
    }
    for spec in &args.tenant_quotas {
        config
            .quotas
            .push(parse_tenant_spec(spec, "--tenant-quota", |v| {
                parse_quota_spec(v, "--tenant-quota")
            })?);
    }
    for spec in &args.tenant_weights {
        config
            .weights
            .push(parse_tenant_spec(spec, "--tenant-weight", |v| {
                parse_number::<u32>(v, "--tenant-weight")
            })?);
    }

    let workers = config.workers;
    let server =
        SvcServer::start(store, config).map_err(|e| format!("cannot start service: {e}"))?;
    // The URL line is the machine-readable hand-off (scripts and the CI
    // smoke test scrape it for the resolved port when binding port 0).
    println!("service: {}", server.url());
    if !args.quiet {
        cli_note(
            Severity::Info,
            format!(
                "serving {} over http (workers: {workers})",
                server.store().root().display()
            ),
        );
        server.recorder().add_sink(Box::new(StderrSink::from_env()));
    }
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

/// Runs the network shard coordinator until killed. All its state is in
/// memory: killing and restarting it is the crash-recovery story (flows
/// degrade the lost shards to local evaluation; workers find no tasks until
/// epochs are re-opened), so there is nothing to persist and no store flag.
fn cmd_coordinate(args: &CliArgs) -> Result<(), String> {
    if !args.positional.is_empty() {
        return Err("`ayb coordinate` takes no positional arguments".to_string());
    }
    let bind = args.bind.as_deref().unwrap_or("127.0.0.1:4710");
    let coordinator = Coordinator::bind(bind, CoordinatorConfig::default())
        .map_err(|e| format!("cannot bind coordinator to {bind}: {e}"))?;
    // The URL line is the machine-readable hand-off (scripts and the CI
    // smoke test scrape it for the resolved port when binding port 0).
    println!("coordinator: {}", coordinator.url());
    if !args.quiet {
        // Claim/fence/epoch events stream to stderr in the shared format;
        // `AYB_LOG=debug` shows every claim and submit as it happens.
        coordinator
            .recorder()
            .add_sink(Box::new(StderrSink::from_env()));
    }
    let poll = Duration::from_millis(args.poll_ms.unwrap_or(2000).max(100));
    let mut last: Vec<String> = Vec::new();
    loop {
        std::thread::sleep(poll);
        if args.quiet {
            continue;
        }
        let lines = coordinator.describe();
        if lines != last {
            let stats = coordinator.stats();
            cli_note(
                Severity::Info,
                format!(
                    "epochs: {}, open shards: {}, claims issued: {}, fenced: {}",
                    stats.epochs, stats.open_shards, stats.claims_issued, stats.fenced_rejections
                ),
            );
            for line in &lines {
                cli_note(Severity::Info, line.clone());
            }
            last = lines;
        }
    }
}

fn cmd_status(args: &CliArgs) -> Result<(), String> {
    let store = args.open_store()?;
    match args.positional.as_slice() {
        [] => {}
        [id] => return status_of_run(&store, id),
        _ => return Err("expected at most one RUN_ID argument".to_string()),
    }

    let ids = store.run_ids().map_err(|e| e.to_string())?;
    if ids.is_empty() {
        println!("no runs in {}", store.root().display());
        return Ok(());
    }
    let mut counts: Vec<(&'static str, usize)> = Vec::new();
    println!(
        "{:<16} {:<12} {:<26} {:>12} {:>12}",
        "RUN", "STATUS", "CLAIM", "CHECKPOINTS", "SHARDS"
    );
    for id in &ids {
        let row = store.run(id).and_then(|handle| {
            let status = handle.status()?;
            let claim = handle.claim_health(CLAIM_HEALTH_MAX_HEARTBEAT_AGE)?;
            let checkpoints = handle.checkpoint_generations()?.len();
            let shards = handle.shard_summary()?;
            Ok((status, claim, checkpoints, shards))
        });
        match row {
            Ok((status, claim, checkpoints, shards)) => {
                match counts.iter_mut().find(|(name, _)| *name == status.as_str()) {
                    Some((_, count)) => *count += 1,
                    None => counts.push((status.as_str(), 1)),
                }
                let claim = match claim {
                    Some((claim, health)) => {
                        format!("{} ({})", claim.owner, render_claim_health(health))
                    }
                    None => "-".to_string(),
                };
                let shards = if shards.tasks > 0 {
                    // Label what stage the open shard work belongs to: the
                    // stages are sequential, so open epochs are all one kind.
                    let kind = if shards.variation_epochs > 0 {
                        " var"
                    } else {
                        " eval"
                    };
                    format!("{}/{}{kind}", shards.completed, shards.tasks)
                } else {
                    "-".to_string()
                };
                println!(
                    "{id:<16} {:<12} {claim:<26} {checkpoints:>12} {shards:>12}",
                    status.as_str()
                );
            }
            Err(error) => println!("{id:<16} <unreadable: {error}>"),
        }
    }
    let summary: Vec<String> = counts
        .iter()
        .map(|(name, count)| format!("{name}: {count}"))
        .collect();
    println!("totals: {}", summary.join(", "));
    Ok(())
}

/// Heartbeat age beyond which `ayb status` reports a claim as hung/stale
/// (matches the job server's default `reclaim_grace`).
const CLAIM_HEALTH_MAX_HEARTBEAT_AGE: Duration = Duration::from_secs(30);

fn render_claim_health(health: ClaimHealth) -> &'static str {
    match health {
        ClaimHealth::Alive => "alive",
        ClaimHealth::Hung => "hung?",
        ClaimHealth::Dead => "stale",
    }
}

fn status_of_run(store: &Store, id: &str) -> Result<(), String> {
    let handle = store.run(id).map_err(|e| e.to_string())?;
    let status = handle.status().map_err(|e| e.to_string())?;
    println!("run_id: {id}");
    println!("status: {status}");
    match handle
        .claim_health(CLAIM_HEALTH_MAX_HEARTBEAT_AGE)
        .map_err(|e| e.to_string())?
    {
        Some((claim, health)) => println!(
            "claim: {} (pid {} on {}, {})",
            claim.owner,
            claim.pid,
            claim.host,
            render_claim_health(health)
        ),
        None => println!("claim: none"),
    }
    let checkpoints = handle.checkpoint_generations().map_err(|e| e.to_string())?;
    println!("checkpoints: {}", checkpoints.len());
    let shards = handle.shard_summary().map_err(|e| e.to_string())?;
    if shards.tasks > 0 {
        let stage = if shards.variation_epochs > 0 {
            "variation"
        } else {
            "evaluation"
        };
        println!(
            "shards: {}/{} {stage} done ({} claimed, {} epochs open)",
            shards.completed, shards.tasks, shards.claimed, shards.epochs
        );
    } else {
        println!("shards: none open");
    }
    let variation = handle
        .variation_checkpoint_indices()
        .map_err(|e| e.to_string())?;
    if !variation.is_empty() {
        println!("variation_checkpoints: {}", variation.len());
    }
    // Service-plane annotations (runs admitted through `ayb serve-http`):
    // tenant, dedup key and hit count, priority lane, cancellation marker.
    for key in [
        "tenant",
        "priority",
        "submission_digest",
        "dedup_hits",
        "served_from_cache",
        "cancelled",
    ] {
        if let Ok(Some(value)) = handle.manifest_extra(key) {
            match value {
                serde::Value::Str(text) => println!("{key}: {text}"),
                serde::Value::Int(n) => println!("{key}: {n}"),
                serde::Value::UInt(n) => println!("{key}: {n}"),
                serde::Value::Bool(b) => println!("{key}: {b}"),
                other => println!(
                    "{key}: {}",
                    serde_json::to_string(&other).unwrap_or_default()
                ),
            }
        }
    }
    if let Ok(Some(value)) = handle.transport_report_value() {
        use serde::Deserialize;
        if let Ok(report) = ayb_core::TransportReport::from_value(&value) {
            println!("transport: {}", report.transport);
            if report.requests > 0 {
                println!(
                    "transport_requests: {} ({:.2}s round-trip)",
                    report.requests, report.request_seconds
                );
            }
            if report.fenced_rejections > 0 {
                println!("transport_fenced_writes: {}", report.fenced_rejections);
            }
            for incident in &report.incidents {
                println!(
                    "transport_degraded: {} shard {} -> local ({})",
                    incident.stage, incident.shard, incident.detail
                );
            }
        }
    }
    print_run_health(&handle);
    println!(
        "result: {}",
        if handle.has_result() {
            "present"
        } else {
            "none"
        }
    );
    Ok(())
}

/// The compact timing/health block of `ayb status RUN_ID`: stage durations
/// (from the persisted result), shard round-trip latency p50/p95 (from the
/// run's `events.jsonl`) and fence/degrade counts. Every line is best-effort
/// — a run without a result or telemetry simply prints fewer lines.
fn print_run_health(handle: &ayb_store::RunHandle) {
    if handle.has_result() {
        if let Ok(result) = handle.load_result::<FlowResult>() {
            let timings = &result.timings;
            println!(
                "stage_seconds: optimize {:.2}, variation {:.2}, model {:.2} (total {:.2})",
                timings.optimization.as_secs_f64(),
                timings.monte_carlo.as_secs_f64(),
                timings.model_build.as_secs_f64(),
                timings.total().as_secs_f64()
            );
            if timings.shards_fenced > 0 || timings.shards_degraded > 0 {
                println!(
                    "shard_incidents: {} fenced, {} degraded to local",
                    timings.shards_fenced, timings.shards_degraded
                );
            }
        }
    }
    let Ok(events) = ayb_obs::read_events(&handle.events_path()) else {
        return;
    };
    // Shard round-trip latencies live in SHARD_REQUEST events' `value`
    // field; fold them into a histogram for the quantile summary.
    let mut latency = Histogram::with_bounds(ayb_obs::LATENCY_BUCKETS_SECONDS);
    for event in &events {
        if event.kind == event_kind::SHARD_REQUEST {
            if let Some(seconds) = event.value {
                latency.observe(seconds);
            }
        }
    }
    if latency.count() > 0 {
        println!(
            "shard_latency: {} requests, p50 {:.0} ms, p95 {:.0} ms",
            latency.count(),
            latency.quantile(0.5).unwrap_or(0.0) * 1e3,
            latency.quantile(0.95).unwrap_or(0.0) * 1e3
        );
    }
    let fenced = ayb_obs::trace::count_kind(&events, event_kind::SHARD_FENCED);
    let degraded = ayb_obs::trace::count_kind(&events, event_kind::SHARD_DEGRADED);
    let checkpoints = ayb_obs::trace::count_kind(&events, event_kind::CHECKPOINT);
    println!(
        "events: {} recorded ({} checkpoints, {} fenced, {} degraded); \
         trace with: ayb trace {}",
        events.len(),
        checkpoints,
        fenced,
        degraded,
        handle.id()
    );
}

/// Reconstructs a run's timeline from its `events.jsonl`: stages,
/// checkpoints, epochs, and per-shard claim → fence → steal chains. The
/// event stream is validated first — a malformed or out-of-order file is an
/// error, not a garbled trace.
fn cmd_trace(args: &CliArgs) -> Result<(), String> {
    let store = args.open_store()?;
    let run_id = args.required_run_id()?;
    let handle = store.run(run_id).map_err(|e| e.to_string())?;
    let path = handle.events_path();
    if !path.exists() {
        return Err(format!(
            "no telemetry for `{run_id}`: {} does not exist (runs record \
             events.jsonl while executing durably)",
            path.display()
        ));
    }
    let events = ayb_obs::read_events(&path)?;
    ayb_obs::check_monotonic_per_pid(&events)
        .map_err(|e| format!("events.jsonl failed validation: {e}"))?;
    println!("run_id: {run_id}");
    println!("events: {} ({} attempts)", events.len(), {
        let attempts = ayb_obs::trace::attempts(&events).len();
        attempts.max(1)
    });
    for line in ayb_obs::trace::render_trace(&events) {
        println!("{line}");
    }
    Ok(())
}

/// One `ayb top` refresh: every run's status/claim/shard row from the store,
/// plus — when `--transport` points at a live coordinator — its counters and
/// full metrics text (the same text the `Metrics` wire request serves).
fn top_once(store: &Store, transport: Option<&str>) -> Result<(), String> {
    if let Some(url) = transport {
        let addr = ayb_net::parse_transport_url(url)?;
        let tcp = TcpTransport::connect(addr);
        let stats = tcp
            .coordinator_stats()
            .map_err(|e| format!("coordinator at {url} unreachable: {e}"))?;
        println!(
            "coordinator: {url} — {} epochs, {} open shards, {} claims issued, {} fenced",
            stats.epochs, stats.open_shards, stats.claims_issued, stats.fenced_rejections
        );
        let metrics = tcp.coordinator_metrics().map_err(|e| e.to_string())?;
        for line in metrics.lines() {
            // The full registry is noisy; surface the fleet-health core
            // (request totals/latency, claims, fences, gauges).
            if line.starts_with("ayb_coord_") && !line.contains("_bucket") {
                println!("  {line}");
            }
        }
    }
    if let Ok(cache) = ResultCache::open(store) {
        if let Ok(entries) = cache.entries() {
            if !entries.is_empty() {
                let hits: u64 = entries.iter().map(|e| e.hits).sum();
                println!(
                    "result_cache: {} completed digests, {} resubmissions served",
                    entries.len(),
                    hits
                );
            }
        }
    }
    let ids = store.run_ids().map_err(|e| e.to_string())?;
    if ids.is_empty() {
        println!("no runs in {}", store.root().display());
        return Ok(());
    }
    println!(
        "{:<16} {:<12} {:<26} {:>12} {:>12} {:>8}",
        "RUN", "STATUS", "CLAIM", "CHECKPOINTS", "SHARDS", "EVENTS"
    );
    for id in &ids {
        let row = store.run(id).and_then(|handle| {
            let status = handle.status()?;
            let claim = handle.claim_health(CLAIM_HEALTH_MAX_HEARTBEAT_AGE)?;
            let checkpoints = handle.checkpoint_generations()?.len();
            let shards = handle.shard_summary()?;
            let events = std::fs::read_to_string(handle.events_path())
                .map(|text| text.lines().count())
                .unwrap_or(0);
            Ok((status, claim, checkpoints, shards, events))
        });
        match row {
            Ok((status, claim, checkpoints, shards, events)) => {
                let claim = match claim {
                    Some((claim, health)) => {
                        format!("{} ({})", claim.owner, render_claim_health(health))
                    }
                    None => "-".to_string(),
                };
                let shards = if shards.tasks > 0 {
                    format!("{}/{}", shards.completed, shards.tasks)
                } else {
                    "-".to_string()
                };
                println!(
                    "{id:<16} {:<12} {claim:<26} {checkpoints:>12} {shards:>12} {events:>8}",
                    status.as_str()
                );
            }
            Err(error) => println!("{id:<16} <unreadable: {error}>"),
        }
    }
    Ok(())
}

/// Live fleet view: the store's runs (with claim health and shard progress)
/// and, with `--transport`, the coordinator's scraped metrics. `--watch S`
/// refreshes every `S` seconds until interrupted.
fn cmd_top(args: &CliArgs) -> Result<(), String> {
    if !args.positional.is_empty() {
        return Err("`ayb top` takes no positional arguments".to_string());
    }
    let store = args.open_store()?;
    let transport = args.transport.as_deref();
    match args.watch {
        None => top_once(&store, transport),
        Some(seconds) => loop {
            top_once(&store, transport)?;
            println!();
            std::thread::sleep(Duration::from_secs(seconds.max(1)));
        },
    }
}

/// How old a `*.tmp` file must be before `ayb gc` removes it (unless
/// `--sweep-all`): long enough that no live writer is mid-rename.
const GC_TMP_MIN_AGE: Duration = Duration::from_secs(60);

fn cmd_gc(args: &CliArgs) -> Result<(), String> {
    if !args.positional.is_empty() {
        return Err("`ayb gc` takes no positional arguments".to_string());
    }
    let store = args.open_store()?;
    let keep = args.keep_checkpoints.unwrap_or(1).max(1);
    let min_age = if args.sweep_all {
        Duration::ZERO
    } else {
        GC_TMP_MIN_AGE
    };

    let swept = store.sweep_tmp_files(min_age).map_err(|e| e.to_string())?;
    let mut pruned = 0usize;
    let mut pruned_runs = 0usize;
    let mut shard_epochs = 0usize;
    for id in store.run_ids().map_err(|e| e.to_string())? {
        let Ok(handle) = store.run(&id) else { continue };
        // Only completed runs are pruned; anything still resumable keeps
        // its full checkpoint history.
        if handle.status().ok() != Some(RunStatus::Completed) {
            continue;
        }
        let removed = handle.prune_checkpoints(keep).map_err(|e| e.to_string())?;
        // Per-point variation checkpoints of a completed run are dead
        // weight too: result.json supersedes them.
        let variation = handle
            .sweep_variation_checkpoints()
            .map_err(|e| e.to_string())?;
        if !removed.is_empty() || variation > 0 {
            pruned += removed.len() + variation;
            pruned_runs += 1;
        }
        // Shard epochs of a completed run are dead weight: the submitting
        // flow assembled (or abandoned) every batch long ago.
        shard_epochs += handle.sweep_shards().map_err(|e| e.to_string())?;
    }
    println!("tmp_files_removed: {}", swept.len());
    println!(
        "checkpoints_pruned: {pruned} (across {pruned_runs} completed runs, keeping last {keep})"
    );
    println!("shard_epochs_swept: {shard_epochs}");
    Ok(())
}

/// `ayb cache [status|gc]` — inspect or sweep the store's persistent result
/// cache (`cache/digest_index.json`), the index the service plane consults
/// so identical resubmissions of completed digests never re-execute.
fn cmd_cache(args: &CliArgs) -> Result<(), String> {
    let store = args.open_store()?;
    let cache = ResultCache::open(&store).map_err(|e| e.to_string())?;
    let action = args
        .positional
        .first()
        .map(String::as_str)
        .unwrap_or("status");
    match action {
        "status" => {
            let entries = cache.entries().map_err(|e| e.to_string())?;
            let hits: u64 = entries.iter().map(|e| e.hits).sum();
            println!("entries: {}", entries.len());
            println!("hits_served: {hits}");
            for entry in &entries {
                let result = match cache.load_result(&entry.digest) {
                    Ok(Some(_)) => "present",
                    _ => "missing",
                };
                println!(
                    "{} -> {} ({} hits, result {result})",
                    entry.digest, entry.run_id, entry.hits
                );
            }
            Ok(())
        }
        "gc" => {
            let max_age = args.max_age_hours.map(|h| Duration::from_secs(h * 3600));
            let report = cache.gc(max_age).map_err(|e| e.to_string())?;
            println!("entries_removed: {}", report.entries_removed);
            println!("entries_kept: {}", report.entries_kept);
            println!("blobs_removed: {}", report.blobs_removed);
            Ok(())
        }
        other => Err(format!("unknown cache action `{other}` (status|gc)")),
    }
}

fn cmd_resume(args: &CliArgs) -> Result<(), String> {
    let store = args.open_store()?;
    let run_id = args.required_run_id()?.to_string();

    let manifest: Manifest<FlowConfig> = store
        .run(&run_id)
        .and_then(|handle| handle.manifest())
        .map_err(|e| e.to_string())?;
    if manifest.status == RunStatus::Completed {
        return Err(format!(
            "run `{run_id}` is already completed; see `ayb show {run_id}`"
        ));
    }

    let mut builder = FlowBuilder::resume(&store, &run_id).map_err(|e| e.to_string())?;
    if !args.quiet {
        let resumed_from = store
            .run(&run_id)
            .and_then(|handle| handle.checkpoint_generations())
            .map_err(|e| e.to_string())?;
        match resumed_from.last() {
            Some(generation) => cli_note(
                Severity::Info,
                format!("resuming {run_id} from generation {generation}"),
            ),
            None => cli_note(
                Severity::Warn,
                format!("no checkpoints for {run_id}; restarting from scratch"),
            ),
        }
        builder = builder.with_observer(CliObserver);
    }
    if let Some(count) = args.halt_after {
        builder = builder.halt_after_checkpoints(count);
    }

    finish_flow(builder.run(), &store, &run_id, &manifest.flow, args.quiet)
}

/// Shared tail of `run` and `resume`: report completion, an intentional
/// halt, or a failure.
fn finish_flow(
    outcome: Result<FlowResult, AybError>,
    store: &Store,
    run_id: &str,
    config: &FlowConfig,
    quiet: bool,
) -> Result<(), String> {
    match outcome {
        Ok(result) => {
            let summary = result.summary(config);
            println!("status: completed");
            println!("evaluations: {}", summary.evaluation_samples);
            println!("pareto_points: {}", summary.pareto_points);
            println!("analysed_points: {}", summary.analysed_pareto_points);
            println!("cpu_time_seconds: {:.2}", summary.cpu_time_seconds);
            println!("mc_work_seconds: {:.2}", summary.mc_work_seconds);
            println!("digest: {:016x}", result.determinism_digest());
            if !quiet {
                cli_note(Severity::Info, format!("inspect with: ayb show {run_id}"));
            }
            Ok(())
        }
        Err(AybError::Checkpoint(CheckpointError::Halted { generation })) => {
            let (checkpoints, variation) = store
                .run(run_id)
                .and_then(|handle| {
                    Ok((
                        handle.checkpoint_generations()?.len(),
                        handle.variation_checkpoint_indices()?.len(),
                    ))
                })
                .unwrap_or((0, 0));
            println!("status: interrupted");
            // `Halted { generation }` counts what the halted stage had
            // persisted: optimiser generations when the optimisation was
            // interrupted, analysed Pareto points when the variation stage
            // was. Variation checkpoints only exist once stage 4 started,
            // so they tell the two apart.
            if variation > 0 {
                println!("halted_at_variation_point: {generation}");
            } else {
                println!("halted_at_generation: {generation}");
            }
            println!("checkpoints: {checkpoints}");
            if variation > 0 {
                println!("variation_checkpoints: {variation}");
            }
            if !quiet {
                cli_note(
                    Severity::Info,
                    format!("continue with: ayb resume {run_id}"),
                );
            }
            Ok(())
        }
        Err(error) => Err(error.to_string()),
    }
}

fn cmd_list(args: &CliArgs) -> Result<(), String> {
    let store = args.open_store()?;
    let ids = store.run_ids().map_err(|e| e.to_string())?;
    if ids.is_empty() {
        println!("no runs in {}", store.root().display());
        return Ok(());
    }
    println!(
        "{:<16} {:<12} {:<14} {:>10} {:>12} {:>7}",
        "RUN", "STATUS", "OPTIMIZER", "SEED", "CHECKPOINTS", "RESULT"
    );
    for id in ids {
        // A process killed between creating the run directory and writing
        // the manifest leaves an unreadable run behind; list it instead of
        // failing the whole listing.
        let row = store.run(&id).and_then(|handle| {
            let manifest: Manifest<FlowConfig> = handle.manifest()?;
            let checkpoints = handle.checkpoint_generations()?;
            Ok((manifest, checkpoints, handle.has_result()))
        });
        match row {
            Ok((manifest, checkpoints, has_result)) => println!(
                "{:<16} {:<12} {:<14} {:>10} {:>12} {:>7}",
                id,
                manifest.status.as_str(),
                manifest.optimizer.name(),
                manifest.seed,
                checkpoints.len(),
                if has_result { "yes" } else { "no" }
            ),
            Err(error) => println!("{id:<16} <unreadable: {error}>"),
        }
    }
    Ok(())
}

fn cmd_show(args: &CliArgs) -> Result<(), String> {
    let store = args.open_store()?;
    let run_id = args.required_run_id()?;
    let handle = store.run(run_id).map_err(|e| e.to_string())?;
    let manifest: Manifest<FlowConfig> = handle.manifest().map_err(|e| e.to_string())?;

    if args.digest {
        let result: FlowResult = handle.load_result().map_err(|e| e.to_string())?;
        println!("{:016x}", result.determinism_digest());
        return Ok(());
    }

    println!("run_id: {}", manifest.run_id);
    println!("status: {}", manifest.status);
    println!("seed: {}", manifest.seed);
    println!("optimizer: {}", manifest.optimizer.name());
    println!(
        "evaluation_budget: {}",
        manifest.optimizer.evaluation_budget()
    );
    match manifest.optimizer.early_stop() {
        Some(early_stop) => println!("early_stop_patience: {}", early_stop.effective_patience()),
        None => println!("early_stop_patience: none"),
    }
    println!(
        "ga: {}x{} (pop x gens)",
        manifest.flow.ga.population_size, manifest.flow.ga.generations
    );
    println!("mc_samples: {}", manifest.flow.monte_carlo.samples);
    println!("created_unix: {}", manifest.created_unix);
    println!("updated_unix: {}", manifest.updated_unix);

    let checkpoints = handle.checkpoint_generations().map_err(|e| e.to_string())?;
    match (checkpoints.first(), checkpoints.last()) {
        (Some(first), Some(last)) => {
            println!("checkpoints: {} (gen {first}..{last})", checkpoints.len())
        }
        _ => println!("checkpoints: 0"),
    }

    if handle.has_result() {
        let result: FlowResult = handle.load_result().map_err(|e| e.to_string())?;
        let summary = result.summary(&manifest.flow);
        println!("result: present");
        println!("  evaluations: {}", summary.evaluation_samples);
        println!("  pareto_points: {}", summary.pareto_points);
        println!("  analysed_points: {}", summary.analysed_pareto_points);
        println!("  cpu_time_seconds: {:.2}", summary.cpu_time_seconds);
        println!("  mc_work_seconds: {:.2}", summary.mc_work_seconds);
        println!("  digest: {:016x}", result.determinism_digest());
    } else {
        println!("result: none (resume with `ayb resume {run_id}`)");
    }
    Ok(())
}
