//! Facade crate re-exporting the AYB workspace.
pub use ayb_behavioral as behavioral;
pub use ayb_circuit as circuit;
pub use ayb_core as core;
pub use ayb_jobs as jobs;
pub use ayb_moo as moo;
pub use ayb_process as process;
pub use ayb_sim as sim;
pub use ayb_store as store;
pub use ayb_table as table;
